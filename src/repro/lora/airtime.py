"""LoRa airtime and bit-rate model.

Implements the Semtech SX127x airtime formula (AN1200.13) and the
simplified bit-rate expression the paper uses,

    R_b = SF * (BW / 2**SF) * CR,

where ``CR`` is the code rate fraction (4/5 ... 4/8).  The airtime of a
probe packet is what separates Alice's and Bob's channel measurements in
time; the whole feasibility problem of the paper (Sec. II) reduces to this
number being large compared to the channel coherence time.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import List, Tuple

from repro.utils.validation import require, require_one_of, require_positive

#: Bandwidths supported by the SX127x family, in Hz.
STANDARD_BANDWIDTHS_HZ: Tuple[float, ...] = (
    7_812.5,
    10_417.0,
    15_625.0,
    20_833.0,
    31_250.0,
    41_667.0,
    62_500.0,
    125_000.0,
    250_000.0,
    500_000.0,
)

_MIN_SF = 6
_MAX_SF = 12


class CodingRate(enum.Enum):
    """LoRa forward-error-correction coding rates.

    The value is the denominator increment: coding rate is ``4 / (4 + value)``.
    """

    CR_4_5 = 1
    CR_4_6 = 2
    CR_4_7 = 3
    CR_4_8 = 4

    @property
    def fraction(self) -> float:
        """The code rate as a fraction in (0, 1], e.g. 4/8 = 0.5."""
        return 4.0 / (4.0 + self.value)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"4/{4 + self.value}"


@dataclass(frozen=True)
class LoRaPHYConfig:
    """A LoRa physical-layer parameter set.

    The defaults are the paper's configuration (Sec. V-A1): BW = 125 kHz,
    SF = 12, CR = 4/8, f0 = 434 MHz, 16-byte probe payload.
    """

    spreading_factor: int = 12
    bandwidth_hz: float = 125_000.0
    coding_rate: CodingRate = CodingRate.CR_4_8
    carrier_frequency_hz: float = 434e6
    payload_bytes: int = 16
    preamble_symbols: int = 8
    explicit_header: bool = True
    crc_enabled: bool = True
    low_data_rate_optimize: bool = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        require(
            _MIN_SF <= self.spreading_factor <= _MAX_SF,
            f"spreading_factor must be in [{_MIN_SF}, {_MAX_SF}], "
            f"got {self.spreading_factor}",
        )
        require_one_of(self.bandwidth_hz, STANDARD_BANDWIDTHS_HZ, "bandwidth_hz")
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")
        require_positive(self.payload_bytes, "payload_bytes")
        require(self.preamble_symbols >= 6, "preamble_symbols must be >= 6")
        if self.low_data_rate_optimize is None:
            # Semtech mandates LDRO when the symbol time exceeds 16 ms.
            object.__setattr__(
                self, "low_data_rate_optimize", self.symbol_time_s > 16e-3
            )

    @property
    def symbol_time_s(self) -> float:
        """Duration of one LoRa symbol: ``2**SF / BW`` seconds."""
        return (2.0**self.spreading_factor) / self.bandwidth_hz

    @property
    def bit_rate_bps(self) -> float:
        """Useful bit rate, ``SF * BW / 2**SF * CR`` (paper Sec. II-A)."""
        return (
            self.spreading_factor
            * (self.bandwidth_hz / 2.0**self.spreading_factor)
            * self.coding_rate.fraction
        )

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength (0.6912 m at 434 MHz)."""
        return 299_792_458.0 / self.carrier_frequency_hz

    @property
    def preamble_time_s(self) -> float:
        """Preamble airtime, ``(n_preamble + 4.25)`` symbols."""
        return (self.preamble_symbols + 4.25) * self.symbol_time_s

    @property
    def n_payload_symbols(self) -> int:
        """Number of payload symbols per the Semtech AN1200.13 formula."""
        sf = self.spreading_factor
        de = 2 if self.low_data_rate_optimize else 0
        ih = 0 if self.explicit_header else 1
        crc = 1 if self.crc_enabled else 0
        numerator = 8 * self.payload_bytes - 4 * sf + 28 + 16 * crc - 20 * ih
        ceil_term = math.ceil(numerator / (4 * (sf - de)))
        return 8 + max(ceil_term * (self.coding_rate.value + 4), 0)

    @property
    def total_symbols(self) -> int:
        """Preamble (rounded up) plus payload symbols in one packet."""
        return math.ceil(self.preamble_symbols + 4.25) + self.n_payload_symbols

    @property
    def payload_time_s(self) -> float:
        """Payload airtime in seconds."""
        return self.n_payload_symbols * self.symbol_time_s

    @property
    def airtime_s(self) -> float:
        """Total packet airtime (preamble + payload) in seconds.

        With the paper's defaults this is about 1.5 s of raw airtime for a
        16-byte payload; the paper's 700 ms figure uses the simplified
        ``L / R_b`` estimate, which :meth:`naive_airtime_s` reproduces.
        """
        return self.preamble_time_s + self.payload_time_s

    @property
    def naive_airtime_s(self) -> float:
        """The paper's simplified airtime estimate ``T_t = L / R_b``."""
        return (8.0 * self.payload_bytes) / self.bit_rate_bps

    def with_payload(self, payload_bytes: int) -> "LoRaPHYConfig":
        """A copy of this config with a different payload size."""
        return replace(self, payload_bytes=payload_bytes)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"SF{self.spreading_factor}/BW{self.bandwidth_hz / 1e3:g}kHz/"
            f"CR{self.coding_rate} @ {self.carrier_frequency_hz / 1e6:g}MHz "
            f"({self.bit_rate_bps:.0f} bps, airtime {self.airtime_s * 1e3:.0f} ms)"
        )


def standard_data_rate_sweep() -> List[LoRaPHYConfig]:
    """Configurations spanning the paper's 23--1172 bps sweep (Fig. 2a).

    Returns configs sorted by ascending bit rate.  The endpoints match the
    paper: (SF12, 15.625 kHz, CR 4/8) gives 22.9 bps and
    (SF12, 500 kHz, CR 4/5) gives 1171.9 bps; (SF12, 125 kHz, CR 4/8)
    gives the 183 bps setting used everywhere else in the evaluation.
    """
    combos = [
        (12, 15_625.0, CodingRate.CR_4_8),  # ~23 bps
        (12, 31_250.0, CodingRate.CR_4_8),  # ~46 bps
        (12, 62_500.0, CodingRate.CR_4_8),  # ~92 bps
        (12, 125_000.0, CodingRate.CR_4_8),  # ~183 bps
        (12, 125_000.0, CodingRate.CR_4_5),  # ~293 bps
        (12, 250_000.0, CodingRate.CR_4_8),  # ~366 bps
        (12, 250_000.0, CodingRate.CR_4_5),  # ~586 bps
        (12, 500_000.0, CodingRate.CR_4_8),  # ~732 bps
        (12, 500_000.0, CodingRate.CR_4_5),  # ~1172 bps
    ]
    configs = [
        LoRaPHYConfig(spreading_factor=sf, bandwidth_hz=bw, coding_rate=cr)
        for sf, bw, cr in combos
    ]
    return sorted(configs, key=lambda cfg: cfg.bit_rate_bps)
