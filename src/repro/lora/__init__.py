"""LoRa physical-layer substrate.

Models the parts of the LoRa PHY that matter for physical-layer key
generation: how spreading factor / bandwidth / coding rate set the bit rate
and packet airtime (and therefore the probe time offset that destroys
channel reciprocity), how the SX127x transceiver reports RSSI (the 1 dB
register granularity, per-device offsets, and the distinction between the
averaged *packet RSSI* and the instantaneous *register RSSI* the paper
exploits), and the link budget converting path gain to received power.
"""

from repro.lora.airtime import (
    CodingRate,
    LoRaPHYConfig,
    STANDARD_BANDWIDTHS_HZ,
    standard_data_rate_sweep,
)
from repro.lora.radio import (
    TransceiverModel,
    DRAGINO_LORA_SHIELD,
    MULTITECH_XDOT,
    MULTITECH_MDOT,
    ALL_DEVICES,
    device_by_name,
)
from repro.lora.link_budget import LinkBudget, sensitivity_dbm, noise_floor_dbm
from repro.lora.rssi import RegisterRssiSampler, packet_rssi

__all__ = [
    "CodingRate",
    "LoRaPHYConfig",
    "STANDARD_BANDWIDTHS_HZ",
    "standard_data_rate_sweep",
    "TransceiverModel",
    "DRAGINO_LORA_SHIELD",
    "MULTITECH_XDOT",
    "MULTITECH_MDOT",
    "ALL_DEVICES",
    "device_by_name",
    "LinkBudget",
    "sensitivity_dbm",
    "noise_floor_dbm",
    "RegisterRssiSampler",
    "packet_rssi",
]
