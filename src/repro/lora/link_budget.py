"""Link budget: transmit power and path gain to received power.

Converts the channel simulator's path gain (dB) into the RSSI a LoRa
receiver would report, and provides the LoRa sensitivity/noise-floor
figures needed to decide whether a probe is decodable at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lora.airtime import LoRaPHYConfig
from repro.utils.validation import require, require_positive

#: Minimum SNR (dB) demodulable at each spreading factor (Semtech datasheet).
_SNR_LIMIT_DB = {
    6: -5.0,
    7: -7.5,
    8: -10.0,
    9: -12.5,
    10: -15.0,
    11: -17.5,
    12: -20.0,
}

#: Typical SX127x receiver noise figure in dB.
DEFAULT_NOISE_FIGURE_DB = 6.0


def noise_floor_dbm(bandwidth_hz: float, noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB) -> float:
    """Thermal noise floor: ``-174 + 10 log10(BW) + NF`` dBm."""
    require_positive(bandwidth_hz, "bandwidth_hz")
    import math

    return -174.0 + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def sensitivity_dbm(
    spreading_factor: int,
    bandwidth_hz: float,
    noise_figure_db: float = DEFAULT_NOISE_FIGURE_DB,
) -> float:
    """Receiver sensitivity: noise floor plus the SF's SNR demodulation limit."""
    require(
        spreading_factor in _SNR_LIMIT_DB,
        f"spreading_factor must be in {sorted(_SNR_LIMIT_DB)}, got {spreading_factor}",
    )
    return noise_floor_dbm(bandwidth_hz, noise_figure_db) + _SNR_LIMIT_DB[spreading_factor]


@dataclass(frozen=True)
class LinkBudget:
    """Static link parameters for one direction of a LoRa link.

    Attributes:
        tx_power_dbm: Transmit power at the antenna connector.
        tx_antenna_gain_dbi: Transmitter antenna gain.
        rx_antenna_gain_dbi: Receiver antenna gain.
        cable_loss_db: Total feed-line loss, both ends.
    """

    tx_power_dbm: float = 14.0
    tx_antenna_gain_dbi: float = 2.0
    rx_antenna_gain_dbi: float = 2.0
    cable_loss_db: float = 0.5

    @property
    def eirp_dbm(self) -> float:
        """Effective isotropically radiated power."""
        return self.tx_power_dbm + self.tx_antenna_gain_dbi - self.cable_loss_db

    def received_power_dbm(self, path_gain_db: float) -> float:
        """RSSI implied by a (negative) path gain in dB.

        ``path_gain_db`` is the channel simulator's total gain: negative
        path loss plus shadowing plus small-scale fading, all in dB.
        """
        return self.eirp_dbm + path_gain_db + self.rx_antenna_gain_dbi

    def snr_db(self, path_gain_db: float, phy: LoRaPHYConfig) -> float:
        """Signal-to-noise ratio of a received probe."""
        return self.received_power_dbm(path_gain_db) - noise_floor_dbm(phy.bandwidth_hz)

    def is_decodable(self, path_gain_db: float, phy: LoRaPHYConfig) -> bool:
        """Whether a packet at this path gain is above the SF's SNR limit."""
        return self.snr_db(path_gain_db, phy) >= _SNR_LIMIT_DB[phy.spreading_factor]

    def max_path_loss_db(self, phy: LoRaPHYConfig) -> float:
        """Largest tolerable path loss (positive dB) before decoding fails."""
        return (
            self.eirp_dbm
            + self.rx_antenna_gain_dbi
            - sensitivity_dbm(phy.spreading_factor, phy.bandwidth_hz)
        )
