"""Transceiver hardware models.

The paper evaluates three devices (Table I): an Arduino Uno with a Dragino
LoRa Shield (SX1278), a MultiTech xDot (SX1272) and a MultiTech mDot
(SX1272).  Hardware imperfection is one of the four reciprocity-breaking
effects listed in Sec. II-A; we model it as a per-device RSSI offset, a
per-device measurement noise level, the 1 dB RSSI register resolution of
the SX127x family, and the host's processing delay between receiving a
probe and emitting the response.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class TransceiverModel:
    """A LoRa transceiver plus its host microcontroller.

    Attributes:
        name: Marketing name used in the paper's Table I.
        chip: Semtech radio chip (SX1272/SX1278).
        rssi_offset_db: Systematic RSSI calibration offset of this unit.
        rssi_noise_std_db: Standard deviation of the additive measurement
            noise on each register-RSSI sample.
        rssi_resolution_db: Granularity of the RSSI register (1 dB on the
            SX127x family).
        rssi_floor_dbm: Lowest reportable RSSI.
        processing_delay_s: Host turnaround time between finishing the
            reception of a probe and starting the response transmission
            ("operation delay" in Sec. II-A, milliseconds in practice).
        tx_power_dbm: Transmit power used for probes.
        rssi_smoothing_alpha: Exponential-average coefficient of the RSSI
            register.  The SX127x RSSI register is a smoothed estimate of
            recent signal power, not an instantaneous sample; each symbol's
            register read is ``(1 - alpha) * previous + alpha * current``.
            1.0 disables smoothing.
    """

    name: str
    chip: str
    rssi_offset_db: float = 0.0
    rssi_noise_std_db: float = 1.0
    rssi_resolution_db: float = 1.0
    rssi_floor_dbm: float = -137.0
    processing_delay_s: float = 5e-3
    tx_power_dbm: float = 14.0
    rssi_smoothing_alpha: float = 0.45
    #: Extra error on the chip's whole-packet RSSI report.  The SX127x
    #: PacketRssi register is a separately calibrated estimate with a
    #: +/-3 dB accuracy spec; systems built on pRSSI inherit this error,
    #: while register-RSSI pipelines do not.
    packet_rssi_noise_std_db: float = 1.2

    def __post_init__(self) -> None:
        require_positive(self.rssi_resolution_db, "rssi_resolution_db")
        if self.rssi_noise_std_db < 0:
            raise ConfigurationError("rssi_noise_std_db must be >= 0")
        if self.processing_delay_s < 0:
            raise ConfigurationError("processing_delay_s must be >= 0")
        if not 0.0 < self.rssi_smoothing_alpha <= 1.0:
            raise ConfigurationError("rssi_smoothing_alpha must be in (0, 1]")


#: Arduino Uno + Dragino LoRa Shield (SX1278).  The slowest host (16 MHz
#: AVR) and hence the largest turnaround delay, but a well-calibrated radio.
DRAGINO_LORA_SHIELD = TransceiverModel(
    name="Dragino LoRa Shield",
    chip="SX1278",
    rssi_offset_db=0.0,
    rssi_noise_std_db=0.9,
    processing_delay_s=8e-3,
)

#: MultiTech xDot (ARM Cortex-M3, SX1272).
MULTITECH_XDOT = TransceiverModel(
    name="MultiTech xDot",
    chip="SX1272",
    rssi_offset_db=1.5,
    rssi_noise_std_db=1.1,
    processing_delay_s=4e-3,
)

#: MultiTech mDot (ARM Cortex-M3, SX1272).
MULTITECH_MDOT = TransceiverModel(
    name="MultiTech mDot",
    chip="SX1272",
    rssi_offset_db=-1.0,
    rssi_noise_std_db=1.1,
    processing_delay_s=4e-3,
)

ALL_DEVICES: Tuple[TransceiverModel, ...] = (
    DRAGINO_LORA_SHIELD,
    MULTITECH_XDOT,
    MULTITECH_MDOT,
)

_DEVICES_BY_NAME: Dict[str, TransceiverModel] = {d.name: d for d in ALL_DEVICES}


def device_by_name(name: str) -> TransceiverModel:
    """Look up one of the paper's three evaluation devices by name."""
    try:
        return _DEVICES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_DEVICES_BY_NAME))
        raise ConfigurationError(f"unknown device {name!r}; known devices: {known}")
