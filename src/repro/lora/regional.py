"""Regional regulatory constraints on LoRa transmissions.

The paper probes back-to-back at 434 MHz and reports key rates that
ignore regulatory duty cycles; real deployments cannot.  This module
models the common regional plans and converts a transmission schedule
into its legally-paced equivalent, which the duty-cycle analysis
experiment uses to show how interactive reconciliation (Cascade) becomes
impractical under a 1% budget -- the quantitative form of the paper's
communication-overhead critique.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class RegionalPlan:
    """One region's transmission rules for the relevant band.

    Attributes:
        name: Human-readable plan name.
        duty_cycle: Allowed fraction of airtime per averaging window
            (1.0 = unrestricted).
        dwell_limit_s: Maximum single-transmission airtime, or ``None``.
        averaging_window_s: Window over which the duty cycle is assessed.
    """

    name: str
    duty_cycle: float
    dwell_limit_s: Optional[float] = None
    averaging_window_s: float = 3600.0

    def __post_init__(self) -> None:
        require(0.0 < self.duty_cycle <= 1.0, "duty_cycle must be in (0, 1]")
        require_positive(self.averaging_window_s, "averaging_window_s")
        if self.dwell_limit_s is not None:
            require_positive(self.dwell_limit_s, "dwell_limit_s")

    def min_gap_after(self, airtime_s: float) -> float:
        """Silence required after a transmission of the given airtime.

        The standard per-device pacing rule: after transmitting for T,
        stay silent for ``T * (1/duty - 1)``.
        """
        require(airtime_s >= 0, "airtime_s must be >= 0")
        return airtime_s * (1.0 / self.duty_cycle - 1.0)

    def allows_airtime(self, airtime_s: float) -> bool:
        """Whether a single transmission of this airtime is permitted."""
        return self.dwell_limit_s is None or airtime_s <= self.dwell_limit_s


#: EU 433.05-434.79 MHz ISM band (ERC 70-03): 10% duty cycle.  This is
#: the band the paper's 434 MHz experiments sit in.
EU433 = RegionalPlan(name="EU 433 MHz (10%)", duty_cycle=0.10)

#: EU 868 MHz general sub-band: 1% duty cycle.
EU868 = RegionalPlan(name="EU 868 MHz (1%)", duty_cycle=0.01)

#: US 902-928 MHz under FCC part 15: no duty cycle, 400 ms dwell limit.
US915 = RegionalPlan(name="US 915 MHz (dwell)", duty_cycle=1.0, dwell_limit_s=0.4)

#: No regulatory constraint (the paper's implicit assumption).
UNRESTRICTED = RegionalPlan(name="unrestricted", duty_cycle=1.0)

ALL_PLANS: Tuple[RegionalPlan, ...] = (UNRESTRICTED, EU433, EU868, US915)


class DutyCycleBudget:
    """Tracks a device's airtime budget over a sliding window.

    Feed it every transmission; it answers when the next one may start.
    """

    def __init__(self, plan: RegionalPlan):
        self.plan = plan
        self._history: Deque[Tuple[float, float]] = deque()  # (start, airtime)

    def _trim(self, now_s: float) -> None:
        horizon = now_s - self.plan.averaging_window_s
        while self._history and self._history[0][0] < horizon:
            self._history.popleft()

    def airtime_used_s(self, now_s: float) -> float:
        """Airtime consumed within the current averaging window."""
        self._trim(now_s)
        return sum(airtime for _, airtime in self._history)

    def earliest_start(self, desired_start_s: float, airtime_s: float) -> float:
        """When a transmission of the given airtime may legally begin."""
        require(
            self.plan.allows_airtime(airtime_s),
            f"airtime {airtime_s:.3f}s exceeds the plan's dwell limit",
        )
        if self.plan.duty_cycle >= 1.0:
            return desired_start_s
        if not self._history:
            return desired_start_s
        last_start, last_airtime = self._history[-1]
        pacing = last_start + last_airtime + self.plan.min_gap_after(last_airtime)
        return max(desired_start_s, pacing)

    def record(self, start_s: float, airtime_s: float) -> None:
        """Register a transmission that actually happened."""
        require(airtime_s >= 0, "airtime_s must be >= 0")
        self._history.append((start_s, airtime_s))


def paced_duration_s(
    n_messages: int, airtime_per_message_s: float, plan: RegionalPlan
) -> float:
    """Wall-clock time for a message sequence under a regional plan.

    Each message is followed by the plan's mandatory silence except the
    last; this is the lower bound a polite device achieves.
    """
    require(n_messages >= 0, "n_messages must be >= 0")
    if n_messages == 0:
        return 0.0
    gap = plan.min_gap_after(airtime_per_message_s)
    return n_messages * airtime_per_message_s + (n_messages - 1) * gap
