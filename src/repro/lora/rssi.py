"""RSSI measurement model: register RSSI versus packet RSSI.

The paper's key empirical observation (Sec. II-C) is that the SX127x
exposes two RSSI readings:

- *packet RSSI* (pRSSI): the RSSI averaged over the whole packet
  reception -- hundreds of milliseconds at low data rates, during which
  the vehicular channel changes completely; and
- *register RSSI* (rRSSI): the instantaneous RSSI register, which firmware
  can poll once per symbol during reception.

This module turns a continuous received-power trajectory into the
register-RSSI sample vector a real SX127x host would log: one sample per
symbol, quantized to the register's 1 dB resolution, biased by the unit's
calibration offset and corrupted by measurement noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import TransceiverModel
from repro.utils.rng import SeedLike, as_generator


def quantize_packet_rssi(value_dbm, resolution_db: float = 1.0):
    """Quantize a whole-packet RSSI report to the register resolution.

    The rule is *round half toward +infinity*: ``floor(x / res + 0.5) * res``.
    Earlier revisions used Python's ``round()``, whose round-half-even
    ("banker's") tie behaviour silently depends on the parity of the
    neighbouring register step; this rule is documented, direction-stable
    at ties, and vectorizes bit-identically (``np.floor`` is elementwise),
    so the loop and vectorized probing paths share one implementation.

    Accepts scalars or arrays; scalars return a plain ``float``.
    """
    scaled = np.asarray(value_dbm, dtype=float) / resolution_db
    quantized = np.floor(scaled + 0.5) * resolution_db
    if np.isscalar(value_dbm):
        return float(quantized)
    return quantized


def packet_rssi(register_samples: np.ndarray, resolution_db: float = 1.0) -> float:
    """Averaged packet RSSI from register samples, re-quantized like the chip.

    The SX127x reports packet RSSI as an integer dBm value; we reproduce
    that by rounding the mean of the per-symbol samples to the register
    resolution.
    """
    samples = np.asarray(register_samples, dtype=float)
    if samples.size == 0:
        raise ConfigurationError("cannot average an empty register-RSSI vector")
    mean = float(np.mean(samples))
    return round(mean / resolution_db) * resolution_db


@dataclass(frozen=True)
class RegisterRssiSampler:
    """Samples the RSSI register once per symbol during packet reception.

    Attributes:
        phy: LoRa PHY configuration (sets the symbol time and symbol count).
        device: Transceiver model (sets offset, noise, resolution, floor).
    """

    phy: LoRaPHYConfig
    device: TransceiverModel

    @property
    def n_samples(self) -> int:
        """Register samples per packet: one per symbol."""
        return self.phy.total_symbols

    def sample_times(self, reception_start_s: float) -> np.ndarray:
        """Absolute times of the register reads during one reception.

        Reads occur at the end of each symbol, starting at
        ``reception_start_s``.
        """
        symbol = self.phy.symbol_time_s
        return reception_start_s + symbol * (1.0 + np.arange(self.n_samples))

    def sample(
        self,
        received_power_dbm: Callable[[np.ndarray], np.ndarray],
        reception_start_s: float,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Register-RSSI vector for one packet reception.

        Args:
            received_power_dbm: Vectorized function mapping absolute times
                (seconds) to the true received power in dBm.
            reception_start_s: When the reception began.
            seed: Randomness for the measurement noise.

        Returns:
            ``n_samples`` register readings in dBm, quantized and clamped
            the way the chip reports them.
        """
        rng = as_generator(seed)
        times = self.sample_times(reception_start_s)
        truth = np.asarray(received_power_dbm(times), dtype=float)
        if truth.shape != times.shape:
            raise ConfigurationError(
                "received_power_dbm must return one power value per sample time"
            )
        noise = rng.normal(0.0, self.device.rssi_noise_std_db, size=truth.shape)
        return self._register_readings(truth, noise)

    def sample_many(
        self,
        received_power_dbm: Callable[[np.ndarray], np.ndarray],
        reception_starts_s: np.ndarray,
        standard_noise: np.ndarray,
    ) -> np.ndarray:
        """Register-RSSI matrix for many packet receptions at once.

        Vectorized equivalent of calling :meth:`sample` once per
        reception: the channel is evaluated over the full
        ``[reception, symbol]`` time grid in one call and the smoothing /
        noise / quantization pipeline runs on whole matrices.  Every
        arithmetic step mirrors :meth:`sample` operation-for-operation, so
        with ``standard_noise`` drawn from the same generator stream the
        result is bit-identical to the per-reception loop.

        Args:
            received_power_dbm: Vectorized time-to-power function (dBm);
                called once with the flattened grid.
            reception_starts_s: Start time of each reception, shape
                ``[n_receptions]``.
            standard_noise: *Standard* normal draws of shape
                ``[n_receptions, n_samples]``; scaled internally by the
                device's noise level (``Generator.normal(0, std)`` computes
                ``std * z`` from the same standard-normal stream).

        Returns:
            ``[n_receptions, n_samples]`` register readings in dBm.
        """
        times = self.reception_times(reception_starts_s)
        truth = np.asarray(received_power_dbm(times.ravel()), dtype=float)
        if truth.shape != (times.size,):
            raise ConfigurationError(
                "received_power_dbm must return one power value per sample time"
            )
        truth = truth.reshape(times.shape)
        noise = self.device.rssi_noise_std_db * np.asarray(standard_noise, dtype=float)
        if noise.shape != truth.shape:
            raise ConfigurationError(
                "standard_noise must supply one draw per register sample"
            )
        return self._register_readings(truth, noise)

    def reception_times(self, reception_starts_s: np.ndarray) -> np.ndarray:
        """The ``[n_receptions, n_samples]`` register-read time grid.

        Exactly the grid :meth:`sample_many` evaluates the channel over;
        exposed so cross-session batching can build the grid once per
        group and feed precomputed powers to :meth:`readings_for_power`.
        """
        starts = np.asarray(reception_starts_s, dtype=float)
        symbol = self.phy.symbol_time_s
        offsets = symbol * (1.0 + np.arange(self.n_samples))
        return starts[:, np.newaxis] + offsets

    def readings_for_power(
        self, truth_dbm: np.ndarray, standard_noise: np.ndarray
    ) -> np.ndarray:
        """Register readings from a precomputed received-power grid.

        The tail of :meth:`sample_many` with the channel evaluation
        factored out: ``truth_dbm`` holds true received powers on the
        :meth:`reception_times` grid (any leading shape -- the smoothing
        pipeline only touches the trailing symbol axis, so stacked
        ``[n_sessions, n_receptions, n_samples]`` batches process each
        session row bit-identically to a per-session call).
        """
        truth = np.asarray(truth_dbm, dtype=float)
        noise = self.device.rssi_noise_std_db * np.asarray(standard_noise, dtype=float)
        if noise.shape != truth.shape:
            raise ConfigurationError(
                "standard_noise must supply one draw per register sample"
            )
        return self._register_readings(truth, noise)

    def _register_readings(self, truth: np.ndarray, noise: np.ndarray) -> np.ndarray:
        """Smooth, bias, corrupt and quantize true powers into readings.

        Operates on the trailing (symbol) axis, so one implementation
        serves both the single-reception and the batched entry points.
        """
        alpha = self.device.rssi_smoothing_alpha
        if alpha < 1.0:
            # The RSSI register is an exponential average of recent symbol
            # powers; the filter state starts at the first symbol's power.
            smoothed = np.empty_like(truth)
            state = truth[..., 0].copy()
            for index in range(truth.shape[-1]):
                state = (1.0 - alpha) * state + alpha * truth[..., index]
                smoothed[..., index] = state
            truth = smoothed
        noisy = truth + self.device.rssi_offset_db + noise
        quantized = (
            np.round(noisy / self.device.rssi_resolution_db)
            * self.device.rssi_resolution_db
        )
        return np.maximum(quantized, self.device.rssi_floor_dbm)
