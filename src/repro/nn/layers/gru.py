"""GRU layer with fused gate kernels and full backpropagation through time.

Not used by the paper's architecture (which is BiLSTM-based), but
included so the recurrent-cell choice can be ablated: the GRU has ~25%
fewer parameters per hidden unit and is the natural what-if for the
prediction module.

Gate layout: the fused pre-activation for the update (z) and reset (r)
gates is ``[x, h] W_zr + b_zr``; the candidate uses the reset-scaled
state, ``h~ = tanh(x W_xh + (r * h) W_hh + b_h)``; the new state is
``h' = (1 - z) * h + z * h~``.

The kernel follows the same performance recipe as the LSTM (see
``docs/PERFORMANCE.md``): one ``[steps, batch, 2H]`` gate buffer written
in place, ``out=`` ufuncs throughout the recurrence, weight gradients
accumulated with a single :func:`numpy.tensordot` over all steps, and an
inference fast path that skips the backward cache when
``training=False``.  The pre-vectorization implementation is frozen in
:mod:`repro.nn.layers.reference`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import NotTrainedError
from repro.nn.activations import stable_sigmoid as _sigmoid
from repro.nn.initializers import GlorotUniform, Orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


class GRU(Layer):
    """Unidirectional GRU over ``[batch, time, features]`` input.

    Args:
        units: Hidden state width H.
        return_sequences: If ``True`` (default) output is
            ``[batch, time, H]``; otherwise the final state ``[batch, H]``.
        seed: Weight-initialization randomness.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self._rng = as_generator(seed)
        self._cache = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate the gate and candidate parameter blocks."""
        require(len(input_shape) == 3, "GRU input must be [batch, time, features]")
        in_features = int(input_shape[-1])
        h = self.units
        glorot = GlorotUniform()
        orthogonal = Orthogonal()
        self.parameters = {
            "kernel_gates": glorot((in_features, 2 * h), self._rng),
            "recurrent_gates": np.concatenate(
                [orthogonal((h, h), self._rng) for _ in range(2)], axis=1
            ),
            "bias_gates": np.zeros(2 * h),
            "kernel_candidate": glorot((in_features, h), self._rng),
            "recurrent_candidate": orthogonal((h, h), self._rng),
            "bias_candidate": np.zeros(h),
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the recurrence over all timesteps.

        With ``training=True`` the activations needed by :meth:`backward`
        are cached; with ``training=False`` (inference) no history is
        retained beyond the rolling hidden state.
        """
        self.ensure_built(x.shape)
        batch, steps, _ = x.shape
        h = self.units
        p = self.parameters

        # One GEMM per projection for all steps, laid out [steps, batch, *]
        # so each step's block is contiguous; the projections double as the
        # activated-gate / candidate caches (written in place).
        xs = np.ascontiguousarray(np.transpose(x, (1, 0, 2)))
        gates = np.matmul(xs, p["kernel_gates"])
        gates += p["bias_gates"]
        candidates = np.matmul(xs, p["kernel_candidate"])
        candidates += p["bias_candidate"]

        h_prev = np.zeros((batch, h))
        hw = np.empty((batch, 2 * h))   # recurrent gate contribution, reused
        rh = np.empty((batch, h))       # r * h_{t-1}, reused
        ch = np.empty((batch, h))       # candidate recurrent term, reused
        tmp = np.empty((batch, h))

        if training:
            hiddens = np.empty((steps, batch, h))
        else:
            hiddens = np.empty((steps, batch, h)) if self.return_sequences else None
            h_buf = np.empty((batch, h))

        for t in range(steps):
            zr = gates[t]
            np.matmul(h_prev, p["recurrent_gates"], out=hw)
            zr += hw
            _sigmoid(zr, out=zr)
            z = zr[:, :h]
            r = zr[:, h:]
            cand = candidates[t]
            np.multiply(r, h_prev, out=rh)
            np.matmul(rh, p["recurrent_candidate"], out=ch)
            cand += ch
            np.tanh(cand, out=cand)
            # h' = (1-z)*h + z*cand, in place into this step's slot.
            h_new = hiddens[t] if hiddens is not None else h_buf
            np.subtract(1.0, z, out=tmp)
            np.multiply(tmp, h_prev, out=h_new)
            np.multiply(z, cand, out=tmp)
            h_new += tmp
            h_prev = h_new

        if training:
            self._cache = {"xs": xs, "gates": gates, "candidates": candidates,
                           "hiddens": hiddens}
        else:
            self._cache = None
            if not self.return_sequences:
                return h_prev.copy()
            return np.transpose(hiddens, (1, 0, 2))

        output = np.transpose(hiddens, (1, 0, 2))
        if not self.return_sequences:
            return output[:, -1, :].copy()
        return output

    #: :meth:`backward` accepts ``compute_input_grad=False`` (see
    #: :meth:`repro.nn.model.Model.backward`).
    can_skip_input_grad = True

    def backward(
        self, grad_output: np.ndarray, compute_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Backpropagate through time using the fused training cache."""
        cache = self._cache
        if cache is None:
            raise NotTrainedError(
                f"layer {self.name!r} has no backward cache; run "
                "forward(..., training=True) before backward() -- the "
                "inference fast path does not retain activations"
            )
        xs = cache["xs"]
        gates = cache["gates"]
        candidates = cache["candidates"]
        hiddens = cache["hiddens"]
        steps, batch, in_features = xs.shape
        h = self.units
        p = self.parameters
        rc_t = np.ascontiguousarray(p["recurrent_candidate"].T)
        rg_t = np.ascontiguousarray(p["recurrent_gates"].T)

        if self.return_sequences:
            grad_h_steps = np.transpose(grad_output, (1, 0, 2))
        else:
            grad_h_steps = np.zeros((steps, batch, h))
            grad_h_steps[-1] = grad_output

        d_gates = np.empty((steps, batch, 2 * h))
        d_cand = np.empty((steps, batch, h))
        dh = np.empty((batch, h))
        d_rh = np.empty((batch, h))
        gh = np.empty((batch, h))
        tmp = np.empty((batch, h))
        dh_next = np.zeros((batch, h))
        zeros_h = np.zeros((batch, h))

        for t in reversed(range(steps)):
            zr = gates[t]
            z = zr[:, :h]
            r = zr[:, h:]
            candidate = candidates[t]
            h_prev = hiddens[t - 1] if t > 0 else zeros_h

            np.add(grad_h_steps[t], dh_next, out=dh)
            dct = d_cand[t]
            dzt = d_gates[t][:, :h]
            drt = d_gates[t][:, h:]

            # d_candidate = dh * z * (1 - candidate^2)
            np.multiply(dh, z, out=dct)
            np.multiply(candidate, candidate, out=tmp)
            np.subtract(1.0, tmp, out=tmp)
            dct *= tmp
            # d_z = dh * (candidate - h_prev) * z * (1-z)
            np.subtract(candidate, h_prev, out=tmp)
            np.multiply(dh, tmp, out=dzt)
            dzt *= z
            np.subtract(1.0, z, out=tmp)
            dzt *= tmp
            # d_r = (d_candidate W_hh^T) * h_prev * r * (1-r)
            np.matmul(dct, rc_t, out=d_rh)
            np.multiply(d_rh, h_prev, out=drt)
            drt *= r
            np.subtract(1.0, r, out=tmp)
            drt *= tmp
            # dh_next = dh*(1-z) + d_rh*r + d_gates W_zr^T
            np.subtract(1.0, z, out=tmp)
            np.multiply(dh, tmp, out=dh_next)
            np.multiply(d_rh, r, out=tmp)
            dh_next += tmp
            np.matmul(d_gates[t], rg_t, out=gh)
            dh_next += gh

        # Single tensordot over all steps replaces the per-step += GEMMs.
        grads = {
            "kernel_gates": np.tensordot(xs, d_gates, axes=([0, 1], [0, 1])),
            "bias_gates": d_gates.sum(axis=(0, 1)),
            "kernel_candidate": np.tensordot(xs, d_cand, axes=([0, 1], [0, 1])),
            "bias_candidate": d_cand.sum(axis=(0, 1)),
        }
        if steps > 1:
            # r*h_in is zero at t=0 (h_in = 0), so only the tail contributes.
            rh_tail = gates[1:, :, h:] * hiddens[:-1]
            grads["recurrent_candidate"] = np.tensordot(
                rh_tail, d_cand[1:], axes=([0, 1], [0, 1])
            )
            grads["recurrent_gates"] = np.tensordot(
                hiddens[:-1], d_gates[1:], axes=([0, 1], [0, 1])
            )
        else:
            grads["recurrent_candidate"] = np.zeros_like(p["recurrent_candidate"])
            grads["recurrent_gates"] = np.zeros_like(p["recurrent_gates"])

        self.gradients = grads
        if not compute_input_grad:
            return None
        d_x = np.matmul(d_cand, p["kernel_candidate"].T)
        d_x += np.matmul(d_gates, p["kernel_gates"].T)
        return np.transpose(d_x, (1, 0, 2))
