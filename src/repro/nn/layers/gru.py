"""GRU layer with full backpropagation through time.

Not used by the paper's architecture (which is BiLSTM-based), but
included so the recurrent-cell choice can be ablated: the GRU has ~25%
fewer parameters per hidden unit and is the natural what-if for the
prediction module.

Gate layout: the fused pre-activation for the update (z) and reset (r)
gates is ``[x, h] W_zr + b_zr``; the candidate uses the reset-scaled
state, ``h~ = tanh(x W_xh + (r * h) W_hh + b_h)``; the new state is
``h' = (1 - z) * h + z * h~``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.initializers import GlorotUniform, Orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class GRU(Layer):
    """Unidirectional GRU over ``[batch, time, features]`` input.

    Args:
        units: Hidden state width H.
        return_sequences: If ``True`` (default) output is
            ``[batch, time, H]``; otherwise the final state ``[batch, H]``.
        seed: Weight-initialization randomness.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self._rng = as_generator(seed)
        self._cache = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        require(len(input_shape) == 3, "GRU input must be [batch, time, features]")
        in_features = int(input_shape[-1])
        h = self.units
        glorot = GlorotUniform()
        orthogonal = Orthogonal()
        self.parameters = {
            "kernel_gates": glorot((in_features, 2 * h), self._rng),
            "recurrent_gates": np.concatenate(
                [orthogonal((h, h), self._rng) for _ in range(2)], axis=1
            ),
            "bias_gates": np.zeros(2 * h),
            "kernel_candidate": glorot((in_features, h), self._rng),
            "recurrent_candidate": orthogonal((h, h), self._rng),
            "bias_candidate": np.zeros(h),
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.ensure_built(x.shape)
        batch, steps, _ = x.shape
        h_units = self.units
        p = self.parameters

        h_prev = np.zeros((batch, h_units))
        z_gates = np.empty((steps, batch, h_units))
        r_gates = np.empty_like(z_gates)
        candidates = np.empty_like(z_gates)
        h_in = np.empty_like(z_gates)
        hiddens = np.empty_like(z_gates)

        gate_proj = x @ p["kernel_gates"] + p["bias_gates"]
        candidate_proj = x @ p["kernel_candidate"] + p["bias_candidate"]
        for t in range(steps):
            gates = _sigmoid(gate_proj[:, t, :] + h_prev @ p["recurrent_gates"])
            z = gates[:, :h_units]
            r = gates[:, h_units:]
            candidate = np.tanh(
                candidate_proj[:, t, :] + (r * h_prev) @ p["recurrent_candidate"]
            )
            h_in[t] = h_prev
            h_prev = (1.0 - z) * h_prev + z * candidate
            z_gates[t], r_gates[t], candidates[t], hiddens[t] = z, r, candidate, h_prev

        self._cache = {
            "x": x, "z": z_gates, "r": r_gates,
            "candidate": candidates, "h_in": h_in,
        }
        output = np.transpose(hiddens, (1, 0, 2))
        if not self.return_sequences:
            return output[:, -1, :].copy()
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        cache = self._cache
        x = cache["x"]
        batch, steps, in_features = x.shape
        h_units = self.units
        p = self.parameters

        if self.return_sequences:
            grad_h_steps = np.transpose(grad_output, (1, 0, 2))
        else:
            grad_h_steps = np.zeros((steps, batch, h_units))
            grad_h_steps[-1] = grad_output

        grads = {key: np.zeros_like(value) for key, value in p.items()}
        d_x = np.zeros_like(x)
        dh_next = np.zeros((batch, h_units))

        for t in reversed(range(steps)):
            z = cache["z"][t]
            r = cache["r"][t]
            candidate = cache["candidate"][t]
            h_prev = cache["h_in"][t]
            dh = grad_h_steps[t] + dh_next

            d_candidate = dh * z * (1.0 - candidate**2)
            d_z = dh * (candidate - h_prev) * z * (1.0 - z)
            d_rh = d_candidate @ p["recurrent_candidate"].T
            d_r = d_rh * h_prev * r * (1.0 - r)
            d_gates = np.concatenate([d_z, d_r], axis=1)

            grads["kernel_candidate"] += x[:, t, :].T @ d_candidate
            grads["recurrent_candidate"] += (r * h_prev).T @ d_candidate
            grads["bias_candidate"] += d_candidate.sum(axis=0)
            grads["kernel_gates"] += x[:, t, :].T @ d_gates
            grads["recurrent_gates"] += h_prev.T @ d_gates
            grads["bias_gates"] += d_gates.sum(axis=0)

            d_x[:, t, :] = (
                d_candidate @ p["kernel_candidate"].T + d_gates @ p["kernel_gates"].T
            )
            dh_next = (
                dh * (1.0 - z)
                + d_rh * r
                + d_gates @ p["recurrent_gates"].T
            )

        self.gradients = grads
        return d_x
