"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_in_range


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    Kept activations are scaled by ``1 / (1 - rate)`` so inference needs
    no rescaling.
    """

    def __init__(self, rate: float, seed: SeedLike = None, name=None):
        super().__init__(name=name)
        require_in_range(rate, 0.0, 0.999, "rate")
        self.rate = float(rate)
        self._rng = as_generator(seed)
        self._mask: np.ndarray = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.ensure_built(x.shape)
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.uniform(size=x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
