"""Frozen pre-vectorization recurrent kernels (correctness baselines).

These are the original per-timestep loop implementations of the LSTM and
GRU layers, kept verbatim from before the fused-kernel rewrite.  They are
**not** used by the pipeline; they exist so that

- the equivalence tests can pin the vectorized kernels to the exact
  numbers the original implementation produced, and
- the kernel microbenchmarks can report honest before/after speedups
  (``BENCH_kernels.json``) on the machine they run on.

Do not optimize this module; its value is that it never changes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.initializers import GlorotUniform, Orthogonal
from repro.nn.layers.base import Layer
from repro.nn.layers.bilstm import BiLSTM
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """The original two-branch masked sigmoid, kept verbatim.

    The live kernels use :func:`repro.nn.activations.stable_sigmoid`
    (branch-free, ~3x faster, positive branch bitwise-identical to this
    form and negative branch within 1 ulp); this copy preserves the exact
    pre-refactor numerics the equivalence tests are pinned against.
    """
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


class ReferenceLSTM(Layer):
    """The original loop-per-timestep LSTM (see :class:`repro.nn.layers.lstm.LSTM`).

    Args:
        units: Hidden state width H.
        return_sequences: If ``True`` (default) output is
            ``[batch, time, H]``; otherwise the final hidden state.
        go_backwards: Process the sequence in reverse time order.
        seed: Weight-initialization randomness.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        go_backwards: bool = False,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.go_backwards = bool(go_backwards)
        self._rng = as_generator(seed)
        self._cache = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate kernel/recurrent/bias for the given input feature width."""
        require(len(input_shape) == 3, "LSTM input must be [batch, time, features]")
        in_features = int(input_shape[-1])
        h = self.units
        glorot = GlorotUniform()
        orthogonal = Orthogonal()
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # forget-gate bias
        self.parameters = {
            "kernel": glorot((in_features, 4 * h), self._rng),
            "recurrent": np.concatenate(
                [orthogonal((h, h), self._rng) for _ in range(4)], axis=1
            ),
            "bias": bias,
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """The original step loop; caches everything regardless of ``training``."""
        self.ensure_built(x.shape)
        if self.go_backwards:
            x = x[:, ::-1, :]
        batch, steps, _ = x.shape
        h_units = self.units
        w_x = self.parameters["kernel"]
        w_h = self.parameters["recurrent"]
        bias = self.parameters["bias"]

        h_prev = np.zeros((batch, h_units))
        c_prev = np.zeros((batch, h_units))
        gates_i = np.empty((steps, batch, h_units))
        gates_f = np.empty_like(gates_i)
        gates_g = np.empty_like(gates_i)
        gates_o = np.empty_like(gates_i)
        cells = np.empty_like(gates_i)
        cell_tanh = np.empty_like(gates_i)
        hiddens = np.empty_like(gates_i)
        h_in = np.empty_like(gates_i)  # h_{t-1} per step
        c_in = np.empty_like(gates_i)  # c_{t-1} per step

        x_proj = x @ w_x + bias
        for t in range(steps):
            z = x_proj[:, t, :] + h_prev @ w_h
            i = _sigmoid(z[:, :h_units])
            f = _sigmoid(z[:, h_units:2 * h_units])
            g = np.tanh(z[:, 2 * h_units:3 * h_units])
            o = _sigmoid(z[:, 3 * h_units:])
            h_in[t], c_in[t] = h_prev, c_prev
            c_prev = f * c_prev + i * g
            tanh_c = np.tanh(c_prev)
            h_prev = o * tanh_c
            gates_i[t], gates_f[t], gates_g[t], gates_o[t] = i, f, g, o
            cells[t], cell_tanh[t], hiddens[t] = c_prev, tanh_c, h_prev

        self._cache = {
            "x": x,
            "i": gates_i, "f": gates_f, "g": gates_g, "o": gates_o,
            "c": cells, "tanh_c": cell_tanh, "h_in": h_in, "c_in": c_in,
        }
        output = np.transpose(hiddens, (1, 0, 2))
        if not self.return_sequences:
            return output[:, -1, :].copy()
        if self.go_backwards:
            output = output[:, ::-1, :]
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """The original backward pass with per-step gradient accumulation."""
        cache = self._cache
        x = cache["x"]
        batch, steps, in_features = x.shape
        h_units = self.units
        w_x = self.parameters["kernel"]
        w_h = self.parameters["recurrent"]

        if self.return_sequences:
            grad_seq = grad_output
            if self.go_backwards:
                grad_seq = grad_seq[:, ::-1, :]
            grad_h_steps = np.transpose(grad_seq, (1, 0, 2))
        else:
            grad_h_steps = np.zeros((steps, batch, h_units))
            grad_h_steps[-1] = grad_output

        d_wx = np.zeros_like(w_x)
        d_wh = np.zeros_like(w_h)
        d_b = np.zeros(4 * h_units)
        d_x = np.zeros_like(x)
        dh_next = np.zeros((batch, h_units))
        dc_next = np.zeros((batch, h_units))

        for t in reversed(range(steps)):
            i, f, g, o = cache["i"][t], cache["f"][t], cache["g"][t], cache["o"][t]
            tanh_c = cache["tanh_c"][t]
            dh = grad_h_steps[t] + dh_next
            do = dh * tanh_c
            dct = dh * o * (1.0 - tanh_c**2) + dc_next
            df = dct * cache["c_in"][t]
            di = dct * g
            dg = dct * i
            dc_next = dct * f
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    dg * (1.0 - g**2),
                    do * o * (1.0 - o),
                ],
                axis=1,
            )
            d_wx += x[:, t, :].T @ dz
            d_wh += cache["h_in"][t].T @ dz
            d_b += dz.sum(axis=0)
            d_x[:, t, :] = dz @ w_x.T
            dh_next = dz @ w_h.T

        self.gradients = {"kernel": d_wx, "recurrent": d_wh, "bias": d_b}
        if self.go_backwards:
            d_x = d_x[:, ::-1, :]
        return d_x


class ReferenceGRU(Layer):
    """The original loop-per-timestep GRU (see :class:`repro.nn.layers.gru.GRU`).

    Args:
        units: Hidden state width H.
        return_sequences: If ``True`` (default) output is
            ``[batch, time, H]``; otherwise the final state.
        seed: Weight-initialization randomness.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self._rng = as_generator(seed)
        self._cache = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate the gate and candidate parameter blocks."""
        require(len(input_shape) == 3, "GRU input must be [batch, time, features]")
        in_features = int(input_shape[-1])
        h = self.units
        glorot = GlorotUniform()
        orthogonal = Orthogonal()
        self.parameters = {
            "kernel_gates": glorot((in_features, 2 * h), self._rng),
            "recurrent_gates": np.concatenate(
                [orthogonal((h, h), self._rng) for _ in range(2)], axis=1
            ),
            "bias_gates": np.zeros(2 * h),
            "kernel_candidate": glorot((in_features, h), self._rng),
            "recurrent_candidate": orthogonal((h, h), self._rng),
            "bias_candidate": np.zeros(h),
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """The original step loop; caches everything regardless of ``training``."""
        self.ensure_built(x.shape)
        batch, steps, _ = x.shape
        h_units = self.units
        p = self.parameters

        h_prev = np.zeros((batch, h_units))
        z_gates = np.empty((steps, batch, h_units))
        r_gates = np.empty_like(z_gates)
        candidates = np.empty_like(z_gates)
        h_in = np.empty_like(z_gates)
        hiddens = np.empty_like(z_gates)

        gate_proj = x @ p["kernel_gates"] + p["bias_gates"]
        candidate_proj = x @ p["kernel_candidate"] + p["bias_candidate"]
        for t in range(steps):
            gates = _sigmoid(gate_proj[:, t, :] + h_prev @ p["recurrent_gates"])
            z = gates[:, :h_units]
            r = gates[:, h_units:]
            candidate = np.tanh(
                candidate_proj[:, t, :] + (r * h_prev) @ p["recurrent_candidate"]
            )
            h_in[t] = h_prev
            h_prev = (1.0 - z) * h_prev + z * candidate
            z_gates[t], r_gates[t], candidates[t], hiddens[t] = z, r, candidate, h_prev

        self._cache = {
            "x": x, "z": z_gates, "r": r_gates,
            "candidate": candidates, "h_in": h_in,
        }
        output = np.transpose(hiddens, (1, 0, 2))
        if not self.return_sequences:
            return output[:, -1, :].copy()
        return output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """The original backward pass with per-step gradient accumulation."""
        cache = self._cache
        x = cache["x"]
        batch, steps, in_features = x.shape
        h_units = self.units
        p = self.parameters

        if self.return_sequences:
            grad_h_steps = np.transpose(grad_output, (1, 0, 2))
        else:
            grad_h_steps = np.zeros((steps, batch, h_units))
            grad_h_steps[-1] = grad_output

        grads = {key: np.zeros_like(value) for key, value in p.items()}
        d_x = np.zeros_like(x)
        dh_next = np.zeros((batch, h_units))

        for t in reversed(range(steps)):
            z = cache["z"][t]
            r = cache["r"][t]
            candidate = cache["candidate"][t]
            h_prev = cache["h_in"][t]
            dh = grad_h_steps[t] + dh_next

            d_candidate = dh * z * (1.0 - candidate**2)
            d_z = dh * (candidate - h_prev) * z * (1.0 - z)
            d_rh = d_candidate @ p["recurrent_candidate"].T
            d_r = d_rh * h_prev * r * (1.0 - r)
            d_gates = np.concatenate([d_z, d_r], axis=1)

            grads["kernel_candidate"] += x[:, t, :].T @ d_candidate
            grads["recurrent_candidate"] += (r * h_prev).T @ d_candidate
            grads["bias_candidate"] += d_candidate.sum(axis=0)
            grads["kernel_gates"] += x[:, t, :].T @ d_gates
            grads["recurrent_gates"] += h_prev.T @ d_gates
            grads["bias_gates"] += d_gates.sum(axis=0)

            d_x[:, t, :] = (
                d_candidate @ p["kernel_candidate"].T + d_gates @ p["kernel_gates"].T
            )
            dh_next = (
                dh * (1.0 - z)
                + d_rh * r
                + d_gates @ p["recurrent_gates"].T
            )

        self.gradients = grads
        return d_x


class ReferenceBiLSTM(BiLSTM):
    """The bidirectional wrapper over the frozen :class:`ReferenceLSTM` kernels."""

    lstm_cls = ReferenceLSTM
