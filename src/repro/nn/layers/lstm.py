"""LSTM layer with fused gate kernels and full backpropagation through time.

Gate layout follows the usual convention: the fused pre-activation
``z = x W_x + h W_h + b`` is split into input (i), forget (f), candidate
(g) and output (o) blocks.  The forget-gate bias is initialized to 1,
which materially speeds up learning on short sequences.

Performance notes (see ``docs/PERFORMANCE.md``):

- The whole step is one GEMM: ``z_t = [h_{t-1}, x_t, 1] @ [[W_h], [W_x],
  [b]]``, so there is no separate input pre-projection pass, no bias
  pass, and no per-step gate allocation -- the recurrence runs entirely
  in preallocated, cache-hot buffers with ``out=`` ufuncs.
- Internally the fused weight columns are permuted to (i, f, o, g) so
  the three sigmoid gates form one contiguous block: a single sigmoid
  pass per step in forward, and a single ``y*(1-y)`` derivative pass in
  backward.  Parameters and reported gradients stay in the conventional
  (i, f, g, o) order (see :func:`_gate_perm`).
- The kernels carry a leading *direction* axis ``D`` and use batched
  ``matmul`` over it.  :class:`LSTM` runs them with ``D=1``;
  :class:`~repro.nn.layers.bilstm.BiLSTM` runs both of its directions
  through the same kernel with ``D=2``, halving the per-step Python/ufunc
  dispatch count.
- ``backward`` writes the per-step pre-activation gradients into one
  preallocated ``[D, steps, batch, 4H]`` buffer and accumulates each
  direction's weight gradients with a single flat GEMM over all steps
  instead of a per-step ``+=`` of small GEMMs.
- With ``training=False`` the forward pass takes an inference fast path:
  a gate-major ``[4, D, batch, H]`` scratch buffer keeps every activation
  pass contiguous, and no history is retained beyond the rolling
  hidden/cell state.  Calling :meth:`LSTM.backward` afterwards raises
  :class:`~repro.exceptions.NotTrainedError`.

The pre-vectorization implementation is frozen in
:mod:`repro.nn.layers.reference` and the equivalence tests pin this
kernel's outputs to it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import NotTrainedError
from repro.nn.initializers import GlorotUniform, Orthogonal
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


@lru_cache(maxsize=None)
def _gate_perm(h: int) -> np.ndarray:
    """Column permutation between parameter order (i,f,g,o) and kernel order.

    The kernels keep the gates as (i, f, o, g) so the three sigmoid gates
    form one contiguous ``3H`` block (a single activation pass, and a
    single ``y*(1-y)`` derivative pass in backward).  Swapping the g and o
    blocks is an involution, so the same index array converts fused
    weights *into* kernel order and gate gradients *back out* of it.
    """
    idx = np.empty(4 * h, dtype=np.intp)
    idx[: 2 * h] = np.arange(2 * h)
    idx[2 * h: 3 * h] = np.arange(3 * h, 4 * h)
    idx[3 * h:] = np.arange(2 * h, 3 * h)
    idx.setflags(write=False)
    return idx


def _sigmoid_unsafe(buf: np.ndarray) -> None:
    """In-place ``1/(1+exp(-x))`` with no errstate guard of its own.

    The recurrent kernels call this once per timestep inside a single
    ``np.errstate(over="ignore")`` block, hoisting the (surprisingly
    expensive) errstate enter/exit out of the loop.  Semantics match
    :func:`repro.nn.activations.stable_sigmoid`.
    """
    np.negative(buf, out=buf)
    np.exp(buf, out=buf)
    buf += 1.0
    np.divide(1.0, buf, out=buf)


def fuse_weights(parameters) -> np.ndarray:
    """Stack one direction's parameters into the fused ``[K, 4H]`` matrix.

    ``K = H + F + 1``: recurrent rows first, then input rows, then the
    bias as a final row selected by a constant-1 column in the step input,
    so the whole step projection is a single GEMM.  Columns are returned
    in the kernels' internal (i, f, o, g) gate order -- see
    :func:`_gate_perm`.
    """
    fused = np.concatenate(
        [parameters["recurrent"], parameters["kernel"], parameters["bias"][None, :]],
        axis=0,
    )
    return fused[:, _gate_perm(fused.shape[1] // 4)]


def _train_forward(w_full, xs):
    """Shared training-mode recurrence over stacked directions.

    Args:
        w_full: ``[D, K, 4H]`` fused weights (see :func:`fuse_weights`).
        xs: ``[D, steps, batch, F]`` inputs, already in each direction's
            processing order.  The direction-major layout keeps each
            direction's history contiguous, which is what the backward
            pass's weight-gradient GEMMs want.

    Returns:
        ``(hiddens, cache)`` where ``hiddens`` is ``[D, steps, batch, H]``
        and ``cache`` holds everything :func:`_fused_backward` needs.
    """
    d, k, g4 = w_full.shape
    _, steps, batch, _ = xs.shape
    h = g4 // 4

    # Full step-input history [h_{t-1}, x_t, 1]: row t is step t's GEMM
    # input, and row t+1's leading H block doubles as step t's hidden
    # output -- so hist[:, 1:, :, :h] *is* the hidden-state sequence, and
    # backward gets all weight (and bias) gradients from one flat GEMM
    # against this buffer.  The x and bias columns are filled in bulk.
    hist = np.empty((d, steps + 1, batch, k))
    hist[:, 0, :, :h] = 0.0   # h_0
    hist[:, :steps, :, h:-1] = xs
    hist[..., -1] = 1.0       # bias row selector

    gates = np.empty((d, steps, batch, g4))
    cells = np.empty((d, steps, batch, h))
    cell_tanh = np.empty_like(cells)
    hiddens = hist[:, 1:, :, :h]
    ig = np.empty((d, batch, h))
    c_prev = np.zeros((d, batch, h))

    with np.errstate(over="ignore"):
        for t in range(steps):
            z = gates[:, t]
            np.matmul(hist[:, t], w_full, out=z)
            # In-place activations on the fused block: one sigmoid pass
            # over the contiguous (i, f, o) block, tanh on g.
            _sigmoid_unsafe(z[..., :3 * h])
            np.tanh(z[..., 3 * h:], out=z[..., 3 * h:])
            i = z[..., :h]
            f = z[..., h:2 * h]
            o = z[..., 2 * h:3 * h]
            g = z[..., 3 * h:]
            np.multiply(i, g, out=ig)
            c = cells[:, t]
            np.multiply(f, c_prev, out=c)
            c += ig
            np.tanh(c, out=cell_tanh[:, t])
            np.multiply(o, cell_tanh[:, t], out=hiddens[:, t])
            c_prev = c

    cache = {
        "w_full": w_full, "hist": hist, "gates": gates, "cells": cells,
        "tanh_c": cell_tanh,
    }
    return hiddens, cache


def _infer_forward(w_full, xs, keep_sequences):
    """Shared inference fast path: no backward cache, contiguous scratch.

    The fused weights are re-stacked gate-major (``[4, D, K, H]``) so the
    per-step batched GEMM lands in a ``[4, D, batch, H]`` buffer where
    every activation pass runs over contiguous memory.  Only the rolling
    hidden/cell state is kept (plus the hidden history when
    ``keep_sequences``).

    Returns:
        ``(hiddens, h_final)``: ``[D, steps, batch, H]`` (or ``None`` when
        ``keep_sequences`` is false) and the final state ``[D, batch, H]``.
    """
    d, k, g4 = w_full.shape
    _, steps, batch, _ = xs.shape
    h = g4 // 4

    w_stack = np.ascontiguousarray(
        w_full.reshape(d, k, 4, h).transpose(2, 0, 1, 3)
    )
    hcat = np.empty((d, batch, k))
    hcat[..., :h] = 0.0
    hcat[..., -1] = 1.0

    z = np.empty((4, d, batch, h))
    hiddens = np.empty((d, steps, batch, h)) if keep_sequences else None
    ig = np.empty((d, batch, h))
    c_buf = np.empty((d, batch, h))
    tanh_buf = np.empty((d, batch, h))
    hrow = hcat[..., :h]  # the rolling state doubles as next step's input
    c_prev = np.zeros((d, batch, h))

    with np.errstate(over="ignore"):
        for t in range(steps):
            hcat[..., h:-1] = xs[:, t]
            np.matmul(hcat[None], w_stack, out=z)
            i, f, o, g = z[0], z[1], z[2], z[3]
            _sigmoid_unsafe(z[:3])
            np.tanh(g, out=g)
            np.multiply(i, g, out=ig)
            # Elementwise ops are alias-safe, so c_buf doubles as c_prev.
            np.multiply(f, c_prev, out=c_buf)
            c_buf += ig
            c_prev = c_buf
            np.tanh(c_buf, out=tanh_buf)
            np.multiply(o, tanh_buf, out=hrow)
            if hiddens is not None:
                hiddens[:, t] = hrow

    return hiddens, np.ascontiguousarray(hrow)


def _fused_backward(cache, grad_h_steps, compute_input_grad=True):
    """Shared backpropagation-through-time over stacked directions.

    Args:
        cache: The dict produced by :func:`_train_forward`.
        grad_h_steps: ``[D, steps, batch, H]`` upstream gradient in each
            direction's processing order.
        compute_input_grad: When ``False`` the input gradient is skipped
            (``d_x`` comes back ``None``) -- a first-layer optimization,
            since nothing consumes the gradient of the model input.

    Returns:
        ``(d_x, d_wx, d_wh, d_b)`` with shapes ``[D, steps, batch, F]``
        (or ``None``), ``[D, F, 4H]``, ``[D, H, 4H]`` and ``[D, 4H]``.
    """
    w_full = cache["w_full"]
    hist = cache["hist"]
    gates = cache["gates"]
    cells = cache["cells"]
    cell_tanh = cache["tanh_c"]
    d, steps, batch, g4 = gates.shape
    h = g4 // 4
    k = hist.shape[-1]
    in_features = k - h - 1
    w_h_t = np.ascontiguousarray(w_full[:, :h, :].transpose(0, 2, 1))
    w_x_t = np.ascontiguousarray(w_full[:, h:-1, :].transpose(0, 2, 1))

    dz = np.empty((d, steps, batch, g4))
    dh = np.empty((d, batch, h))
    dct = np.empty((d, batch, h))
    tmp = np.empty((d, batch, h))
    fct = np.empty((d, batch, 3 * h))
    dh_next = np.zeros((d, batch, h))
    dc_next = np.zeros((d, batch, h))
    zeros_h = np.zeros((d, batch, h))

    for t in reversed(range(steps)):
        zt = gates[:, t]
        i = zt[..., :h]
        f = zt[..., h:2 * h]
        g = zt[..., 3 * h:]
        tanh_c = cell_tanh[:, t]
        c_in = cells[:, t - 1] if t > 0 else zeros_h

        np.add(grad_h_steps[:, t], dh_next, out=dh)
        dzt = dz[:, t]
        di = dzt[..., :h]
        df = dzt[..., h:2 * h]
        do = dzt[..., 2 * h:3 * h]
        dg = dzt[..., 3 * h:]

        # dct = dh * o * (1 - tanh_c^2) + dc_next
        np.multiply(dh, zt[..., 2 * h:3 * h], out=dct)
        np.multiply(tanh_c, tanh_c, out=tmp)
        np.subtract(1.0, tmp, out=tmp)
        dct *= tmp
        dct += dc_next

        # Upstream products into the fused [D, steps, batch, 4H] buffer...
        np.multiply(dct, g, out=di)      # di = dct*g
        np.multiply(dct, c_in, out=df)   # df = dct*c_in
        np.multiply(dh, tanh_c, out=do)  # do = dh*tanh_c
        np.multiply(dct, i, out=dg)      # dg = dct*i
        # ...then one y*(1-y) pass over the contiguous sigmoid block
        # (i, f, o) and the tanh derivative for g.
        sig = zt[..., :3 * h]
        np.subtract(1.0, sig, out=fct)
        fct *= sig
        dzt[..., :3 * h] *= fct
        np.multiply(g, g, out=tmp)
        np.subtract(1.0, tmp, out=tmp)
        dg *= tmp

        np.multiply(dct, f, out=dc_next)
        np.matmul(dzt, w_h_t, out=dh_next)

    # One GEMM per direction against the step-input history yields the
    # recurrent, kernel *and* bias gradients together (rows of the fused
    # [K, 4H] matrix), in a single pass over dz; direction-major layout
    # makes every reshape below a free view.
    d_fused = np.empty((d, k, g4))
    d_x = np.empty((d, steps, batch, in_features)) if compute_input_grad else None
    for direction in range(d):
        dz_flat = dz[direction].reshape(steps * batch, g4)
        hist_flat = hist[direction, :steps].reshape(steps * batch, k)
        np.matmul(hist_flat.T, dz_flat, out=d_fused[direction])
        if compute_input_grad:
            np.matmul(
                dz_flat, w_x_t[direction],
                out=d_x[direction].reshape(steps * batch, in_features),
            )
    # Weight/bias gradients leave in parameter gate order (i, f, g, o);
    # the permutation is its own inverse.
    perm = _gate_perm(h)
    d_fused = d_fused[:, :, perm]
    return d_x, d_fused[:, h:-1], d_fused[:, :h], d_fused[:, -1]


class LSTM(Layer):
    """Unidirectional LSTM over ``[batch, time, features]`` input.

    Args:
        units: Hidden state width H.
        return_sequences: If ``True`` (default) output is
            ``[batch, time, H]``; otherwise the final hidden state
            ``[batch, H]``.
        go_backwards: Process the sequence in reverse time order.  The
            output is flipped back so it stays aligned with the input's
            time axis (what a bidirectional wrapper needs).
        seed: Weight-initialization randomness.
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        go_backwards: bool = False,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.go_backwards = bool(go_backwards)
        self._rng = as_generator(seed)
        self._cache = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate the fused kernel/recurrent/bias parameter blocks."""
        require(len(input_shape) == 3, "LSTM input must be [batch, time, features]")
        in_features = int(input_shape[-1])
        h = self.units
        glorot = GlorotUniform()
        orthogonal = Orthogonal()
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # forget-gate bias
        self.parameters = {
            "kernel": glorot((in_features, 4 * h), self._rng),
            "recurrent": np.concatenate(
                [orthogonal((h, h), self._rng) for _ in range(4)], axis=1
            ),
            "bias": bias,
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the recurrence over all timesteps.

        With ``training=True`` the activations needed by :meth:`backward`
        are cached; with ``training=False`` (inference) the fast path
        keeps no history beyond the rolling hidden/cell state.
        """
        self.ensure_built(x.shape)
        if self.go_backwards:
            x = x[:, ::-1, :]
        w_full = fuse_weights(self.parameters)[None]       # D = 1
        xs = np.ascontiguousarray(np.transpose(x, (1, 0, 2)))[None]

        if training:
            hiddens, self._cache = _train_forward(w_full, xs)
            output = np.transpose(hiddens[0], (1, 0, 2))
            if not self.return_sequences:
                # The final state is the last *processing* step's hidden
                # state, matching backward()'s grad placement.
                return output[:, -1, :].copy()
            if self.go_backwards:
                output = output[:, ::-1, :]
            return output

        hiddens, h_final = _infer_forward(w_full, xs, self.return_sequences)
        self._cache = None
        if not self.return_sequences:
            return h_final[0]
        output = np.transpose(hiddens[0], (1, 0, 2))
        if self.go_backwards:
            output = output[:, ::-1, :]
        return output

    #: :meth:`backward` accepts ``compute_input_grad=False`` (see
    #: :meth:`repro.nn.model.Model.backward`).
    can_skip_input_grad = True

    def backward(
        self, grad_output: np.ndarray, compute_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Backpropagate through time using the fused training cache."""
        cache = self._cache
        if cache is None:
            raise NotTrainedError(
                f"layer {self.name!r} has no backward cache; run "
                "forward(..., training=True) before backward() -- the "
                "inference fast path does not retain activations"
            )
        _, steps, batch, _ = cache["gates"].shape
        h = self.units

        # Normalize the upstream gradient to per-(processing)step layout.
        if self.return_sequences:
            grad_seq = grad_output
            if self.go_backwards:
                grad_seq = grad_seq[:, ::-1, :]
            grad_h_steps = np.empty((1, steps, batch, h))
            grad_h_steps[0] = np.transpose(grad_seq, (1, 0, 2))
        else:
            grad_h_steps = np.zeros((1, steps, batch, h))
            grad_h_steps[0, -1] = grad_output

        d_x, d_wx, d_wh, d_b = _fused_backward(
            cache, grad_h_steps, compute_input_grad
        )
        self.gradients = {"kernel": d_wx[0], "recurrent": d_wh[0], "bias": d_b[0]}
        if not compute_input_grad:
            return None
        d_x = np.transpose(d_x[0], (1, 0, 2))
        if self.go_backwards:
            d_x = d_x[:, ::-1, :]
        return d_x
