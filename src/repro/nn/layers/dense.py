"""Fully connected layer and Flatten reshaping layer."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.activations import get_activation
from repro.nn.initializers import GlorotUniform, Zeros
from repro.nn.layers.base import Layer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_positive


class Dense(Layer):
    """Affine transform ``y = activation(x @ W + b)`` over the last axis.

    Accepts inputs of any rank >= 2; leading axes (batch, time, ...) are
    preserved, so the same layer works time-distributed over sequences.

    Args:
        units: Output feature count.
        activation: ``None`` (linear), an activation name, or an instance.
        seed: Weight-initialization randomness.
        name: Layer name used in weight files.
    """

    def __init__(self, units: int, activation=None, seed: SeedLike = None, name=None):
        super().__init__(name=name)
        require_positive(units, "units")
        self.units = int(units)
        self.activation = get_activation(activation)
        self._rng = as_generator(seed)
        self._cache_input: np.ndarray = None
        self._cache_output: np.ndarray = None

    def build(self, input_shape: Tuple[int, ...]) -> None:
        in_features = int(input_shape[-1])
        self.parameters = {
            "kernel": GlorotUniform()((in_features, self.units), self._rng),
            "bias": Zeros()((self.units,), self._rng),
        }
        super().build(input_shape)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.ensure_built(x.shape)
        self._cache_input = x
        pre = x @ self.parameters["kernel"] + self.parameters["bias"]
        self._cache_output = self.activation.forward(pre)
        return self._cache_output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_pre = grad_output * self.activation.derivative_from_output(
            self._cache_output
        )
        x = self._cache_input
        # Collapse any leading axes into one batch axis for the weight grads.
        flat_x = x.reshape(-1, x.shape[-1])
        flat_grad = grad_pre.reshape(-1, self.units)
        self.gradients = {
            "kernel": flat_x.T @ flat_grad,
            "bias": flat_grad.sum(axis=0),
        }
        return grad_pre @ self.parameters["kernel"].T


class Flatten(Layer):
    """Collapse all non-batch axes into one feature axis."""

    def __init__(self, name=None):
        super().__init__(name=name)
        self._input_shape: Tuple[int, ...] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.ensure_built(x.shape)
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output.reshape(self._input_shape)
