"""Neural-network layers with explicit forward/backward passes."""

from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense, Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.gru import GRU
from repro.nn.layers.bilstm import BiLSTM

__all__ = ["Layer", "Dense", "Flatten", "Dropout", "LSTM", "GRU", "BiLSTM"]
