"""Bidirectional LSTM: the paper's sequence encoder (Sec. IV-B).

Wraps a forward and a backward :class:`~repro.nn.layers.lstm.LSTM` over
the same input and concatenates their time-aligned outputs, so each
timestep's feature vector sees both past and future channel context --
the property the paper leans on for predicting Bob's measurements from
Alice's.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.nn.layers.base import Layer
from repro.nn.layers.lstm import LSTM
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


class BiLSTM(Layer):
    """Bidirectional LSTM with concatenated outputs.

    Args:
        units: Hidden width *per direction*; output features are ``2 * units``.
        return_sequences: If ``True`` output is ``[batch, time, 2H]``;
            otherwise the two final states concatenated, ``[batch, 2H]``.
        seed: Weight-initialization randomness (split between directions).
    """

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        rng = as_generator(seed)
        self.units = int(units)
        self.return_sequences = bool(return_sequences)
        self.forward_lstm = LSTM(
            units,
            return_sequences=return_sequences,
            go_backwards=False,
            seed=rng,
            name=f"{self.name}-fwd",
        )
        self.backward_lstm = LSTM(
            units,
            return_sequences=return_sequences,
            go_backwards=True,
            seed=rng,
            name=f"{self.name}-bwd",
        )

    def build(self, input_shape: Tuple[int, ...]) -> None:
        self.forward_lstm.build(input_shape)
        self.backward_lstm.build(input_shape)
        super().build(input_shape)

    # Parameters live in the sub-layers; expose them with prefixed names so
    # serialization and the optimizer see one flat dict.
    @property
    def parameters(self) -> Dict[str, np.ndarray]:  # type: ignore[override]
        merged = {f"fwd/{k}": v for k, v in self.forward_lstm.parameters.items()}
        merged.update(
            {f"bwd/{k}": v for k, v in self.backward_lstm.parameters.items()}
        )
        return merged

    @parameters.setter
    def parameters(self, value: Dict[str, np.ndarray]) -> None:
        # Assigned by Layer.__init__ with {} before sub-layers exist; real
        # parameter state is delegated, so only non-empty loads are routed.
        if value:
            self._route(value, target="parameters")

    @property
    def gradients(self) -> Dict[str, np.ndarray]:  # type: ignore[override]
        merged = {f"fwd/{k}": v for k, v in self.forward_lstm.gradients.items()}
        merged.update(
            {f"bwd/{k}": v for k, v in self.backward_lstm.gradients.items()}
        )
        return merged

    @gradients.setter
    def gradients(self, value: Dict[str, np.ndarray]) -> None:
        if not hasattr(self, "forward_lstm"):
            # Layer.__init__ assigns {} before the sub-layers exist.
            return
        if value:
            self._route(value, target="gradients")
        else:
            self.forward_lstm.gradients = {}
            self.backward_lstm.gradients = {}

    def _route(self, value: Dict[str, np.ndarray], target: str) -> None:
        fwd = {k[4:]: v for k, v in value.items() if k.startswith("fwd/")}
        bwd = {k[4:]: v for k, v in value.items() if k.startswith("bwd/")}
        require(
            len(fwd) + len(bwd) == len(value),
            "BiLSTM weight keys must be prefixed with fwd/ or bwd/",
        )
        setattr(self.forward_lstm, target, fwd)
        setattr(self.backward_lstm, target, bwd)

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        fwd = {k[4:]: v for k, v in weights.items() if k.startswith("fwd/")}
        bwd = {k[4:]: v for k, v in weights.items() if k.startswith("bwd/")}
        require(
            len(fwd) + len(bwd) == len(weights),
            "BiLSTM weight keys must be prefixed with fwd/ or bwd/",
        )
        self.forward_lstm.set_weights(fwd)
        self.backward_lstm.set_weights(bwd)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self.ensure_built(x.shape)
        fwd_out = self.forward_lstm.forward(x, training=training)
        bwd_out = self.backward_lstm.forward(x, training=training)
        return np.concatenate([fwd_out, bwd_out], axis=-1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        h = self.units
        grad_fwd = grad_output[..., :h]
        grad_bwd = grad_output[..., h:]
        return self.forward_lstm.backward(grad_fwd) + self.backward_lstm.backward(
            grad_bwd
        )

    def zero_gradients(self) -> None:
        self.forward_lstm.zero_gradients()
        self.backward_lstm.zero_gradients()
