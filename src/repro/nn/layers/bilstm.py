"""Bidirectional LSTM: the paper's sequence encoder (Sec. IV-B).

Wraps a forward and a backward :class:`~repro.nn.layers.lstm.LSTM` over
the same input and concatenates their time-aligned outputs, so each
timestep's feature vector sees both past and future channel context --
the property the paper leans on for predicting Bob's measurements from
Alice's.

Both directions run through the *same* fused recurrent kernel
(:mod:`repro.nn.layers.lstm`) in one call with a stacked direction axis
(``D = 2``), so every per-step GEMM and ufunc pass covers both
directions at once -- half the dispatch count of running the two
sub-layers back to back.  The sub-layers still own the parameters (and
receive the gradients), keeping serialization and the optimizer
unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import NotTrainedError
from repro.nn.layers.base import Layer
from repro.nn.layers.lstm import (
    LSTM,
    _fused_backward,
    _infer_forward,
    _train_forward,
    fuse_weights,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


class BiLSTM(Layer):
    """Bidirectional LSTM with concatenated outputs.

    Args:
        units: Hidden width *per direction*; output features are ``2 * units``.
        return_sequences: If ``True`` output is ``[batch, time, 2H]``;
            otherwise the two final states concatenated, ``[batch, 2H]``.
        seed: Weight-initialization randomness (split between directions).
    """

    #: LSTM implementation both directions are built from; the frozen
    #: pre-vectorization baseline in ``layers/reference.py`` overrides it.
    lstm_cls = LSTM

    def __init__(
        self,
        units: int,
        return_sequences: bool = True,
        seed: SeedLike = None,
        name=None,
    ):
        super().__init__(name=name)
        rng = as_generator(seed)
        self.units = int(units)
        self._cache = None
        self.return_sequences = bool(return_sequences)
        self.forward_lstm = self.lstm_cls(
            units,
            return_sequences=return_sequences,
            go_backwards=False,
            seed=rng,
            name=f"{self.name}-fwd",
        )
        self.backward_lstm = self.lstm_cls(
            units,
            return_sequences=return_sequences,
            go_backwards=True,
            seed=rng,
            name=f"{self.name}-bwd",
        )

    def build(self, input_shape: Tuple[int, ...]) -> None:
        self.forward_lstm.build(input_shape)
        self.backward_lstm.build(input_shape)
        super().build(input_shape)

    # Parameters live in the sub-layers; expose them with prefixed names so
    # serialization and the optimizer see one flat dict.
    @property
    def parameters(self) -> Dict[str, np.ndarray]:  # type: ignore[override]
        merged = {f"fwd/{k}": v for k, v in self.forward_lstm.parameters.items()}
        merged.update(
            {f"bwd/{k}": v for k, v in self.backward_lstm.parameters.items()}
        )
        return merged

    @parameters.setter
    def parameters(self, value: Dict[str, np.ndarray]) -> None:
        # Assigned by Layer.__init__ with {} before sub-layers exist; real
        # parameter state is delegated, so only non-empty loads are routed.
        if value:
            self._route(value, target="parameters")

    @property
    def gradients(self) -> Dict[str, np.ndarray]:  # type: ignore[override]
        merged = {f"fwd/{k}": v for k, v in self.forward_lstm.gradients.items()}
        merged.update(
            {f"bwd/{k}": v for k, v in self.backward_lstm.gradients.items()}
        )
        return merged

    @gradients.setter
    def gradients(self, value: Dict[str, np.ndarray]) -> None:
        if not hasattr(self, "forward_lstm"):
            # Layer.__init__ assigns {} before the sub-layers exist.
            return
        if value:
            self._route(value, target="gradients")
        else:
            self.forward_lstm.gradients = {}
            self.backward_lstm.gradients = {}

    def _route(self, value: Dict[str, np.ndarray], target: str) -> None:
        fwd = {k[4:]: v for k, v in value.items() if k.startswith("fwd/")}
        bwd = {k[4:]: v for k, v in value.items() if k.startswith("bwd/")}
        require(
            len(fwd) + len(bwd) == len(value),
            "BiLSTM weight keys must be prefixed with fwd/ or bwd/",
        )
        setattr(self.forward_lstm, target, fwd)
        setattr(self.backward_lstm, target, bwd)

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        fwd = {k[4:]: v for k, v in weights.items() if k.startswith("fwd/")}
        bwd = {k[4:]: v for k, v in weights.items() if k.startswith("bwd/")}
        require(
            len(fwd) + len(bwd) == len(weights),
            "BiLSTM weight keys must be prefixed with fwd/ or bwd/",
        )
        self.forward_lstm.set_weights(fwd)
        self.backward_lstm.set_weights(bwd)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run both directions and concatenate their outputs on features.

        With the standard :class:`LSTM` sub-layers, both directions go
        through one fused-kernel call with a stacked direction axis; a
        custom ``lstm_cls`` (e.g. the frozen reference implementation)
        falls back to running the sub-layers independently.
        """
        self.ensure_built(x.shape)
        if self.lstm_cls is not LSTM:
            fwd_out = self.forward_lstm.forward(x, training=training)
            bwd_out = self.backward_lstm.forward(x, training=training)
            return np.concatenate([fwd_out, bwd_out], axis=-1)

        batch, steps, in_features = x.shape
        h = self.units
        w_full = np.stack([
            fuse_weights(self.forward_lstm.parameters),
            fuse_weights(self.backward_lstm.parameters),
        ])
        # Direction 0 processes time forward, direction 1 reversed.
        xs = np.empty((2, steps, batch, in_features))
        x_steps = np.transpose(x, (1, 0, 2))
        xs[0] = x_steps
        xs[1] = x_steps[::-1]

        if training:
            hiddens, self._cache = _train_forward(w_full, xs)
        else:
            self._cache = None
            hiddens, h_final = _infer_forward(w_full, xs, self.return_sequences)
            if not self.return_sequences:
                out = np.empty((batch, 2 * h))
                out[:, :h] = h_final[0]
                out[:, h:] = h_final[1]
                return out

        if not self.return_sequences:
            out = np.empty((batch, 2 * h))
            out[:, :h] = hiddens[0, -1]
            out[:, h:] = hiddens[1, -1]
            return out
        # Direction 1 ran on reversed time, so flip it back into input
        # order before concatenating along features.
        out = np.empty((batch, steps, 2 * h))
        out[:, :, :h] = np.transpose(hiddens[0], (1, 0, 2))
        out[:, :, h:] = np.transpose(hiddens[1, ::-1], (1, 0, 2))
        return out

    @property
    def can_skip_input_grad(self) -> bool:
        """Whether :meth:`backward` honours ``compute_input_grad=False``.

        Only the fused path supports the skip; a custom ``lstm_cls`` (the
        frozen reference baseline) keeps the plain protocol.
        """
        return self.lstm_cls is LSTM

    def backward(
        self, grad_output: np.ndarray, compute_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Backpropagate through both directions in one fused pass."""
        h = self.units
        if self.lstm_cls is not LSTM:
            grad_fwd = grad_output[..., :h]
            grad_bwd = grad_output[..., h:]
            return self.forward_lstm.backward(grad_fwd) + self.backward_lstm.backward(
                grad_bwd
            )

        cache = self._cache
        if cache is None:
            raise NotTrainedError(
                f"layer {self.name!r} has no backward cache; run "
                "forward(..., training=True) before backward() -- the "
                "inference fast path does not retain activations"
            )
        _, steps, batch, _ = cache["gates"].shape

        # Upstream gradient into each direction's processing order.
        if self.return_sequences:
            grad_h_steps = np.empty((2, steps, batch, h))
            grad_h_steps[0] = np.transpose(grad_output[..., :h], (1, 0, 2))
            grad_h_steps[1] = np.transpose(grad_output[..., h:], (1, 0, 2))[::-1]
        else:
            grad_h_steps = np.zeros((2, steps, batch, h))
            grad_h_steps[0, -1] = grad_output[:, :h]
            grad_h_steps[1, -1] = grad_output[:, h:]

        d_x, d_wx, d_wh, d_b = _fused_backward(
            cache, grad_h_steps, compute_input_grad
        )
        self.forward_lstm.gradients = {
            "kernel": d_wx[0], "recurrent": d_wh[0], "bias": d_b[0],
        }
        self.backward_lstm.gradients = {
            "kernel": d_wx[1], "recurrent": d_wh[1], "bias": d_b[1],
        }
        if not compute_input_grad:
            return None
        # Direction 1's input gradient is in reversed time order.
        grad_x = np.transpose(d_x[0], (1, 0, 2))
        grad_x += np.transpose(d_x[1, ::-1], (1, 0, 2))
        return grad_x

    def zero_gradients(self) -> None:
        self.forward_lstm.zero_gradients()
        self.backward_lstm.zero_gradients()
