"""Layer interface.

A layer owns named parameter arrays and their gradient accumulators.
``forward`` caches whatever the matching ``backward`` needs; ``backward``
consumes the upstream gradient, fills ``self.gradients`` and returns the
gradient with respect to the layer input.  Layers are single-use per
forward/backward pair (the standard training-loop discipline).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotTrainedError


class Layer(abc.ABC):
    """Base class for all layers."""

    def __init__(self, name: str = None):
        self.name = name if name is not None else type(self).__name__.lower()
        self.built = False
        self.parameters: Dict[str, np.ndarray] = {}
        self.gradients: Dict[str, np.ndarray] = {}

    # -- construction -----------------------------------------------------
    def build(self, input_shape: Tuple[int, ...]) -> None:
        """Allocate parameters for the given input shape (batch axis first).

        The default implementation marks the layer built; parameterized
        layers override and call ``super().build(...)`` last.
        """
        self.built = True

    def ensure_built(self, input_shape: Tuple[int, ...]) -> None:
        """Build on first use."""
        if not self.built:
            self.build(input_shape)

    # -- computation ------------------------------------------------------
    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate: fill ``self.gradients`` and return dL/d(input)."""

    # -- parameter plumbing -------------------------------------------------
    def zero_gradients(self) -> None:
        """Reset all gradient accumulators to zero."""
        for key, param in self.parameters.items():
            self.gradients[key] = np.zeros_like(param)

    def parameter_list(self) -> List[Tuple[np.ndarray, np.ndarray]]:
        """(parameter, gradient) pairs in stable (sorted-name) order."""
        pairs = []
        for key in sorted(self.parameters):
            if key not in self.gradients:
                raise NotTrainedError(
                    f"layer {self.name!r} has no gradient for {key!r}; "
                    "run backward() before optimizing"
                )
            pairs.append((self.parameters[key], self.gradients[key]))
        return pairs

    def get_weights(self) -> Dict[str, np.ndarray]:
        """Copies of the parameter arrays, keyed by name."""
        return {key: value.copy() for key, value in self.parameters.items()}

    def set_weights(self, weights: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`get_weights`."""
        if set(weights) != set(self.parameters):
            raise ConfigurationError(
                f"layer {self.name!r} expects weights {sorted(self.parameters)}, "
                f"got {sorted(weights)}"
            )
        for key, value in weights.items():
            if value.shape != self.parameters[key].shape:
                raise ConfigurationError(
                    f"weight {key!r} of layer {self.name!r}: shape "
                    f"{value.shape} != expected {self.parameters[key].shape}"
                )
            self.parameters[key] = value.astype(float).copy()
        self.gradients = {}
