"""Sequential model container: training loop, prediction, persistence."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.layers.base import Layer
from repro.nn.losses import Loss, MeanSquaredError
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.serialization import load_weights, save_weights
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


class Model:
    """A plain layer stack trained with mini-batch gradient descent.

    Args:
        layers: Layers applied in order.
        loss: Training objective (default MSE).
        optimizer: Parameter update rule (default Adam).
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        loss: Loss = None,
        optimizer: Optimizer = None,
    ):
        require(len(layers) > 0, "a model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.loss = loss if loss is not None else MeanSquaredError()
        self.optimizer = optimizer if optimizer is not None else Adam()

    # -- inference ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the stack; with ``training=True``, dropout etc. are active."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference in batches (keeps memory bounded on big inputs).

        An empty input returns an empty array with the correct trailing
        (output) shape rather than crashing on the batch concatenation.
        """
        require_positive(batch_size, "batch_size")
        if len(x) == 0:
            # A zero-row forward pass still yields the stack's output shape.
            return self.forward(x, training=False)
        outputs = [
            self.forward(x[i:i + batch_size], training=False)
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    # -- training ----------------------------------------------------------
    def backward(
        self, grad_output: np.ndarray, need_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Backpropagate an upstream gradient through the whole stack.

        With ``need_input_grad=False`` the first layer is allowed to skip
        computing the gradient with respect to the model *input* (nothing
        consumes it during training); layers advertise support via
        ``can_skip_input_grad`` and ``None`` is returned in that case.
        """
        grad = grad_output
        first = self.layers[0]
        for layer in reversed(self.layers[1:]):
            grad = layer.backward(grad)
        if not need_input_grad and getattr(first, "can_skip_input_grad", False):
            first.backward(grad, compute_input_grad=False)
            return None
        return first.backward(grad)

    def train_batch(self, x: np.ndarray, y: np.ndarray) -> float:
        """One optimization step on a batch; returns the batch loss."""
        prediction = self.forward(x, training=True)
        batch_loss = self.loss.value(y, prediction)
        self.backward(self.loss.gradient(y, prediction), need_input_grad=False)
        self.optimizer.apply(self._parameter_list())
        return batch_loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 10,
        batch_size: int = 32,
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        early_stopping: Optional[EarlyStopping] = None,
        shuffle_seed: SeedLike = 0,
        verbose: bool = False,
    ) -> History:
        """Mini-batch training with optional validation and early stopping.

        Returns the :class:`History` of per-epoch train (and validation)
        losses.  When early stopping fires with ``restore_best=True``, the
        best-validation-epoch weights are restored before returning.
        """
        require(len(x) == len(y), "x and y must have the same number of rows")
        require_positive(epochs, "epochs")
        require_positive(batch_size, "batch_size")
        rng = as_generator(shuffle_seed)
        history = History()
        best_weights = None
        if early_stopping is not None:
            early_stopping.reset()

        for epoch in range(epochs):
            order = rng.permutation(len(x))
            epoch_losses = []
            for start in range(0, len(x), batch_size):
                batch_idx = order[start:start + batch_size]
                epoch_losses.append(self.train_batch(x[batch_idx], y[batch_idx]))
            record = {"loss": float(np.mean(epoch_losses))}
            monitored = record["loss"]
            if validation_data is not None:
                val_x, val_y = validation_data
                val_pred = self.predict(val_x)
                record["val_loss"] = self.loss.value(val_y, val_pred)
                monitored = record["val_loss"]
            history.record(epoch, **record)
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch}: " + ", ".join(f"{k}={v:.5f}" for k, v in record.items()))
            if early_stopping is not None:
                stop = early_stopping.update(epoch, monitored)
                if early_stopping.best_epoch == epoch and early_stopping.restore_best:
                    best_weights = self.get_weights()
                if stop:
                    break
        if early_stopping is not None and early_stopping.restore_best and best_weights:
            self.set_weights(best_weights)
        return history

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss on a held-out set."""
        return self.loss.value(y, self.predict(x))

    # -- parameter plumbing -------------------------------------------------
    def _parameter_list(self):
        pairs = []
        for layer in self.layers:
            pairs.extend(layer.parameter_list())
        return pairs

    def get_weights(self) -> List[dict]:
        """Per-layer weight dicts (deep copies)."""
        return [layer.get_weights() for layer in self.layers]

    def set_weights(self, weights: List[dict]) -> None:
        """Restore weights captured by :meth:`get_weights`."""
        if len(weights) != len(self.layers):
            raise ConfigurationError(
                f"got weights for {len(weights)} layers, model has {len(self.layers)}"
            )
        for layer, layer_weights in zip(self.layers, weights):
            if layer.parameters:
                layer.set_weights(layer_weights)

    def save(self, path: Union[str, Path]) -> None:
        """Persist all layer weights to an ``.npz`` file."""
        save_weights(self.layers, path)

    def load(self, path: Union[str, Path]) -> None:
        """Load weights written by :meth:`save` (build the model first)."""
        load_weights(self.layers, path)
