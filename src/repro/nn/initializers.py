"""Weight initializers."""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require


class Initializer(abc.ABC):
    """Produces an initial weight array of a given shape."""

    @abc.abstractmethod
    def __call__(self, shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
        """Return a float64 array of ``shape``."""


class Zeros(Initializer):
    """All-zero initialization (biases)."""

    def __call__(self, shape, rng):
        return np.zeros(shape)


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform: U(-L, L) with ``L = sqrt(6 / (fan_in + fan_out))``."""

    def __call__(self, shape, rng):
        require(len(shape) >= 1, "GlorotUniform needs a non-scalar shape")
        if len(shape) == 1:
            fan_in = fan_out = shape[0]
        else:
            fan_in, fan_out = shape[0], shape[-1]
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape)


class Orthogonal(Initializer):
    """Orthogonal initialization for recurrent kernels (Saxe et al.)."""

    def __init__(self, gain: float = 1.0):
        self.gain = float(gain)

    def __call__(self, shape, rng):
        require(len(shape) == 2, "Orthogonal initializer needs a 2-D shape")
        rows, cols = shape
        size = max(rows, cols)
        matrix = rng.standard_normal((size, size))
        q, r = np.linalg.qr(matrix)
        # Fix the signs so the distribution is uniform over orthogonal matrices.
        q *= np.sign(np.diag(r))
        return self.gain * q[:rows, :cols]


def default_rng(seed: SeedLike) -> np.random.Generator:
    """Shared helper so layers can accept ``int | Generator | None`` seeds."""
    return as_generator(seed)
