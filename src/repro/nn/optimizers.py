"""First-order optimizers: SGD (with momentum) and Adam.

Optimizers update parameter arrays *in place*.  Per-parameter state (Adam
moments, SGD velocity) is keyed by the parameter array's identity, so the
same optimizer instance can drive several layers -- or, as in the paper's
autoencoder, several cooperating networks.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import require, require_in_range, require_positive

ParamGrad = Tuple[np.ndarray, np.ndarray]


class Optimizer(abc.ABC):
    """Base class: applies gradients to parameters in place."""

    def __init__(self, learning_rate: float):
        require_positive(learning_rate, "learning_rate")
        self.learning_rate = float(learning_rate)
        self.iterations = 0

    def apply(self, params_and_grads: Iterable[ParamGrad]) -> None:
        """One update step over all (parameter, gradient) pairs."""
        self.iterations += 1
        for param, grad in params_and_grads:
            require(
                param.shape == grad.shape,
                f"gradient shape {grad.shape} != parameter shape {param.shape}",
            )
            self._update(param, grad)

    @abc.abstractmethod
    def _update(self, param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one parameter's update in place."""

    # -- checkpointing ------------------------------------------------------
    def get_state(self, params: Sequence[np.ndarray]) -> Dict:
        """Snapshot the optimizer state for the given ordered parameters.

        Per-parameter state is internally keyed by array identity, which
        does not survive serialization; the snapshot re-keys it by the
        *position* of each array in ``params``.  Restoring against the
        same ordered parameter list (see :meth:`set_state`) reproduces the
        optimizer bit-for-bit, which is what makes crash-resumed training
        deterministic.
        """
        return {
            "learning_rate": self.learning_rate,
            "iterations": self.iterations,
            "slots": self._slot_arrays(params),
        }

    def set_state(self, params: Sequence[np.ndarray], state: Dict) -> None:
        """Restore a snapshot from :meth:`get_state` onto ``params``."""
        self.learning_rate = float(state["learning_rate"])
        self.iterations = int(state["iterations"])
        self._load_slot_arrays(params, state["slots"])

    def _slot_arrays(self, params: Sequence[np.ndarray]) -> Dict[str, List]:
        """Per-parameter state arrays in ``params`` order (none by default)."""
        return {}

    def _load_slot_arrays(
        self, params: Sequence[np.ndarray], slots: Dict[str, List]
    ) -> None:
        """Rebind per-parameter state arrays onto ``params`` (none by default)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0):
        super().__init__(learning_rate)
        require_in_range(momentum, 0.0, 0.999, "momentum")
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def _update(self, param, grad):
        if self.momentum == 0.0:
            param -= self.learning_rate * grad
            return
        key = id(param)
        velocity = self._velocity.get(key)
        if velocity is None:
            velocity = np.zeros_like(param)
        velocity = self.momentum * velocity - self.learning_rate * grad
        self._velocity[key] = velocity
        param += velocity

    def _slot_arrays(self, params):
        return {
            "velocity": [
                np.array(self._velocity.get(id(p), np.zeros_like(p))) for p in params
            ]
        }

    def _load_slot_arrays(self, params, slots):
        self._velocity = {
            id(p): np.array(v, dtype=float)
            for p, v in zip(params, slots["velocity"])
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta_1: float = 0.9,
        beta_2: float = 0.999,
        epsilon: float = 1e-8,
    ):
        super().__init__(learning_rate)
        require_in_range(beta_1, 0.0, 0.9999, "beta_1")
        require_in_range(beta_2, 0.0, 0.9999, "beta_2")
        require_positive(epsilon, "epsilon")
        self.beta_1 = float(beta_1)
        self.beta_2 = float(beta_2)
        self.epsilon = float(epsilon)
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t: Dict[int, int] = {}

    def _update(self, param, grad):
        key = id(param)
        m = self._m.get(key)
        if m is None:
            m = np.zeros_like(param)
            self._v[key] = np.zeros_like(param)
            self._t[key] = 0
        v = self._v[key]
        self._t[key] += 1
        t = self._t[key]
        m = self.beta_1 * m + (1.0 - self.beta_1) * grad
        v = self.beta_2 * v + (1.0 - self.beta_2) * grad**2
        self._m[key], self._v[key] = m, v
        m_hat = m / (1.0 - self.beta_1**t)
        v_hat = v / (1.0 - self.beta_2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def _slot_arrays(self, params):
        return {
            "m": [np.array(self._m.get(id(p), np.zeros_like(p))) for p in params],
            "v": [np.array(self._v.get(id(p), np.zeros_like(p))) for p in params],
            "t": [int(self._t.get(id(p), 0)) for p in params],
        }

    def _load_slot_arrays(self, params, slots):
        self._m = {
            id(p): np.array(m, dtype=float) for p, m in zip(params, slots["m"])
        }
        self._v = {
            id(p): np.array(v, dtype=float) for p, v in zip(params, slots["v"])
        }
        self._t = {id(p): int(t) for p, t in zip(params, slots["t"])}
