"""Activation functions with derivatives expressed via their outputs.

Each activation exposes ``forward(x)`` and ``derivative_from_output(y)``
where ``y = forward(x)``; sigmoid and tanh derivatives are cheapest in
terms of the cached output, and ReLU's output sign carries the same
information as its input sign.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError


def stable_sigmoid(x: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Numerically stable logistic sigmoid, optionally computed in place.

    Evaluates ``1 / (1 + exp(-x))`` for non-negative entries and the
    equivalent ``exp(x) / (1 + exp(x))`` for negative ones, so the
    exponential never overflows.  This is the single shared kernel for
    every sigmoid in the library (the :class:`Sigmoid` activation and the
    fused LSTM/GRU gate computations).

    Args:
        x: Input array.
        out: Optional output buffer (may alias ``x``); when given, the
            result is written into it with no new allocation for the
            output, which is what the recurrent kernels rely on to avoid
            per-timestep garbage.

    Returns:
        The sigmoid of ``x`` (``out`` when it was provided).

    Stability: ``exp(-x)`` may overflow to ``inf`` for ``x < -708``, but
    ``1 / (1 + inf)`` then rounds to the same zero/denormal the classic
    two-branch split form produces (the true value underflows at that
    point anyway), so the *output* is stable for every input and the
    overflow warning is suppressed.  The branch-free form is ~3x faster
    than masked evaluation because it is four straight ufunc passes.
    """
    if out is None:
        out = np.empty_like(x, dtype=float)
    with np.errstate(over="ignore"):
        np.negative(x, out=out)
        np.exp(out, out=out)
        out += 1.0
        np.divide(1.0, out, out=out)
    return out


class Activation(abc.ABC):
    """Elementwise activation with an output-based derivative."""

    name: str = "activation"

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise."""

    @abc.abstractmethod
    def derivative_from_output(self, y: np.ndarray) -> np.ndarray:
        """d(activation)/dx expressed as a function of the *output* y."""


class Identity(Activation):
    """No-op activation (linear layer)."""

    name = "linear"

    def forward(self, x):
        return x

    def derivative_from_output(self, y):
        return np.ones_like(y)


class Sigmoid(Activation):
    """Logistic sigmoid, computed in a numerically stable split form."""

    name = "sigmoid"

    def forward(self, x):
        return stable_sigmoid(x)

    def derivative_from_output(self, y):
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def derivative_from_output(self, y):
        return 1.0 - y**2


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def derivative_from_output(self, y):
        return (y > 0).astype(float)


_BY_NAME = {
    "linear": Identity,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
}


def get_activation(spec) -> Activation:
    """Resolve ``None`` / name / instance into an :class:`Activation`."""
    if spec is None:
        return Identity()
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown activation {spec!r}; known: {sorted(_BY_NAME)}"
            )
    raise ConfigurationError(f"cannot interpret activation spec {spec!r}")
