"""Activation functions with derivatives expressed via their outputs.

Each activation exposes ``forward(x)`` and ``derivative_from_output(y)``
where ``y = forward(x)``; sigmoid and tanh derivatives are cheapest in
terms of the cached output, and ReLU's output sign carries the same
information as its input sign.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError


class Activation(abc.ABC):
    """Elementwise activation with an output-based derivative."""

    name: str = "activation"

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the activation elementwise."""

    @abc.abstractmethod
    def derivative_from_output(self, y: np.ndarray) -> np.ndarray:
        """d(activation)/dx expressed as a function of the *output* y."""


class Identity(Activation):
    """No-op activation (linear layer)."""

    name = "linear"

    def forward(self, x):
        return x

    def derivative_from_output(self, y):
        return np.ones_like(y)


class Sigmoid(Activation):
    """Logistic sigmoid, computed in a numerically stable split form."""

    name = "sigmoid"

    def forward(self, x):
        out = np.empty_like(x, dtype=float)
        positive = x >= 0
        out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
        exp_x = np.exp(x[~positive])
        out[~positive] = exp_x / (1.0 + exp_x)
        return out

    def derivative_from_output(self, y):
        return y * (1.0 - y)


class Tanh(Activation):
    """Hyperbolic tangent."""

    name = "tanh"

    def forward(self, x):
        return np.tanh(x)

    def derivative_from_output(self, y):
        return 1.0 - y**2


class ReLU(Activation):
    """Rectified linear unit."""

    name = "relu"

    def forward(self, x):
        return np.maximum(x, 0.0)

    def derivative_from_output(self, y):
        return (y > 0).astype(float)


_BY_NAME = {
    "linear": Identity,
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
}


def get_activation(spec) -> Activation:
    """Resolve ``None`` / name / instance into an :class:`Activation`."""
    if spec is None:
        return Identity()
    if isinstance(spec, Activation):
        return spec
    if isinstance(spec, str):
        try:
            return _BY_NAME[spec]()
        except KeyError:
            raise ConfigurationError(
                f"unknown activation {spec!r}; known: {sorted(_BY_NAME)}"
            )
    raise ConfigurationError(f"cannot interpret activation spec {spec!r}")
