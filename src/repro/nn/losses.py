"""Loss functions, including the paper's joint prediction+quantization loss.

Each loss exposes ``value(y_true, y_pred)`` and
``gradient(y_true, y_pred)`` = dL/d(y_pred), both averaged over the batch
axis so learning rates are batch-size independent.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.utils.validation import require, require_in_range

_EPS = 1e-12


class Loss(abc.ABC):
    """Scalar training objective with an analytic gradient."""

    @abc.abstractmethod
    def value(self, y_true: np.ndarray, y_pred: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
        """dL/d(y_pred), same shape as ``y_pred``."""


def _check_shapes(y_true: np.ndarray, y_pred: np.ndarray) -> None:
    require(
        y_true.shape == y_pred.shape,
        f"y_true {y_true.shape} and y_pred {y_pred.shape} must match",
    )


class MeanSquaredError(Loss):
    """Mean squared error over all elements (paper Eq. 4)."""

    def value(self, y_true, y_pred):
        _check_shapes(y_true, y_pred)
        return float(np.mean((y_true - y_pred) ** 2))

    def gradient(self, y_true, y_pred):
        _check_shapes(y_true, y_pred)
        return 2.0 * (y_pred - y_true) / y_pred.size


class BinaryCrossEntropy(Loss):
    """Binary cross-entropy on probabilities in (0, 1) (paper Eq. 5).

    Predictions are clipped away from {0, 1} for numerical stability; the
    gradient is the clipped analytic one.
    """

    def value(self, y_true, y_pred):
        _check_shapes(y_true, y_pred)
        p = np.clip(y_pred, _EPS, 1.0 - _EPS)
        per_element = -(y_true * np.log(p) + (1.0 - y_true) * np.log(1.0 - p))
        return float(per_element.sum() / y_pred.shape[0])

    def gradient(self, y_true, y_pred):
        _check_shapes(y_true, y_pred)
        p = np.clip(y_pred, _EPS, 1.0 - _EPS)
        return (p - y_true) / (p * (1.0 - p)) / y_pred.shape[0]


class JointPredictionQuantizationLoss:
    """The paper's Eq. 3: ``theta * MSE(y, y_hat) + (1-theta) * BCE(z, z_hat)``.

    Operates on the two-headed output of the prediction/quantization model:
    a regression head (predicted arRSSI sequence) and a classification head
    (predicted key bits).
    """

    def __init__(self, theta: float = 0.9):
        require_in_range(theta, 0.0, 1.0, "theta")
        self.theta = float(theta)
        self._mse = MeanSquaredError()
        self._bce = BinaryCrossEntropy()

    def value(
        self,
        y_true: np.ndarray,
        y_pred: np.ndarray,
        z_true: np.ndarray,
        z_pred: np.ndarray,
    ) -> float:
        """Weighted sum of the two head losses."""
        return self.theta * self._mse.value(y_true, y_pred) + (
            1.0 - self.theta
        ) * self._bce.value(z_true, z_pred)

    def gradients(
        self,
        y_true: np.ndarray,
        y_pred: np.ndarray,
        z_true: np.ndarray,
        z_pred: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-head gradients ``(dL/dy_pred, dL/dz_pred)``."""
        grad_y = self.theta * self._mse.gradient(y_true, y_pred)
        grad_z = (1.0 - self.theta) * self._bce.gradient(z_true, z_pred)
        return grad_y, grad_z
