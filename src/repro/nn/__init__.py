"""A from-scratch numpy deep-learning framework.

Replaces the paper's PyTorch/TensorFlow stack.  Layers implement explicit
forward/backward passes (no autograd); the :class:`~repro.nn.model.Model`
container wires them into a trainable network with mini-batch SGD/Adam,
losses, callbacks and weight serialization.  The framework is exactly as
big as Vehicle-Key needs: dense layers, (Bi)LSTM with full backpropagation
through time, dropout, the paper's joint MSE+BCE loss, and nothing else.
"""

from repro.nn.activations import Activation, Identity, ReLU, Sigmoid, Tanh, get_activation
from repro.nn.initializers import GlorotUniform, Orthogonal, Zeros
from repro.nn.layers.base import Layer
from repro.nn.layers.dense import Dense, Flatten
from repro.nn.layers.dropout import Dropout
from repro.nn.layers.lstm import LSTM
from repro.nn.layers.gru import GRU
from repro.nn.layers.bilstm import BiLSTM
from repro.nn.losses import (
    Loss,
    MeanSquaredError,
    BinaryCrossEntropy,
    JointPredictionQuantizationLoss,
)
from repro.nn.optimizers import SGD, Adam, Optimizer
from repro.nn.model import Model
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.serialization import save_weights, load_weights

__all__ = [
    "Activation",
    "Identity",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "get_activation",
    "GlorotUniform",
    "Orthogonal",
    "Zeros",
    "Layer",
    "Dense",
    "Flatten",
    "Dropout",
    "LSTM",
    "GRU",
    "BiLSTM",
    "Loss",
    "MeanSquaredError",
    "BinaryCrossEntropy",
    "JointPredictionQuantizationLoss",
    "SGD",
    "Adam",
    "Optimizer",
    "Model",
    "EarlyStopping",
    "History",
    "save_weights",
    "load_weights",
]
