"""Training callbacks: history recording and early stopping."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.utils.validation import require_positive


class History:
    """Records per-epoch metrics during :meth:`Model.fit`."""

    def __init__(self):
        self.epochs: List[int] = []
        self.metrics: Dict[str, List[float]] = {}

    def record(self, epoch: int, **values: float) -> None:
        """Append one epoch's metric values."""
        self.epochs.append(epoch)
        for key, value in values.items():
            self.metrics.setdefault(key, []).append(float(value))

    def last(self, key: str) -> float:
        """Most recent value of a metric."""
        return self.metrics[key][-1]

    def best(self, key: str) -> float:
        """Minimum value of a metric over training."""
        return float(np.min(self.metrics[key]))


class EarlyStopping:
    """Stop training when a monitored loss stops improving.

    Args:
        patience: Epochs without improvement tolerated before stopping.
        min_delta: Required improvement to reset the patience counter.
        restore_best: Whether :meth:`Model.fit` should restore the weights
            from the best epoch after stopping.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0, restore_best: bool = True):
        require_positive(patience, "patience")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best = bool(restore_best)
        self.best_value: Optional[float] = None
        self.best_epoch: int = -1
        self._stale_epochs = 0

    def update(self, epoch: int, value: float) -> bool:
        """Record an epoch's monitored value; return ``True`` to stop."""
        if self.best_value is None or value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self._stale_epochs = 0
            return False
        self._stale_epochs += 1
        return self._stale_epochs >= self.patience
