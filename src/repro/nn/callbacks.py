"""Training callbacks: history recording and early stopping."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.utils.validation import require_positive


class History:
    """Records per-epoch metrics during :meth:`Model.fit`."""

    def __init__(self):
        self.epochs: List[int] = []
        self.metrics: Dict[str, List[float]] = {}

    def record(self, epoch: int, **values: float) -> None:
        """Append one epoch's metric values."""
        self.epochs.append(epoch)
        for key, value in values.items():
            self.metrics.setdefault(key, []).append(float(value))

    def last(self, key: str) -> float:
        """Most recent value of a metric."""
        return self.metrics[key][-1]

    def best(self, key: str) -> float:
        """Minimum value of a metric over training."""
        return float(np.min(self.metrics[key]))

    def state_dict(self) -> Dict:
        """JSON-serializable snapshot (for training checkpoints)."""
        return {
            "epochs": list(self.epochs),
            "metrics": {key: list(values) for key, values in self.metrics.items()},
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict` in place."""
        self.epochs = [int(epoch) for epoch in state.get("epochs", [])]
        self.metrics = {
            key: [float(v) for v in values]
            for key, values in state.get("metrics", {}).items()
        }


class EarlyStopping:
    """Stop training when a monitored loss stops improving.

    Args:
        patience: Epochs without improvement tolerated before stopping.
        min_delta: Required improvement to reset the patience counter.
        restore_best: Whether :meth:`Model.fit` should restore the weights
            from the best epoch after stopping.
    """

    def __init__(self, patience: int = 10, min_delta: float = 0.0, restore_best: bool = True):
        require_positive(patience, "patience")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.restore_best = bool(restore_best)
        self.best_value: Optional[float] = None
        self.best_epoch: int = -1
        self._stale_epochs = 0

    def reset(self) -> None:
        """Forget all monitored history so the instance can drive a new run.

        ``fit()`` calls this at the start of every fresh (non-resumed)
        training run; without it a reused instance carries the previous
        run's ``best_value`` and patience counter and can stop the new run
        on its first epoch.
        """
        self.best_value = None
        self.best_epoch = -1
        self._stale_epochs = 0

    def state_dict(self) -> Dict:
        """JSON-serializable snapshot (for training checkpoints)."""
        return {
            "best_value": self.best_value,
            "best_epoch": self.best_epoch,
            "stale_epochs": self._stale_epochs,
        }

    def load_state_dict(self, state: Dict) -> None:
        """Restore a snapshot captured by :meth:`state_dict` in place."""
        value = state.get("best_value")
        self.best_value = None if value is None else float(value)
        self.best_epoch = int(state.get("best_epoch", -1))
        self._stale_epochs = int(state.get("stale_epochs", 0))

    def update(self, epoch: int, value: float) -> bool:
        """Record an epoch's monitored value; return ``True`` to stop."""
        if self.best_value is None or value < self.best_value - self.min_delta:
            self.best_value = value
            self.best_epoch = epoch
            self._stale_epochs = 0
            return False
        self._stale_epochs += 1
        return self._stale_epochs >= self.patience
