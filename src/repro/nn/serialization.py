"""Weight persistence for layer stacks.

Weights are stored in a checksummed :mod:`repro.utils.artifact` container
with keys ``<layer_index>:<layer_name>/<param_name>`` so load-time
mismatches are caught explicitly rather than silently reordered.  Loading
rejects stored keys that match no layer -- a checkpoint from a deeper or
renamed architecture fails loudly instead of half-applying.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer
from repro.utils.artifact import Artifact, load_artifact, save_artifact

#: Artifact kind written for a bare layer stack.
LAYER_STACK_KIND = "layer-stack"


def weight_arrays(layers: Sequence[Layer]) -> Dict[str, np.ndarray]:
    """All layers' parameters keyed ``<index>:<name>/<param>``."""
    arrays: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(layers):
        if not layer.built:
            raise ConfigurationError(
                f"layer {layer.name!r} is not built; run a forward pass first"
            )
        for key, value in layer.parameters.items():
            arrays[f"{index}:{layer.name}/{key}"] = value
    return arrays


def save_weights(
    layers: Sequence[Layer],
    path: Union[str, Path],
    kind: str = LAYER_STACK_KIND,
    metadata: Optional[Dict] = None,
) -> None:
    """Write all layers' parameters to ``path`` as a checksummed artifact.

    Args:
        layers: Built layers to persist.
        path: Destination ``.npz`` path (written atomically).
        kind: Artifact kind recorded in the header.
        metadata: Extra JSON metadata (architecture, training stats, ...).
    """
    meta = dict(metadata) if metadata is not None else {}
    meta.setdefault(
        "layer_stack",
        [
            {"name": layer.name, "parameters": sorted(layer.parameters)}
            for layer in layers
        ],
    )
    save_artifact(Path(path), weight_arrays(layers), kind=kind, metadata=meta)


def assign_weights(layers: Sequence[Layer], stored: Dict[str, np.ndarray]) -> None:
    """Distribute stored arrays onto ``layers``; reject orphans and gaps.

    Every stored key must land on exactly one layer: missing weights for a
    parameterized layer and stored keys that match no layer both raise
    :class:`~repro.exceptions.ConfigurationError` (a stale checkpoint from
    a deeper architecture previously loaded without error).
    """
    consumed = set()
    for index, layer in enumerate(layers):
        prefix = f"{index}:{layer.name}/"
        weights = {
            key[len(prefix):]: value
            for key, value in stored.items()
            if key.startswith(prefix)
        }
        consumed.update(prefix + key for key in weights)
        if not layer.parameters:
            if weights:
                raise ConfigurationError(
                    f"stored weights exist for parameterless layer {layer.name!r}"
                )
            continue
        if not weights:
            raise ConfigurationError(
                f"no stored weights found for layer {index}:{layer.name!r}"
            )
        layer.set_weights(weights)
    orphans = sorted(set(stored) - consumed)
    if orphans:
        raise ConfigurationError(
            f"stored weights match no layer (stale or deeper-architecture "
            f"checkpoint): {orphans}"
        )


def load_weights(
    layers: Sequence[Layer],
    path: Union[str, Path],
    kind: str = LAYER_STACK_KIND,
) -> Artifact:
    """Load parameters written by :func:`save_weights` into ``layers``.

    Layers must already be built with matching shapes (run one forward
    pass on dummy data first, or build explicitly).  Returns the verified
    :class:`~repro.utils.artifact.Artifact` so callers can inspect its
    metadata (architecture, training statistics).  Legacy plain ``.npz``
    files still load, with a :class:`UserWarning`.
    """
    artifact = load_artifact(Path(path), kind=kind)
    assign_weights(layers, artifact.arrays)
    return artifact
