"""Weight persistence for layer stacks.

Weights are stored in a single ``.npz`` with keys
``<layer_index>:<layer_name>/<param_name>`` so load-time mismatches are
caught explicitly rather than silently reordered.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.layers.base import Layer


def save_weights(layers: Sequence[Layer], path: Union[str, Path]) -> None:
    """Write all layers' parameters to ``path`` (``.npz``)."""
    arrays = {}
    for index, layer in enumerate(layers):
        if not layer.built:
            raise ConfigurationError(
                f"layer {layer.name!r} is not built; run a forward pass first"
            )
        for key, value in layer.parameters.items():
            arrays[f"{index}:{layer.name}/{key}"] = value
    np.savez_compressed(Path(path), **arrays)


def load_weights(layers: Sequence[Layer], path: Union[str, Path]) -> None:
    """Load parameters written by :func:`save_weights` into ``layers``.

    Layers must already be built with matching shapes (run one forward
    pass on dummy data first, or build explicitly).
    """
    with np.load(Path(path)) as data:
        stored = dict(data)
    for index, layer in enumerate(layers):
        prefix = f"{index}:{layer.name}/"
        weights = {
            key[len(prefix):]: value
            for key, value in stored.items()
            if key.startswith(prefix)
        }
        if not layer.parameters:
            if weights:
                raise ConfigurationError(
                    f"stored weights exist for parameterless layer {layer.name!r}"
                )
            continue
        if not weights:
            raise ConfigurationError(
                f"no stored weights found for layer {index}:{layer.name!r}"
            )
        layer.set_weights(weights)
