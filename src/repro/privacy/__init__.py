"""Privacy amplification (paper Sec. IV-C, last paragraph)."""

from repro.privacy.amplification import amplify, amplify_to_bytes

__all__ = ["amplify", "amplify_to_bytes"]
