"""Hash-based privacy amplification.

Reconciliation leaks syndrome/parity information over the public channel;
privacy amplification compresses the reconciled bits through a hash so
the leaked bits carry no information about the final key.  The paper
applies "SHA-128"; we use SHA-256 truncated to the requested output width
(128 bits for the AES-128 use case), in counter mode for longer outputs.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.bits import bits_to_bytes, bytes_to_bits
from repro.utils.validation import require, require_positive


def amplify_to_bytes(
    reconciled_bits: np.ndarray,
    output_bits: int = 128,
    salt: bytes = b"vehicle-key-pa",
) -> bytes:
    """Derive ``output_bits`` of final key material from reconciled bits.

    Args:
        reconciled_bits: The agreed bit string after reconciliation.
        output_bits: Final key length; must be a multiple of 8 and not
            exceed the input length (hashing cannot create entropy).
        salt: Public domain-separation salt.
    """
    bits = np.asarray(reconciled_bits, dtype=np.uint8)
    require(bits.ndim == 1, "reconciled_bits must be 1-D")
    require_positive(output_bits, "output_bits")
    require(output_bits % 8 == 0, "output_bits must be a multiple of 8")
    require(
        output_bits <= bits.size,
        f"cannot amplify {bits.size} bits up to {output_bits} bits",
    )
    padded = bits
    if bits.size % 8:
        padded = np.concatenate([bits, np.zeros(8 - bits.size % 8, dtype=np.uint8)])
    material = bits_to_bytes(padded)

    output = b""
    counter = 0
    while len(output) < output_bits // 8:
        block = hashlib.sha256(salt + counter.to_bytes(4, "big") + material).digest()
        output += block
        counter += 1
    return output[: output_bits // 8]


def amplify(
    reconciled_bits: np.ndarray,
    output_bits: int = 128,
    salt: bytes = b"vehicle-key-pa",
) -> np.ndarray:
    """:func:`amplify_to_bytes` returning a 0/1 bit array."""
    return bytes_to_bits(amplify_to_bytes(reconciled_bits, output_bits, salt))
