"""Single-threshold quantizer: one bit per sample against the window mean."""

from __future__ import annotations

import numpy as np

from repro.quantization.base import QuantizationResult, Quantizer
from repro.utils.validation import require


class MeanThresholdQuantizer(Quantizer):
    """``bit = value > mean(window)``.

    Keeps every sample; the crudest scheme, used as a reference point and
    in ablations.
    """

    def quantize(self, values: np.ndarray) -> QuantizationResult:
        window = np.asarray(values, dtype=float)
        require(window.ndim == 1, "values must be 1-D")
        require(window.size > 0, "cannot quantize an empty window")
        bits = (window > window.mean()).astype(np.uint8)
        return QuantizationResult(
            bits=bits, kept=np.ones(window.size, dtype=bool), bits_per_sample=1
        )
