"""Quantizer interface and the two-party keep-mask consensus."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require


@dataclass(frozen=True)
class QuantizationResult:
    """Output of quantizing one measurement window.

    Attributes:
        bits: 0/1 ``uint8`` array of extracted key bits, in sample order
            (``bits_per_sample`` bits per kept sample).
        kept: Boolean mask over the *input samples*; ``False`` where the
            sample fell in a guard band and produced no bits.
        bits_per_sample: Bits contributed by each kept sample.
    """

    bits: np.ndarray
    kept: np.ndarray
    bits_per_sample: int

    def __post_init__(self) -> None:
        require(self.bits.ndim == 1, "bits must be 1-D")
        require(self.kept.ndim == 1, "kept must be 1-D")
        require(
            self.bits.size == self.bits_per_sample * int(np.count_nonzero(self.kept)),
            "bits length must equal bits_per_sample * kept count",
        )

    @property
    def n_kept(self) -> int:
        """Number of samples that produced bits."""
        return int(np.count_nonzero(self.kept))

    @property
    def efficiency(self) -> float:
        """Fraction of input samples that survived guard-banding."""
        return self.n_kept / self.kept.size if self.kept.size else 0.0


class Quantizer(abc.ABC):
    """Maps a window of real-valued measurements to key bits."""

    @abc.abstractmethod
    def quantize(self, values: np.ndarray) -> QuantizationResult:
        """Quantize a 1-D measurement window."""

    def quantize_with_mask(self, values: np.ndarray, keep: np.ndarray) -> np.ndarray:
        """Bits for an externally agreed keep-mask (consensus round).

        After the two parties intersect their masks, each re-extracts bits
        for exactly the agreed samples.  The default implementation re-runs
        :meth:`quantize` and filters its per-sample bit groups down to the
        agreed mask.
        """
        result = self.quantize(values)
        keep = np.asarray(keep, dtype=bool)
        require(keep.shape == result.kept.shape, "mask must cover all samples")
        require(
            bool(np.all(result.kept[keep])),
            "agreed mask keeps a sample this side dropped; intersect masks first",
        )
        groups = result.bits.reshape(result.n_kept, result.bits_per_sample)
        kept_indices = np.flatnonzero(result.kept)
        selected = np.isin(kept_indices, np.flatnonzero(keep))
        return groups[selected].reshape(-1)


def consensus_mask(mask_a: np.ndarray, mask_b: np.ndarray) -> np.ndarray:
    """Samples kept by *both* parties (the public index-exchange step)."""
    a = np.asarray(mask_a, dtype=bool)
    b = np.asarray(mask_b, dtype=bool)
    require(a.shape == b.shape, "masks must have identical shapes")
    return a & b
