"""RSSI quantizers: measurement values to key bits.

Three classic schemes, each used somewhere in the evaluation:

- :class:`MeanThresholdQuantizer` -- one bit per sample against the window
  mean; the simplest baseline.
- :class:`MultiBitQuantizer` -- the Jana et al. multi-bit quantizer the
  paper assigns to Bob's side of the prediction/quantization model
  (equal-probability bins, Gray coding, optional guard bands).
- :class:`GuardBandQuantizer` -- the two-threshold single-bit quantizer
  with guard-band ratio alpha used by the LoRa-Key baseline.

Quantizers that drop samples return a keep-mask; both parties publicly
intersect their masks (:func:`consensus_mask`) before concatenating bits,
exactly as the original protocols do.
"""

from repro.quantization.base import QuantizationResult, Quantizer, consensus_mask
from repro.quantization.mean_threshold import MeanThresholdQuantizer
from repro.quantization.multibit import MultiBitQuantizer
from repro.quantization.guard_band import GuardBandQuantizer

__all__ = [
    "QuantizationResult",
    "Quantizer",
    "consensus_mask",
    "MeanThresholdQuantizer",
    "MultiBitQuantizer",
    "GuardBandQuantizer",
]
