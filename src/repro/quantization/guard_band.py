"""Two-threshold guard-band quantizer (LoRa-Key's scheme).

Samples above ``mean + delta`` become 1, below ``mean - delta`` become 0,
and the band in between is discarded.  The band half-width ``delta`` is
``alpha / 2`` standard deviations; the paper tunes the LoRa-Key baseline
with ``alpha = 0.8`` (Sec. V-F).
"""

from __future__ import annotations

import numpy as np

from repro.quantization.base import QuantizationResult, Quantizer
from repro.utils.validation import require, require_in_range


class GuardBandQuantizer(Quantizer):
    """Single-bit quantization with a +/- ``alpha/2`` sigma guard band.

    Args:
        alpha: Guard-band-to-data ratio; the discard band spans
            ``mean +/- (alpha / 2) * std``.
    """

    def __init__(self, alpha: float = 0.8):
        require_in_range(alpha, 0.0, 4.0, "alpha")
        self.alpha = float(alpha)

    def quantize(self, values: np.ndarray) -> QuantizationResult:
        window = np.asarray(values, dtype=float)
        require(window.ndim == 1, "values must be 1-D")
        require(window.size > 0, "cannot quantize an empty window")
        mean = window.mean()
        half_band = (self.alpha / 2.0) * window.std()
        upper = window > mean + half_band
        lower = window < mean - half_band
        kept = upper | lower
        bits = upper[kept].astype(np.uint8)
        return QuantizationResult(bits=bits, kept=kept, bits_per_sample=1)
