"""Multi-bit quantizer (Jana et al., MobiCom 2009).

Divides the window's value range into ``2**bits_per_sample``
equal-probability bins (empirical quantiles), Gray-codes the bin index of
each sample, and optionally drops samples falling within a guard fraction
of a bin boundary, where small measurement asymmetries flip bins.  The
paper uses this quantizer on Bob's side of the prediction/quantization
model (Sec. IV-B).
"""

from __future__ import annotations

import numpy as np

from repro.quantization.base import QuantizationResult, Quantizer
from repro.utils.bits import gray_code_table
from repro.utils.validation import require, require_in_range


class MultiBitQuantizer(Quantizer):
    """Equal-probability multi-bit quantization with Gray coding.

    Args:
        bits_per_sample: Bits extracted per kept sample (M); the window is
            split into ``2**M`` quantile bins.
        guard_band_fraction: Fraction of each bin's probability mass,
            adjacent to every internal boundary, whose samples are dropped.
            0 keeps everything.
        fixed_thresholds: If ``True``, bin boundaries are the *standard
            normal* quantiles applied to the z-scored window instead of
            the window's empirical quantiles.  Empirical quantiles from a
            short window are themselves noisy and estimated independently
            by the two parties; fixed boundaries remove that asymmetry
            (and make the bin function learnable by the quantization
            head, which is why the Vehicle-Key pipeline uses this mode).
    """

    def __init__(
        self,
        bits_per_sample: int = 2,
        guard_band_fraction: float = 0.0,
        fixed_thresholds: bool = False,
    ):
        require(1 <= bits_per_sample <= 8, "bits_per_sample must be in [1, 8]")
        require_in_range(guard_band_fraction, 0.0, 0.49, "guard_band_fraction")
        self.bits_per_sample = int(bits_per_sample)
        self.guard_band_fraction = float(guard_band_fraction)
        self.fixed_thresholds = bool(fixed_thresholds)
        self._codebook = gray_code_table(self.bits_per_sample)

    @property
    def n_levels(self) -> int:
        """Number of quantization bins."""
        return 1 << self.bits_per_sample

    def quantize(self, values: np.ndarray) -> QuantizationResult:
        window = np.asarray(values, dtype=float)
        require(window.ndim == 1, "values must be 1-D")
        require(
            window.size >= self.n_levels,
            f"window of {window.size} samples is too small for "
            f"{self.n_levels} quantile bins",
        )
        probabilities = np.arange(1, self.n_levels) / self.n_levels
        if self.fixed_thresholds:
            from scipy.stats import norm

            std = window.std()
            normalized = (window - window.mean()) / (std if std > 0 else 1.0)
            boundaries = norm.ppf(probabilities)
            levels = np.searchsorted(boundaries, normalized, side="right")
        else:
            # Empirical quantile boundaries (internal only).
            boundaries = np.quantile(window, probabilities)
            levels = np.searchsorted(boundaries, window, side="right")

        kept = np.ones(window.size, dtype=bool)
        if self.guard_band_fraction > 0:
            # Drop samples whose empirical CDF position is within
            # guard_band_fraction of a boundary's CDF position.
            order = np.argsort(window, kind="stable")
            cdf = np.empty(window.size)
            cdf[order] = (np.arange(window.size) + 0.5) / window.size
            guard = self.guard_band_fraction / self.n_levels
            for boundary_cdf in (np.arange(1, self.n_levels) / self.n_levels):
                kept &= np.abs(cdf - boundary_cdf) > guard
        bits = self._codebook[levels[kept]].reshape(-1)
        return QuantizationResult(
            bits=bits.astype(np.uint8), kept=kept, bits_per_sample=self.bits_per_sample
        )
