"""Shared utilities: seeded randomness, bit manipulation, validation."""

from repro.utils.rng import SeedSequenceFactory, as_generator
from repro.utils.bits import (
    bits_to_bytes,
    bytes_to_bits,
    bits_to_int,
    int_to_bits,
    hamming_distance,
    bit_agreement,
    gray_encode,
    gray_decode,
    gray_code_table,
    random_bits,
    flip_bits,
    parity,
)
from repro.utils.validation import (
    require,
    require_positive,
    require_in_range,
    require_probability,
    require_one_of,
)

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "bits_to_bytes",
    "bytes_to_bits",
    "bits_to_int",
    "int_to_bits",
    "hamming_distance",
    "bit_agreement",
    "gray_encode",
    "gray_decode",
    "gray_code_table",
    "random_bits",
    "flip_bits",
    "parity",
    "require",
    "require_positive",
    "require_in_range",
    "require_probability",
    "require_one_of",
]
