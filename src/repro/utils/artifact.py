"""Crash-safe, checksummed artifact persistence.

Every learned or measured object this library persists (model weights,
reconciler weights, probe traces, datasets, training checkpoints) goes
through this module.  The on-disk container is still a NumPy ``.npz``,
with one reserved member:

- ``__artifact__`` -- a JSON header (stored as ``uint8`` bytes) carrying
  the format version, an artifact *kind* string, free-form metadata
  (architecture hyperparameters, training statistics, RNG state, ...),
  and a SHA-256 checksum over every payload array's name, dtype, shape
  and raw bytes.

Writes are atomic: the file is serialized to a temporary sibling, fsynced,
and then ``os.replace``d over the destination, so a crash mid-write never
leaves a truncated artifact under the real name.  Reads verify the
checksum and the expected kind, raising the typed
:class:`~repro.exceptions.CorruptArtifactError` /
:class:`~repro.exceptions.ArtifactMismatchError` instead of leaking raw
``zipfile``/``KeyError`` internals.  Plain ``.npz`` files written before
this format existed still load (with a :class:`UserWarning`), so old
deployments keep working.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.exceptions import ArtifactMismatchError, CorruptArtifactError

#: Reserved ``.npz`` member holding the JSON header.
HEADER_KEY = "__artifact__"

#: Current container format version.
FORMAT_VERSION = 1


def _checksum(arrays: Dict[str, np.ndarray]) -> str:
    """SHA-256 digest over the payload arrays, order-independent."""
    digest = hashlib.sha256()
    for key in sorted(arrays):
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(value.dtype).encode("utf-8"))
        digest.update(repr(value.shape).encode("utf-8"))
        digest.update(value.tobytes())
    return digest.hexdigest()


@dataclass(frozen=True)
class Artifact:
    """A loaded artifact: payload arrays plus its verified header.

    Attributes:
        arrays: The payload arrays, keyed as written.
        kind: The artifact kind recorded at save time (``None`` for
            legacy files that predate the header).
        metadata: Free-form JSON metadata recorded at save time.
        format_version: Container version (0 for legacy plain ``.npz``).
        legacy: ``True`` when the file had no header (pre-format file);
            such files were loaded without checksum verification.
    """

    arrays: Dict[str, np.ndarray]
    kind: Optional[str] = None
    metadata: Dict = field(default_factory=dict)
    format_version: int = FORMAT_VERSION
    legacy: bool = False


def save_artifact(
    path: Union[str, Path],
    arrays: Dict[str, np.ndarray],
    kind: str,
    metadata: Optional[Dict] = None,
) -> None:
    """Atomically write ``arrays`` as a checksummed artifact of ``kind``.

    The payload is serialized to a temporary file in the destination
    directory, flushed and fsynced, then renamed over ``path`` -- an
    interrupted save never corrupts an existing artifact and never leaves
    a half-written file under the final name.

    Args:
        path: Destination ``.npz`` path.
        arrays: Payload arrays; the key ``__artifact__`` is reserved.
        kind: Artifact kind slug checked again at load time.
        metadata: JSON-serializable metadata embedded in the header.
    """
    target = Path(path)
    payload = {key: np.asarray(value) for key, value in arrays.items()}
    if HEADER_KEY in payload:
        raise ValueError(f"array key {HEADER_KEY!r} is reserved for the header")
    header = {
        "format_version": FORMAT_VERSION,
        "kind": str(kind),
        "checksum": _checksum(payload),
        "metadata": metadata if metadata is not None else {},
    }
    payload[HEADER_KEY] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f".{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_artifact(
    path: Union[str, Path],
    kind: Optional[str] = None,
    allow_legacy: bool = True,
) -> Artifact:
    """Load and verify an artifact written by :func:`save_artifact`.

    Args:
        path: Artifact path.
        kind: Expected kind; a stored kind that differs raises
            :class:`~repro.exceptions.ArtifactMismatchError`.
        allow_legacy: Accept plain ``.npz`` files without a header (they
            load with a :class:`UserWarning` and no checksum check).

    Raises:
        CorruptArtifactError: The file is unreadable, truncated, carries
            a malformed header, or fails its checksum.
        ArtifactMismatchError: The stored kind differs from ``kind``, or
            the file is legacy and ``allow_legacy`` is ``False``.
        FileNotFoundError: ``path`` does not exist.
    """
    source = Path(path)
    if not source.exists():
        raise FileNotFoundError(f"no artifact at {source}")
    try:
        with np.load(source, allow_pickle=False) as data:
            arrays = {key: data[key] for key in data.files}
    except Exception as exc:
        raise CorruptArtifactError(
            f"artifact {source} is unreadable (truncated or not an .npz): {exc}"
        ) from exc

    header_bytes = arrays.pop(HEADER_KEY, None)
    if header_bytes is None:
        if not allow_legacy:
            raise ArtifactMismatchError(
                f"artifact {source} has no integrity header and legacy "
                "files are not accepted here"
            )
        warnings.warn(
            f"{source} is a legacy artifact without checksum/metadata; "
            "loading without integrity verification -- re-save it to upgrade",
            UserWarning,
            stacklevel=2,
        )
        return Artifact(arrays=arrays, kind=None, metadata={}, format_version=0, legacy=True)

    try:
        header = json.loads(bytes(bytearray(header_bytes)).decode("utf-8"))
        stored_checksum = header["checksum"]
        stored_kind = header["kind"]
        version = int(header["format_version"])
        metadata = header.get("metadata", {})
    except Exception as exc:
        raise CorruptArtifactError(
            f"artifact {source} carries a malformed header: {exc}"
        ) from exc
    if version > FORMAT_VERSION:
        raise ArtifactMismatchError(
            f"artifact {source} uses format version {version}; this library "
            f"reads up to version {FORMAT_VERSION}"
        )
    if stored_checksum != _checksum(arrays):
        raise CorruptArtifactError(
            f"artifact {source} failed its SHA-256 payload check; the file "
            "was tampered with or corrupted after writing"
        )
    if kind is not None and stored_kind != kind:
        raise ArtifactMismatchError(
            f"artifact {source} holds a {stored_kind!r}, expected {kind!r}"
        )
    return Artifact(
        arrays=arrays,
        kind=stored_kind,
        metadata=metadata,
        format_version=version,
        legacy=False,
    )


def require_matching_architecture(
    artifact: Artifact, expected: Dict, path: Union[str, Path] = ""
) -> None:
    """Reject an artifact whose recorded architecture differs from ``expected``.

    Legacy artifacts (no header) and artifacts without an ``architecture``
    metadata entry pass silently -- there is nothing recorded to compare.

    Raises:
        ArtifactMismatchError: Listing every differing hyperparameter.
    """
    if artifact.legacy:
        return
    stored = artifact.metadata.get("architecture")
    if stored is None:
        return
    differences = []
    for key, want in expected.items():
        have = stored.get(key, "<absent>")
        if have != want:
            differences.append(f"{key}: stored {have!r} != expected {want!r}")
    if differences:
        raise ArtifactMismatchError(
            f"artifact {path} was written by a different architecture: "
            + "; ".join(differences)
        )
