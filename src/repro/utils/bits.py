"""Bit-array helpers.

Keys flow through the library as numpy ``uint8`` arrays of 0/1 values (one
bit per element).  This module centralises conversions between that
representation and bytes/integers, plus the small amount of coding theory
(Gray codes, parity, Hamming distance) the quantizers and reconciliation
methods need.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, as_generator


def _as_bit_array(bits: Sequence[int]) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.ndim != 1:
        raise ConfigurationError(f"expected a 1-D bit array, got shape {arr.shape}")
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ConfigurationError("bit arrays may only contain 0 and 1")
    return arr


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack a 0/1 array into bytes (big-endian within each byte).

    The bit length must be a multiple of 8.
    """
    arr = _as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ConfigurationError(
            f"bit length {arr.size} is not a multiple of 8; pad before packing"
        )
    return np.packbits(arr).tobytes()


def bytes_to_bits(data: bytes) -> np.ndarray:
    """Unpack bytes into a 0/1 ``uint8`` array (big-endian within bytes)."""
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bits_to_int(bits: Sequence[int]) -> int:
    """Interpret a 0/1 array as a big-endian unsigned integer."""
    arr = _as_bit_array(bits)
    value = 0
    for bit in arr:
        value = (value << 1) | int(bit)
    return value


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Big-endian binary expansion of ``value`` into ``width`` bits."""
    if value < 0:
        raise ConfigurationError("only non-negative integers can be bit-expanded")
    if width <= 0:
        raise ConfigurationError("width must be positive")
    if value >= (1 << width):
        raise ConfigurationError(f"{value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of positions where the two equal-length bit arrays differ."""
    arr_a = _as_bit_array(a)
    arr_b = _as_bit_array(b)
    if arr_a.size != arr_b.size:
        raise ConfigurationError(
            f"bit arrays differ in length: {arr_a.size} vs {arr_b.size}"
        )
    return int(np.count_nonzero(arr_a != arr_b))


def bit_agreement(a: Sequence[int], b: Sequence[int]) -> float:
    """Fraction of positions where the two equal-length bit arrays agree.

    An empty pair of arrays agrees perfectly by convention.
    """
    arr_a = _as_bit_array(a)
    if arr_a.size == 0:
        _as_bit_array(b)
        return 1.0
    return 1.0 - hamming_distance(a, b) / arr_a.size


def parity(bits: Sequence[int]) -> int:
    """Even parity (XOR) of the bit array."""
    return int(np.bitwise_xor.reduce(_as_bit_array(bits))) if len(bits) else 0


def gray_encode(value: int) -> int:
    """Binary-reflected Gray code of a non-negative integer."""
    if value < 0:
        raise ConfigurationError("Gray coding is defined for non-negative integers")
    return value ^ (value >> 1)


def gray_decode(code: int) -> int:
    """Inverse of :func:`gray_encode`."""
    if code < 0:
        raise ConfigurationError("Gray coding is defined for non-negative integers")
    value = code
    shift = 1
    while (code >> shift) > 0:
        value ^= code >> shift
        shift += 1
    return value


def gray_code_table(bits_per_symbol: int) -> np.ndarray:
    """All ``2**bits_per_symbol`` Gray codewords as a bit matrix.

    Row ``i`` is the Gray codeword for level ``i``, so adjacent quantization
    levels differ in exactly one bit -- the property multi-bit quantizers
    rely on to keep small RSSI disagreements to single-bit errors.
    """
    if bits_per_symbol <= 0:
        raise ConfigurationError("bits_per_symbol must be positive")
    levels = 1 << bits_per_symbol
    return np.stack(
        [int_to_bits(gray_encode(level), bits_per_symbol) for level in range(levels)]
    )


def random_bits(n: int, seed: SeedLike = None) -> np.ndarray:
    """Uniform random 0/1 array of length ``n``."""
    if n < 0:
        raise ConfigurationError("cannot generate a negative number of bits")
    rng = as_generator(seed)
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def flip_bits(bits: Sequence[int], positions: Iterable[int]) -> np.ndarray:
    """Return a copy of ``bits`` with the given positions flipped."""
    arr = _as_bit_array(bits).copy()
    for pos in positions:
        if not 0 <= pos < arr.size:
            raise ConfigurationError(f"flip position {pos} out of range for {arr.size} bits")
        arr[pos] ^= 1
    return arr
