"""Small argument-validation helpers.

Validation failures raise :class:`repro.exceptions.ConfigurationError` so
user mistakes are distinguishable from library bugs.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.exceptions import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def require_positive(value: float, name: str) -> None:
    """Require ``value`` to be strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Require ``value`` to be a probability in [0, 1]."""
    require_in_range(value, 0.0, 1.0, name)


def require_one_of(value: Any, options: Iterable[Any], name: str) -> None:
    """Require ``value`` to be one of ``options``."""
    options = tuple(options)
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {options}, got {value!r}")
