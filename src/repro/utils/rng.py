"""Deterministic random-number management.

Every stochastic component in the library takes either an integer seed or a
:class:`numpy.random.Generator`.  Experiments that need many independent
streams (Alice's hardware noise, Bob's hardware noise, the fading process,
the training shuffle, ...) derive them from a single root seed through
:class:`SeedSequenceFactory`, so a whole experiment is reproducible from one
integer while its sub-streams stay statistically independent.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a non-deterministic generator; an ``int`` seeds a fresh
    PCG64 generator; an existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Derives named, independent random streams from a single root seed.

    Streams are keyed by string so that adding a new consumer does not
    perturb the streams handed to existing consumers (unlike positional
    ``spawn`` chains).  The same ``(root_seed, name)`` pair always produces
    the same stream.

    Example::

        factory = SeedSequenceFactory(42)
        fading_rng = factory.generator("fading")
        noise_rng = factory.generator("alice-noise")
    """

    def __init__(self, root_seed: Optional[int] = None):
        self._root_seed = root_seed
        self._root = np.random.SeedSequence(root_seed)

    @property
    def root_seed(self) -> Optional[int]:
        """The root integer seed this factory was built from."""
        return self._root_seed

    def seed_for(self, name: str) -> np.random.SeedSequence:
        """Return a :class:`numpy.random.SeedSequence` for stream ``name``."""
        key = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
        return np.random.SeedSequence(
            entropy=self._root.entropy, spawn_key=tuple(int(b) for b in key)
        )

    def generator(self, name: str) -> np.random.Generator:
        """Return an independent generator for stream ``name``."""
        return np.random.default_rng(self.seed_for(name))

    def child(self, name: str) -> "SeedSequenceFactory":
        """Return a factory whose streams are independent of this factory's.

        The child is deterministic in ``(root_seed, name)``.
        """
        child_seed = int(self.generator(name).integers(0, 2**63 - 1))
        return SeedSequenceFactory(child_seed)
