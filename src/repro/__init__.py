"""Vehicle-Key: secret key establishment for LoRa-enabled IoV communications.

This package is a full reproduction of the system described in

    Yang et al., "Vehicle-Key: A Secret Key Establishment Scheme for
    LoRa-enabled IoV Communications", ICDCS 2022.

It contains the paper's primary contribution (a BiLSTM-based channel
prediction + quantization model and an autoencoder-based reconciliation
method, :mod:`repro.core`) together with every substrate the paper depends
on, implemented from scratch:

- :mod:`repro.lora` -- LoRa PHY model (airtime, bit rate, SX127x RSSI).
- :mod:`repro.channel` -- vehicular radio channel simulator (path loss,
  shadowing, Jakes-spectrum Rayleigh fading, mobility, reciprocity).
- :mod:`repro.probing` -- probe/response protocol and arRSSI features.
- :mod:`repro.nn` -- a from-scratch numpy deep-learning framework.
- :mod:`repro.quantization` -- classic RSSI quantizers.
- :mod:`repro.reconciliation` -- Cascade, compressed sensing and the
  paper's autoencoder reconciliation.
- :mod:`repro.privacy` -- hash-based privacy amplification.
- :mod:`repro.security` -- NIST SP 800-22 tests and attack harnesses.
- :mod:`repro.experiments` -- one module per table/figure in the paper.

Quickstart::

    from repro import VehicleKeyPipeline, ScenarioName
    pipeline = VehicleKeyPipeline.for_scenario(ScenarioName.V2V_URBAN, seed=7)
    pipeline.train()
    outcome = pipeline.establish_key()
    print(outcome.agreement_rate, outcome.final_key.hex())
"""

from repro.version import __version__
from repro.exceptions import (
    ReproError,
    ConfigurationError,
    ProtocolError,
    AuthenticationError,
    ReconciliationFailure,
    NotTrainedError,
    KeyEstablishmentError,
    InsufficientEntropyError,
    RetryBudgetExhausted,
    SessionAborted,
)

__all__ = [
    "__version__",
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "AuthenticationError",
    "ReconciliationFailure",
    "NotTrainedError",
    "KeyEstablishmentError",
    "InsufficientEntropyError",
    "RetryBudgetExhausted",
    "SessionAborted",
    "ScenarioName",
    "ScenarioConfig",
    "VehicleKeyPipeline",
    "KeyEstablishmentOutcome",
    "FaultPlan",
    "RetryPolicy",
    "AdversaryPlan",
]

# Re-exports of the main user-facing classes are resolved lazily (PEP 562)
# so that `import repro` stays cheap and the subpackages remain free of
# import cycles.
_LAZY_EXPORTS = {
    "ScenarioName": ("repro.channel.scenario", "ScenarioName"),
    "ScenarioConfig": ("repro.channel.scenario", "ScenarioConfig"),
    "VehicleKeyPipeline": ("repro.core.pipeline", "VehicleKeyPipeline"),
    "KeyEstablishmentOutcome": ("repro.core.pipeline", "KeyEstablishmentOutcome"),
    "FaultPlan": ("repro.faults.plan", "FaultPlan"),
    "RetryPolicy": ("repro.faults.retry", "RetryPolicy"),
    "AdversaryPlan": ("repro.faults.adversary", "AdversaryPlan"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
