"""Domain-separated key derivation for the secure channel.

The probing/reconciliation pipeline hands both parties the same final key
bytes (:attr:`~repro.core.session.SessionResult.final_key_alice`); using
those bytes directly as a traffic key would be the classic mistake the
``RSSI-KDFv1`` label in the LoRa exemplar code guards against -- any two
uses of the same secret must be separated by *context*, or a record MAC
forged in one context verifies in another.  This module derives traffic
keys HKDF-style (extract-then-expand over HMAC-SHA256, stdlib only) with
full context binding:

- the **session nonce** (fresh per establishment, so two sessions that
  somehow produced the same bits still get distinct traffic keys);
- the **device ids** of initiator and responder (keys are bound to the
  pair, in order -- a reflected record cannot cross identities);
- the **pipeline fingerprint** (keys derived under one model/config
  generation never verify under another);
- the **epoch counter** (each rekey bumps it, so post-rollover keys share
  nothing exploitable with the old epoch's).

Each epoch yields *four* independent keys: encryption and MAC keys for
each direction (initiator-to-responder and responder-to-initiator).  No
key is ever used for two purposes or two directions, which is what makes
the deterministic ``(epoch, direction, sequence)`` nonce of
:mod:`repro.secure.records` safe: a counter can only collide with itself.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, replace

from repro.reconciliation.mac import PrecomputedMacKey, fast_sha256, hmac_midstates
from repro.utils.validation import require

#: Versioned extract-stage label; bump on any change to the derivation.
KDF_LABEL = b"vehicle-key-kdf-v1"

#: Versioned context-encoding label bound into every derived key.
CONTEXT_LABEL = b"vehicle-key-context-v1"

#: Bytes per derived traffic key (HMAC-SHA256 native width).
KEY_BYTES = 32

#: Bytes of the public per-key identifier used by the nonce ledger.
KEY_ID_BYTES = 8

#: Direction labels, in (initiator-send, responder-send) order.
DIRECTION_LABELS = (b"i2r", b"r2i")


def _encode_field(data: bytes) -> bytes:
    """Length-prefix one context field (unambiguous concatenation)."""
    return len(data).to_bytes(4, "big") + data


@dataclass(frozen=True)
class ChannelContext:
    """Everything a traffic key is bound to, besides the secret itself.

    Attributes:
        session_nonce: The establishment session's fresh public nonce
            (:attr:`~repro.core.session.SessionResult.session_nonce`).
        initiator_id: Identity of the party that opened the channel (the
            device, in the served topology).
        responder_id: Identity of the answering party (the server).
        pipeline_fingerprint: The pipeline configuration fingerprint
            (:meth:`~repro.core.pipeline.VehicleKeyPipeline.fingerprint`),
            binding keys to the model/config generation that made them.
        epoch: Rekey epoch counter, starting at 0 and bumped by every
            completed rekey.
    """

    session_nonce: bytes
    initiator_id: str = "alice"
    responder_id: str = "bob"
    pipeline_fingerprint: str = ""
    epoch: int = 0

    def __post_init__(self) -> None:
        require(len(self.session_nonce) > 0, "session_nonce must be non-empty")
        require(self.epoch >= 0, "epoch must be >= 0")
        require(bool(self.initiator_id), "initiator_id must be non-empty")
        require(bool(self.responder_id), "responder_id must be non-empty")

    def encode(self) -> bytes:
        """The canonical byte encoding fed into every key derivation.

        Every field is length-prefixed, so no two distinct contexts share
        an encoding (``("ab","c")`` and ``("a","bc")`` cannot collide).
        """
        return b"".join(
            _encode_field(part)
            for part in (
                CONTEXT_LABEL,
                self.session_nonce,
                self.initiator_id.encode("utf-8"),
                self.responder_id.encode("utf-8"),
                self.pipeline_fingerprint.encode("utf-8"),
                self.epoch.to_bytes(8, "big"),
            )
        )

    def next_epoch(self) -> "ChannelContext":
        """The same context one rekey later (epoch bumped by one)."""
        return replace(self, epoch=self.epoch + 1)


@dataclass(frozen=True)
class DirectionKeys:
    """The independent key pair protecting one direction of one epoch.

    Attributes:
        enc_key: Keystream key (never used for authentication).
        mac_key: Record-MAC key (never used for encryption).
        key_id: Short public identifier of this key pair, used by the
            nonce ledger to attribute sealed/accepted nonces; derived
            through its own expansion label, so publishing it reveals
            nothing about the traffic keys.

    The record layer calls :meth:`mac` and :meth:`keystream_states` on
    every seal/open, so both cache their derived state on first use (the
    old path re-derived the MAC key via a bytes->bits->bytes round trip
    and re-hashed both HMAC key blocks per record).  The caches hold
    live hash objects, which do not pickle; ``__getstate__`` drops them
    so a :class:`DirectionKeys` crossing a fork/pickle boundary (the
    sharded batch runner) travels as its three key fields and re-primes
    lazily on the other side.
    """

    enc_key: bytes
    mac_key: bytes
    key_id: str

    def mac(self) -> PrecomputedMacKey:
        """This key pair's MAC side with midstates primed once."""
        cached = self.__dict__.get("_mac")
        if cached is None:
            cached = PrecomputedMacKey(self.mac_key)
            object.__setattr__(self, "_mac", cached)
        return cached

    def keystream_states(self):
        """Primed ``(inner, outer)`` HMAC states of the keystream PRF."""
        cached = self.__dict__.get("_keystream_states")
        if cached is None:
            cached = hmac_midstates(self.enc_key, fast_sha256)
            object.__setattr__(self, "_keystream_states", cached)
        return cached

    def __getstate__(self):
        return (self.enc_key, self.mac_key, self.key_id)

    def __setstate__(self, state) -> None:
        for name, value in zip(("enc_key", "mac_key", "key_id"), state):
            object.__setattr__(self, name, value)


@dataclass(frozen=True)
class ChannelKeys:
    """All four traffic keys of one channel epoch.

    Attributes:
        context: The :class:`ChannelContext` the keys are bound to.
        initiator_send: Keys protecting initiator-to-responder records.
        responder_send: Keys protecting responder-to-initiator records.
    """

    context: ChannelContext
    initiator_send: DirectionKeys
    responder_send: DirectionKeys

    @property
    def epoch(self) -> int:
        """The epoch counter these keys belong to."""
        return self.context.epoch

    def send_keys(self, role: str) -> DirectionKeys:
        """The keys ``role`` (``"initiator"``/``"responder"``) seals with."""
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        return self.initiator_send if role == "initiator" else self.responder_send

    def recv_keys(self, role: str) -> DirectionKeys:
        """The keys ``role`` opens its peer's records with."""
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        return self.responder_send if role == "initiator" else self.initiator_send


def hkdf_extract(master_secret: bytes, salt: bytes = KDF_LABEL) -> bytes:
    """HKDF extract stage: concentrate the secret into a uniform PRK."""
    require(len(master_secret) > 0, "master secret must be non-empty")
    return hmac.new(salt, master_secret, hashlib.sha256).digest()


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """HKDF expand stage: ``length`` bytes bound to ``info``."""
    require(length > 0, "length must be > 0")
    require(length <= 255 * 32, "length exceeds HKDF-SHA256 output bound")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(
            prk, previous + info + bytes([counter]), hashlib.sha256
        ).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


def _derive_direction(prk: bytes, context_bytes: bytes, label: bytes) -> DirectionKeys:
    """One direction's enc/MAC/key-id triple from the extracted PRK."""
    enc = hkdf_expand(prk, _encode_field(b"enc|" + label) + context_bytes, KEY_BYTES)
    mac = hkdf_expand(prk, _encode_field(b"mac|" + label) + context_bytes, KEY_BYTES)
    kid = hkdf_expand(prk, _encode_field(b"kid|" + label) + context_bytes, KEY_ID_BYTES)
    return DirectionKeys(enc_key=enc, mac_key=mac, key_id=kid.hex())


def derive_channel_keys(master_secret: bytes, context: ChannelContext) -> ChannelKeys:
    """Derive one epoch's four traffic keys from the established secret.

    Both parties call this with the same ``master_secret`` (the confirmed
    final key) and the same public :class:`ChannelContext` and obtain the
    same keys; any disagreement in context -- nonce, ids, fingerprint or
    epoch -- yields unrelated keys, which the record MAC then surfaces as
    ``auth-failed`` rather than garbled plaintext.
    """
    prk = hkdf_extract(master_secret)
    context_bytes = context.encode()
    return ChannelKeys(
        context=context,
        initiator_send=_derive_direction(prk, context_bytes, DIRECTION_LABELS[0]),
        responder_send=_derive_direction(prk, context_bytes, DIRECTION_LABELS[1]),
    )


def master_secret_from_result(result) -> bytes:
    """The channel master secret held by a completed session result.

    Requires a *confirmed* matching key: deriving traffic keys from an
    aborted or unconfirmed session would turn "no key is released on
    failure" into a dead letter, so this refuses instead.
    """
    require(
        result.final_key_alice is not None and result.keys_match,
        "cannot derive channel keys: session holds no confirmed matching key",
    )
    return result.final_key_alice
