"""Global nonce ledger: the "no nonce reuse, ever" witness.

The channel layer makes nonce reuse impossible *by construction*
(monotonic send counters, per-epoch per-direction keys, a replay window
on the receive side).  The ledger is the independent check of that
construction: the chaos harness threads one :class:`NonceLedger` through
every session, epoch and rekey of a sweep, and every sealed record and
every accepted (successfully opened) record registers its
``(key_id, direction, sequence)`` triple here.  Any duplicate -- a seal
counter that repeated, or a receiver that accepted the same nonce twice
(e.g. with the replay window disabled under the test hook) -- is recorded
as a :class:`NonceReuse` and trips the ``no-nonce-reuse-ever`` invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set, Tuple


@dataclass(frozen=True)
class NonceReuse:
    """One observed duplicate use of a ``(key, direction, sequence)`` nonce.

    Attributes:
        key_id: Public identifier of the traffic key involved.
        direction: The record-layer direction code.
        sequence: The repeated sequence number.
        kind: ``"seal"`` when a sender reused a counter, ``"accept"``
            when a receiver accepted the same nonce twice.
    """

    key_id: str
    direction: int
    sequence: int
    kind: str


@dataclass
class NonceLedger:
    """Append-only registry of every nonce sealed and accepted under watch.

    Attributes:
        total_seals: Records sealed while this ledger was attached.
        total_accepts: Records successfully opened while attached.
        reuses: Every duplicate observed, in discovery order; an empty
            list is the ``no-nonce-reuse-ever`` verdict.
    """

    total_seals: int = 0
    total_accepts: int = 0
    reuses: List[NonceReuse] = field(default_factory=list)
    _sealed: Set[Tuple[str, int, int]] = field(default_factory=set, repr=False)
    _accepted: Set[Tuple[str, int, int]] = field(default_factory=set, repr=False)

    def record_seal(self, key_id: str, direction: int, sequence: int) -> bool:
        """Register one sealed nonce; returns False on a duplicate."""
        self.total_seals += 1
        triple = (key_id, direction, sequence)
        if triple in self._sealed:
            self.reuses.append(NonceReuse(key_id, direction, sequence, "seal"))
            return False
        self._sealed.add(triple)
        return True

    def record_accept(self, key_id: str, direction: int, sequence: int) -> bool:
        """Register one accepted nonce; returns False on a duplicate."""
        self.total_accepts += 1
        triple = (key_id, direction, sequence)
        if triple in self._accepted:
            self.reuses.append(NonceReuse(key_id, direction, sequence, "accept"))
            return False
        self._accepted.add(triple)
        return True

    @property
    def ok(self) -> bool:
        """Whether no nonce was ever reused under this ledger's watch."""
        return not self.reuses
