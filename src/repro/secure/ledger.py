"""Global nonce ledger: the "no nonce reuse, ever" witness.

The channel layer makes nonce reuse impossible *by construction*
(monotonic send counters, per-epoch per-direction keys, a replay window
on the receive side).  The ledger is the independent check of that
construction: the chaos harness threads one :class:`NonceLedger` through
every session, epoch and rekey of a sweep, and every sealed record and
every accepted (successfully opened) record registers its
``(key_id, direction, sequence)`` triple here.  Any duplicate -- a seal
counter that repeated, or a receiver that accepted the same nonce twice
(e.g. with the replay window disabled under the test hook) -- is recorded
as a :class:`NonceReuse` and trips the ``no-nonce-reuse-ever`` invariant.

Witnessed sequences are stored as sorted disjoint *interval runs* per
``(key_id, direction)``, not one set entry per record: honest traffic is
monotonic, so a session that seals a million records holds one run of
length one million -- O(gaps) state, not O(records).  Extending the
current run is O(1); an out-of-order sequence costs one bisect.  The
duplicate-detection contract is unchanged: a sequence inside any
existing run is a reuse.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class NonceReuse:
    """One observed duplicate use of a ``(key, direction, sequence)`` nonce.

    Attributes:
        key_id: Public identifier of the traffic key involved.
        direction: The record-layer direction code.
        sequence: The repeated sequence number.
        kind: ``"seal"`` when a sender reused a counter, ``"accept"``
            when a receiver accepted the same nonce twice.
    """

    key_id: str
    direction: int
    sequence: int
    kind: str


class _SequenceRuns:
    """Sorted disjoint inclusive ``[start, end]`` runs of sequences."""

    __slots__ = ("_starts", "_ends")

    def __init__(self):
        self._starts: List[int] = []
        self._ends: List[int] = []

    def __len__(self) -> int:
        """The number of disjoint runs currently held."""
        return len(self._starts)

    def __contains__(self, sequence: int) -> bool:
        index = bisect_right(self._starts, sequence) - 1
        return index >= 0 and sequence <= self._ends[index]

    def high_water(self) -> int:
        """The highest witnessed sequence (``-1`` when empty)."""
        return self._ends[-1] if self._ends else -1

    def add(self, sequence: int) -> bool:
        """Witness one sequence; ``False`` if it was already present."""
        starts, ends = self._starts, self._ends
        if ends and sequence > ends[-1]:
            # The monotonic-sender fast path: extend or append the tail run.
            if sequence == ends[-1] + 1:
                ends[-1] = sequence
            else:
                starts.append(sequence)
                ends.append(sequence)
            return True
        index = bisect_right(starts, sequence) - 1
        if index >= 0 and sequence <= ends[index]:
            return False
        joins_left = index >= 0 and ends[index] == sequence - 1
        joins_right = index + 1 < len(starts) and starts[index + 1] == sequence + 1
        if joins_left and joins_right:
            ends[index] = ends[index + 1]
            del starts[index + 1]
            del ends[index + 1]
        elif joins_left:
            ends[index] = sequence
        elif joins_right:
            starts[index + 1] = sequence
        else:
            starts.insert(index + 1, sequence)
            ends.insert(index + 1, sequence)
        return True

    def add_run(self, start: int, count: int) -> List[int]:
        """Witness ``count`` consecutive sequences; returns duplicates.

        O(1) when the whole run lies beyond every witnessed sequence --
        the shape every honest batched sender produces -- and falls back
        to per-sequence insertion otherwise.
        """
        ends = self._ends
        if not ends or start > ends[-1]:
            if ends and start == ends[-1] + 1:
                ends[-1] = start + count - 1
            else:
                self._starts.append(start)
                ends.append(start + count - 1)
            return []
        return [
            sequence
            for sequence in range(start, start + count)
            if not self.add(sequence)
        ]


@dataclass
class NonceLedger:
    """Append-only registry of every nonce sealed and accepted under watch.

    Attributes:
        total_seals: Records sealed while this ledger was attached.
        total_accepts: Records successfully opened while attached.
        reuses: Every duplicate observed, in discovery order; an empty
            list is the ``no-nonce-reuse-ever`` verdict.
        on_seal_advance: Durability hook: called with
            ``(key_id, direction, high_water)`` whenever a seal raises a
            key's high-water sequence.  The session server's journal
            subscribes here so the floor survives a crash.
        on_reuse: Witness hook: called with each :class:`NonceReuse` as
            it is recorded (the restart chaos child journals these as
            invariant violations the parent can read post-mortem).
    """

    total_seals: int = 0
    total_accepts: int = 0
    reuses: List[NonceReuse] = field(default_factory=list)
    on_seal_advance: Optional[Callable[[str, int, int], None]] = field(
        default=None, repr=False
    )
    on_reuse: Optional[Callable[[NonceReuse], None]] = field(
        default=None, repr=False
    )
    _sealed: Dict[Tuple[str, int], _SequenceRuns] = field(
        default_factory=dict, repr=False
    )
    _accepted: Dict[Tuple[str, int], _SequenceRuns] = field(
        default_factory=dict, repr=False
    )

    def _runs(
        self, table: Dict[Tuple[str, int], _SequenceRuns], key_id: str, direction: int
    ) -> _SequenceRuns:
        key = (key_id, direction)
        runs = table.get(key)
        if runs is None:
            runs = table[key] = _SequenceRuns()
        return runs

    def _reuse(self, reuse: NonceReuse) -> None:
        self.reuses.append(reuse)
        if self.on_reuse is not None:
            self.on_reuse(reuse)

    def _seal_advanced(self, key_id: str, direction: int, high: int) -> None:
        if self.on_seal_advance is not None:
            runs = self._sealed.get((key_id, direction))
            if runs is not None and high == runs.high_water():
                self.on_seal_advance(key_id, direction, high)

    def record_seal(self, key_id: str, direction: int, sequence: int) -> bool:
        """Register one sealed nonce; returns False on a duplicate."""
        self.total_seals += 1
        if self._runs(self._sealed, key_id, direction).add(sequence):
            self._seal_advanced(key_id, direction, sequence)
            return True
        self._reuse(NonceReuse(key_id, direction, sequence, "seal"))
        return False

    def record_seal_run(
        self, key_id: str, direction: int, start: int, count: int
    ) -> bool:
        """Register ``count`` consecutive seals from ``start`` in one call.

        Equivalent to ``count`` :meth:`record_seal` calls (every
        duplicate is still recorded individually); the batched seal path
        uses it to witness a whole burst at O(1) ledger cost.
        """
        if count <= 0:
            return True
        self.total_seals += count
        duplicates = self._runs(self._sealed, key_id, direction).add_run(
            start, count
        )
        for sequence in duplicates:
            self._reuse(NonceReuse(key_id, direction, sequence, "seal"))
        self._seal_advanced(key_id, direction, start + count - 1)
        return not duplicates

    def record_accept(self, key_id: str, direction: int, sequence: int) -> bool:
        """Register one accepted nonce; returns False on a duplicate."""
        self.total_accepts += 1
        if self._runs(self._accepted, key_id, direction).add(sequence):
            return True
        self._reuse(NonceReuse(key_id, direction, sequence, "accept"))
        return False

    def high_water(self) -> Dict[Tuple[str, int], int]:
        """Highest witnessed *seal* sequence per ``(key_id, direction)``."""
        return {
            key: runs.high_water()
            for key, runs in self._sealed.items()
            if len(runs)
        }

    def restore_floor(self, key_id: str, direction: int, high: int) -> None:
        """Mark ``0..high`` as already sealed for a key (crash recovery).

        A restarted server calls this with each journaled high-water mark
        before serving traffic: any sequence at or below the floor that a
        post-restart sender re-issues is then witnessed as a reuse rather
        than silently accepted as fresh.  Does not count toward
        ``total_seals`` and never fires the durability hook (restoring a
        floor is not new traffic).
        """
        if high < 0:
            return
        runs = self._runs(self._sealed, key_id, direction)
        if high > runs.high_water():
            runs.add_run(0, high + 1)

    @property
    def seal_runs(self) -> int:
        """Disjoint witnessed seal runs across all keys (O(gaps) state)."""
        return sum(len(runs) for runs in self._sealed.values())

    @property
    def accept_runs(self) -> int:
        """Disjoint witnessed accept runs across all keys."""
        return sum(len(runs) for runs in self._accepted.values())

    @property
    def ok(self) -> bool:
        """Whether no nonce was ever reused under this ledger's watch."""
        return not self.reuses
