"""Stateful secure-channel endpoints: nonce discipline over the records.

:class:`SecureChannel` is one party's endpoint.  It owns the monotonic
send counter (sealing past the counter bound raises -- the *sender* can
never reuse a nonce), a DTLS-style sliding replay window on the receive
side (a replayed or duplicated record is rejected as ``nonce-replayed``,
never delivered twice), and the epoch routing that makes rekey rollover
safe (current-epoch records verify under current keys; previous-epoch
records drain through a bounded grace allowance; anything older is
``epoch-mismatch``; an epoch never issued can only fail its MAC).

:meth:`SecureChannel.open` **never raises and never leaks**: every
outcome is an :class:`OpenOutcome` whose ``failure`` is one of the closed
:data:`~repro.secure.records.OPEN_FAILURES` slugs, and ``plaintext`` is
``None`` on every one of them.  Decryption happens only after the MAC
verified and the nonce checks passed, so there is no code path on which
attacker-controlled bytes are decrypted and then "unreleased".

The data plane is batched: :meth:`SecureChannel.seal_records` and
:meth:`SecureChannel.open_records` process a burst with per-record state
semantics identical to the one-at-a-time calls while amortizing header
packing, ledger witnessing and attribute lookups across the burst.

:class:`SecureLink` bundles the two endpoints of one simulated channel --
the reproduction holds both parties in one process, exactly as the
session layer holds Alice and Bob.  In that topology the link threads a
:class:`RecordMemo` through both endpoints: the opener may recognize a
record as byte-identical to what its in-process peer just sealed and
reuse the sealed plaintext instead of re-deriving the keystream.  This
is the same simulation-sharing move the probing layer makes (one
channel-stack evaluation per direction) and it never changes an outcome:
seal and open are deterministic functions, so byte-equal inputs have
byte-equal results, and any record that is *not* byte-identical to the
sealed original -- tampered, replayed after acceptance, foreign -- falls
back to full cryptographic verification.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ProtocolError
from repro.secure.kdf import ChannelContext, ChannelKeys, derive_channel_keys
from repro.secure.kdf import DirectionKeys, master_secret_from_result
from repro.secure.ledger import NonceLedger
from repro.secure.records import (
    DIRECTION_I2R,
    DIRECTION_R2I,
    FAILURE_AUTH,
    FAILURE_EPOCH,
    FAILURE_EXHAUSTED,
    FAILURE_REPLAY,
    FAILURE_TRUNCATED,
    HEADER_BYTES,
    OPEN_FAILURES,
    RECORD_OVERHEAD,
    RECORD_VERSION,
    RecordDamage,
    SecureRecord,
    STREAM_LABEL,
    TAG_BYTES,
    _BLOCK_BYTES,
    _COUNTERS,
    _HEADER,
    _grow_counters,
    keystream_bytes,
    parse_record,
    verify_record,
    xor_bytes,
)
from repro.utils.validation import require

#: Default highest sequence number either side will seal or accept.
DEFAULT_MAX_SEQUENCE = 2**20

#: Default replay-window width (sequence numbers tracked behind the highest).
DEFAULT_REPLAY_WINDOW = 64

#: Default sealed-record entries a :class:`RecordMemo` retains.
DEFAULT_MEMO_CAPACITY = 1024


class NonceExhaustedError(ProtocolError):
    """The send counter hit its bound; sealing more records is refused.

    This is the sender-side guarantee behind "no nonce reuse, ever": a
    channel that cannot advance its counter refuses to seal rather than
    wrap.  The rekey layer treats it as a trigger, not an error.  When
    raised from :meth:`SecureChannel.seal_records` the ``sealed``
    attribute carries the wire records sealed before the bound was hit
    (exactly the records a one-at-a-time caller would already hold).
    """

    def __init__(self, message: str, sealed: Optional[List[bytes]] = None):
        super().__init__(message)
        self.sealed: List[bytes] = sealed if sealed is not None else []


@dataclass
class ReplayWindow:
    """Sliding anti-replay window over received sequence numbers.

    Tracks the highest authenticated sequence seen and a bitmap of the
    ``size`` numbers behind it.  A sequence ahead of the highest is new;
    one inside the window is new only if its bit is clear; one that fell
    off the back is treated as replayed (the conservative DTLS rule).

    Attributes:
        size: Window width in sequence numbers.
        highest: Highest sequence accepted so far (-1 before any).
    """

    size: int = DEFAULT_REPLAY_WINDOW
    highest: int = -1
    _bitmap: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        require(self.size > 0, "replay window size must be > 0")

    def seen(self, sequence: int) -> bool:
        """Whether ``sequence`` was already accepted (or is too old to tell)."""
        if sequence > self.highest:
            return False
        offset = self.highest - sequence
        if offset >= self.size:
            return True
        return bool((self._bitmap >> offset) & 1)

    def mark(self, sequence: int) -> None:
        """Record ``sequence`` as accepted."""
        if sequence > self.highest:
            shift = sequence - self.highest if self.highest >= 0 else self.size
            self._bitmap = ((self._bitmap << min(shift, self.size)) | 1) & (
                (1 << self.size) - 1
            )
            self.highest = sequence
        else:
            offset = self.highest - sequence
            if offset < self.size:
                self._bitmap |= 1 << offset


@dataclass(frozen=True)
class OpenOutcome:
    """The structured result of one :meth:`SecureChannel.open` call.

    Attributes:
        ok: Whether the record verified and its plaintext was released.
        plaintext: The decrypted payload; ``None`` on *every* failure --
            the harness's ``no-plaintext-on-auth-failure`` invariant
            checks exactly this field.
        failure: ``None`` on success, else one of the closed
            :data:`~repro.secure.records.OPEN_FAILURES` slugs.
        record: The parsed record when parsing succeeded (diagnostics);
            ``None`` when the bytes were structurally damaged.
    """

    ok: bool
    plaintext: Optional[bytes] = None
    failure: Optional[str] = None
    record: Optional[SecureRecord] = None


def _fast_record(
    epoch: int, direction: int, sequence: int, ciphertext: bytes, tag: bytes
) -> SecureRecord:
    """Build a :class:`SecureRecord` without the frozen-dataclass __init__.

    Semantically identical to the constructor (same fields, same
    equality/hash); skipping ``object.__setattr__`` per field roughly
    halves the cost, which is material at data-plane record rates.
    """
    record = object.__new__(SecureRecord)
    attrs = record.__dict__
    attrs["epoch"] = epoch
    attrs["direction"] = direction
    attrs["sequence"] = sequence
    attrs["ciphertext"] = ciphertext
    attrs["tag"] = tag
    return record


def _fast_outcome(plaintext: bytes, record: SecureRecord) -> OpenOutcome:
    """Build a success :class:`OpenOutcome` bypassing the dataclass init."""
    outcome = object.__new__(OpenOutcome)
    attrs = outcome.__dict__
    attrs["ok"] = True
    attrs["plaintext"] = plaintext
    attrs["failure"] = None
    attrs["record"] = record
    return outcome


class RecordMemo:
    """Sealed-record share table between the endpoints of one process.

    The keystream (and hence the whole record) is a pure function of
    ``(key_id, epoch, direction, sequence)`` and the plaintext, so when
    both endpoints live in one simulation the opener can recognize a
    delivered record as byte-identical to what its peer sealed and skip
    re-deriving the keystream -- the same "one evaluation per direction"
    sharing the probing layer performs.  **Correctness never rests on
    the memo**: a lookup only short-circuits when the received bytes
    equal the sealed original exactly (MAC equality follows because the
    MAC is a function of those bytes); every other delivery -- tampered,
    truncated, spliced, replayed, evicted -- takes the full
    cryptographic path.  Entries are consumed on match and evicted FIFO
    past ``capacity``, bounding memory for arbitrarily long sessions.

    Attributes:
        capacity: Maximum retained entries.
        hits: Deliveries served from the memo.
        misses: Lookups that fell back to the cryptographic path.
    """

    __slots__ = ("capacity", "hits", "misses", "_entries")

    def __init__(self, capacity: int = DEFAULT_MEMO_CAPACITY):
        require(capacity > 0, "memo capacity must be > 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Tuple[str, int, int, int], Tuple[bytes, bytes]]" = (
            OrderedDict()
        )

    def __len__(self) -> int:
        return len(self._entries)

    def put(
        self,
        key_id: str,
        epoch: int,
        direction: int,
        sequence: int,
        wire: bytes,
        plaintext: bytes,
    ) -> None:
        """Remember one sealed record's wire bytes and plaintext."""
        entries = self._entries
        entries[(key_id, epoch, direction, sequence)] = (wire, plaintext)
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def match(
        self, key_id: str, epoch: int, direction: int, sequence: int, data: bytes
    ) -> Optional[bytes]:
        """The sealed plaintext iff ``data`` is the sealed record, verbatim.

        Consumes the entry on a match; returns ``None`` (and counts a
        miss) whenever the entry is absent or the bytes differ in any
        way, leaving the decision to the cryptographic path.  A
        mismatched entry is kept -- the unmodified original may still
        arrive after a tampered copy.
        """
        key = (key_id, epoch, direction, sequence)
        entry = self._entries.pop(key, None)
        if entry is None:
            self.misses += 1
            return None
        if entry[0] != data:
            self._entries[key] = entry
            self.misses += 1
            return None
        self.hits += 1
        return entry[1]


class SecureChannel:
    """One endpoint of an established secure channel.

    Args:
        keys: The epoch's traffic keys (both directions; the endpoint
            picks its send/receive halves from ``role``).
        role: ``"initiator"`` or ``"responder"``.
        max_sequence: Highest sequence number this endpoint will seal or
            accept; sealing past it raises :class:`NonceExhaustedError`,
            receiving past it fails as ``nonce-exhausted``.
        replay_window: Receive-side anti-replay window width.
        ledger: Optional :class:`~repro.secure.ledger.NonceLedger` that
            witnesses every seal and accept (the chaos harness threads
            one global ledger through all sessions of a sweep).
        memo: Optional :class:`RecordMemo` shared with the in-process
            peer endpoint (see :class:`SecureLink`); ``None`` -- the
            default, and the only correct choice when the peer is a
            separate process -- always takes the full cryptographic
            path.
        replay_window_enabled: **Test hook.**  ``False`` disables the
            receive-side replay window -- the deliberately broken channel
            the chaos tests use to prove the ``no-nonce-reuse-ever``
            invariant actually fires.  Production paths never touch it.
    """

    def __init__(
        self,
        keys: ChannelKeys,
        role: str,
        max_sequence: int = DEFAULT_MAX_SEQUENCE,
        replay_window: int = DEFAULT_REPLAY_WINDOW,
        ledger: Optional[NonceLedger] = None,
        memo: Optional[RecordMemo] = None,
        replay_window_enabled: bool = True,
    ):
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        require(max_sequence > 0, "max_sequence must be > 0")
        self.role = role
        self.max_sequence = max_sequence
        self.ledger = ledger
        self.memo = memo
        self.replay_window_enabled = replay_window_enabled
        self._keys = keys
        self._epoch = keys.epoch
        self._send_direction = (
            DIRECTION_I2R if role == "initiator" else DIRECTION_R2I
        )
        self._recv_direction = (
            DIRECTION_R2I if role == "initiator" else DIRECTION_I2R
        )
        self._send_keys = keys.send_keys(role)
        self._recv_keys = keys.recv_keys(role)
        self._send_sequence = 0
        self._window_size = replay_window
        self._window = ReplayWindow(replay_window)
        self._previous: Optional[ChannelKeys] = None
        self._previous_recv_keys: Optional[DirectionKeys] = None
        self._previous_window: Optional[ReplayWindow] = None
        self._grace_opens_left = 0
        #: Records sealed by this endpoint.
        self.sealed = 0
        #: Records opened (verified and released) by this endpoint.
        self.opened = 0
        #: Failed opens by taxonomy slug (zero-filled, closed key set).
        self.open_failures: Dict[str, int] = {slug: 0 for slug in OPEN_FAILURES}

    @property
    def epoch(self) -> int:
        """The current send/receive epoch."""
        return self._epoch

    @property
    def keys(self) -> ChannelKeys:
        """The current epoch's traffic keys."""
        return self._keys

    @property
    def send_sequence(self) -> int:
        """The next sequence number this endpoint would seal with."""
        return self._send_sequence

    @property
    def sequence_remaining(self) -> int:
        """How many more records this endpoint may seal before exhaustion."""
        return max(0, self.max_sequence + 1 - self._send_sequence)

    @property
    def total_open_failures(self) -> int:
        """Failed opens across all taxonomy slugs."""
        return sum(self.open_failures.values())

    def _seal_wire(self, plaintext: bytes, sequence: int) -> bytes:
        """Seal one payload under ``sequence`` into its wire encoding."""
        send_keys = self._send_keys
        epoch = self._epoch
        direction = self._send_direction
        keystream = keystream_bytes(
            send_keys, epoch, direction, sequence, len(plaintext)
        )
        ciphertext = xor_bytes(plaintext, keystream)
        header = _HEADER.pack(
            RECORD_VERSION, epoch, direction, sequence, len(ciphertext)
        )
        body = header + ciphertext
        wire = body + send_keys.mac().tag(body)
        if self.memo is not None:
            self.memo.put(
                send_keys.key_id, epoch, direction, sequence, wire, plaintext
            )
        self.sealed += 1
        return wire

    def seal(self, plaintext: bytes, force_sequence: Optional[int] = None) -> bytes:
        """Seal one plaintext into wire bytes; advances the send counter.

        Raises :class:`NonceExhaustedError` once the counter bound is
        reached -- the caller (the rekey layer) must roll the epoch.

        Args:
            plaintext: Payload bytes to protect.
            force_sequence: **Test hook.**  Seal under a specific
                sequence number without touching the counter -- the
                deliberate-misuse tests use it to prove the nonce ledger
                catches a sender that repeats a counter.  Production
                paths never pass it.
        """
        if force_sequence is not None:
            sequence = force_sequence
        else:
            if self._send_sequence > self.max_sequence:
                raise NonceExhaustedError(
                    f"send counter exhausted at {self.max_sequence} "
                    f"(epoch {self.epoch}, role {self.role}); rekey required"
                )
            sequence = self._send_sequence
            self._send_sequence += 1
        if self.ledger is not None:
            self.ledger.record_seal(
                self._send_keys.key_id, self._send_direction, sequence
            )
        return self._seal_wire(bytes(plaintext), sequence)

    def seal_records(self, payloads: Sequence[bytes]) -> List[bytes]:
        """Seal a burst of payloads; wire bytes and end state are exactly
        those of sealing the burst one :meth:`seal` call at a time.

        The whole burst is witnessed in the ledger as one contiguous run
        and shares one round of attribute lookups.  Hitting the counter
        bound mid-burst raises :class:`NonceExhaustedError` with the
        already-sealed records on its ``sealed`` attribute (a sequential
        caller would hold them too -- the counter advanced for each).
        """
        payloads = [bytes(payload) for payload in payloads]
        start = self._send_sequence
        sealable = min(len(payloads), max(0, self.max_sequence + 1 - start))
        send_keys = self._send_keys
        direction = self._send_direction
        epoch = self._epoch
        if sealable and self.ledger is not None:
            self.ledger.record_seal_run(
                send_keys.key_id, direction, start, sealable
            )
        # Hoisted once per burst: the key's midstates, MAC tagger, header
        # packer and the constant label/epoch/direction keystream prefix.
        # The inner loop is keystream_bytes() with its per-record setup
        # amortized; the equivalence tests pin byte-identity of the two.
        inner, outer = send_keys.keystream_states()
        copy_inner = inner.copy
        copy_outer = outer.copy
        mac_tag = send_keys.mac().tag
        pack_header = _HEADER.pack
        counters = _COUNTERS
        head = STREAM_LABEL + epoch.to_bytes(4, "big") + bytes((direction,))
        memo = self.memo
        memo_put = None if memo is None else memo.put
        key_id = send_keys.key_id
        wires: List[bytes] = []
        append_wire = wires.append
        for offset in range(sealable):
            sequence = start + offset
            self._send_sequence = sequence + 1
            payload = payloads[offset]
            length = len(payload)
            if length:
                prefix = copy_inner()
                prefix.update(head + sequence.to_bytes(8, "big"))
                n_blocks = -(-length // _BLOCK_BYTES)
                if n_blocks > len(counters):
                    _grow_counters(n_blocks)
                copy_prefix = prefix.copy
                blocks = []
                append_block = blocks.append
                for counter in counters[:n_blocks]:
                    block = copy_prefix()
                    block.update(counter)
                    closing = copy_outer()
                    closing.update(block.digest())
                    append_block(closing.digest())
                stream = b"".join(blocks)
                if len(stream) != length:
                    stream = stream[:length]
                ciphertext = xor_bytes(payload, stream)
            else:
                ciphertext = b""
            body = (
                pack_header(RECORD_VERSION, epoch, direction, sequence, length)
                + ciphertext
            )
            wire = body + mac_tag(body)
            if memo_put is not None:
                memo_put(key_id, epoch, direction, sequence, wire, payload)
            append_wire(wire)
        self.sealed += sealable
        if sealable < len(payloads):
            raise NonceExhaustedError(
                f"send counter exhausted at {self.max_sequence} "
                f"(epoch {self.epoch}, role {self.role}); rekey required",
                sealed=wires,
            )
        return wires

    def _fail(self, slug: str, record: Optional[SecureRecord]) -> OpenOutcome:
        """Count and return one taxonomized open failure (no plaintext)."""
        self.open_failures[slug] += 1
        return OpenOutcome(ok=False, plaintext=None, failure=slug, record=record)

    def _route_epoch(self, epoch: int):
        """Route a record's epoch to keys and replay window, or a failure.

        Returns ``(recv_keys, window, is_previous, failure_slug)``.  The
        routing rule keeps the taxonomy honest: the in-grace previous
        epoch verifies under its own retained keys; an older (rolled-past)
        epoch is ``epoch-mismatch`` without consulting a MAC; an epoch
        *newer than anything issued* cannot name real keys, so it is
        checked under the current keys and can only fail as
        ``auth-failed`` -- a forged header field is an authentication
        failure, not a protocol state.
        """
        if epoch == self._epoch:
            return self._recv_keys, self._window, False, None
        if (
            self._previous is not None
            and epoch == self._previous.epoch
            and self._grace_opens_left > 0
        ):
            return self._previous_recv_keys, self._previous_window, True, None
        if epoch < self._epoch:
            return None, None, False, FAILURE_EPOCH
        return self._recv_keys, self._window, False, None

    def open(self, data: bytes) -> OpenOutcome:
        """Open one wire record; never raises, never leaks plaintext.

        The check order is fixed: structure, epoch routing, MAC, counter
        bound, replay window, and only then decryption.  Every rejection
        maps to exactly one slug of the closed taxonomy, and the replay
        window is only advanced by *authenticated* records, so a forger
        cannot burn window state.

        When a shared :class:`RecordMemo` holds this exact record (the
        one-process link topology), the MAC check and decryption resolve
        by byte equality with the sealed original -- same outcome, same
        state transitions, no recomputed keystream.  Any deviation falls
        through to the full path below.
        """
        memo = self.memo
        if memo is not None and len(data) >= RECORD_OVERHEAD:
            version, epoch, direction, sequence, ct_len = _HEADER.unpack_from(data)
            if (
                version == RECORD_VERSION
                and direction == self._recv_direction
                and epoch == self._epoch
                and len(data) == RECORD_OVERHEAD + ct_len
                and sequence <= self.max_sequence
                and not (
                    self.replay_window_enabled and self._window.seen(sequence)
                )
            ):
                plaintext = memo.match(
                    self._recv_keys.key_id, epoch, direction, sequence, data
                )
                if plaintext is not None:
                    self._window.mark(sequence)
                    if self.ledger is not None:
                        self.ledger.record_accept(
                            self._recv_keys.key_id, direction, sequence
                        )
                    self.opened += 1
                    return _fast_outcome(
                        plaintext,
                        _fast_record(
                            epoch,
                            direction,
                            sequence,
                            data[HEADER_BYTES : len(data) - TAG_BYTES],
                            data[len(data) - TAG_BYTES :],
                        ),
                    )
        try:
            record = parse_record(data)
        except RecordDamage:
            return self._fail(FAILURE_TRUNCATED, None)
        recv_keys, window, is_previous, failure = self._route_epoch(record.epoch)
        if failure is not None:
            return self._fail(failure, record)
        if record.direction != self._recv_direction or not verify_record(
            recv_keys, record
        ):
            # A reflected own-direction record carries the peer's MAC
            # under the *other* key; it is a forgery from this endpoint's
            # point of view and fails authentication like any other.
            return self._fail(FAILURE_AUTH, record)
        if record.sequence > self.max_sequence:
            return self._fail(FAILURE_EXHAUSTED, record)
        if self.replay_window_enabled and window.seen(record.sequence):
            return self._fail(FAILURE_REPLAY, record)
        plaintext = keystream_bytes(
            recv_keys,
            record.epoch,
            record.direction,
            record.sequence,
            len(record.ciphertext),
        )
        plaintext = xor_bytes(record.ciphertext, plaintext)
        window.mark(record.sequence)
        if is_previous:
            self._grace_opens_left -= 1
            if self._grace_opens_left <= 0:
                self._previous = None
                self._previous_recv_keys = None
                self._previous_window = None
        if self.ledger is not None:
            self.ledger.record_accept(
                recv_keys.key_id, record.direction, record.sequence
            )
        self.opened += 1
        return OpenOutcome(ok=True, plaintext=plaintext, record=record)

    def open_records(
        self,
        blobs: Sequence[bytes],
        max_failures: Optional[int] = None,
    ) -> List[OpenOutcome]:
        """Open a burst of wire records, in order.

        Returns one :class:`OpenOutcome` per processed blob.  With
        ``max_failures`` set, processing stops *after* the outcome that
        brings the running failure count to the cap -- exactly where a
        sequential caller enforcing a decrypt budget would stop -- so
        the returned list may be shorter than ``blobs``.
        """
        open_one = self.open
        outcomes: List[OpenOutcome] = []
        append = outcomes.append
        failures = 0
        for blob in blobs:
            outcome = open_one(blob)
            append(outcome)
            if not outcome.ok:
                failures += 1
                if max_failures is not None and failures >= max_failures:
                    break
        return outcomes

    def rollover(self, new_keys: ChannelKeys, grace_opens: int = 0) -> None:
        """Install the next epoch's keys; optionally drain the old epoch.

        The send counter and replay window reset -- safe precisely
        because the new epoch's keys are unrelated.  With
        ``grace_opens > 0`` the outgoing epoch's *receive* state is
        retained so that many in-flight records may still drain; after
        the allowance (or a zero allowance) old-epoch records fail as
        ``epoch-mismatch``.
        """
        require(
            new_keys.epoch == self.epoch + 1,
            f"rollover must advance the epoch by 1 "
            f"(current {self.epoch}, offered {new_keys.epoch})",
        )
        require(grace_opens >= 0, "grace_opens must be >= 0")
        if grace_opens > 0:
            self._previous = self._keys
            self._previous_recv_keys = self._recv_keys
            self._previous_window = self._window
            self._grace_opens_left = grace_opens
        else:
            self._previous = None
            self._previous_recv_keys = None
            self._previous_window = None
            self._grace_opens_left = 0
        self._keys = new_keys
        self._epoch = new_keys.epoch
        self._send_keys = new_keys.send_keys(self.role)
        self._recv_keys = new_keys.recv_keys(self.role)
        self._send_sequence = 0
        self._window = ReplayWindow(self._window_size)


class SecureLink:
    """Both endpoints of one simulated secure channel.

    The reproduction holds both parties in one process (exactly as the
    session layer holds Alice and Bob), so a link is a pair of
    :class:`SecureChannel` endpoints over the same derived keys sharing
    one :class:`RecordMemo` (see the module docstring; ``share_records=
    False`` opts out and forces every open down the cryptographic path).

    Args:
        keys: One epoch's traffic keys.
        ledger: Optional shared nonce ledger (both endpoints register).
        max_sequence: Per-endpoint counter bound.
        replay_window: Receive-side window width for both endpoints.
        share_records: Whether the endpoints share a :class:`RecordMemo`.
        replay_window_enabled: Test hook, passed to both endpoints.
    """

    def __init__(
        self,
        keys: ChannelKeys,
        ledger: Optional[NonceLedger] = None,
        max_sequence: int = DEFAULT_MAX_SEQUENCE,
        replay_window: int = DEFAULT_REPLAY_WINDOW,
        share_records: bool = True,
        replay_window_enabled: bool = True,
    ):
        self.memo = RecordMemo() if share_records else None
        self.initiator = SecureChannel(
            keys,
            "initiator",
            max_sequence=max_sequence,
            replay_window=replay_window,
            ledger=ledger,
            memo=self.memo,
            replay_window_enabled=replay_window_enabled,
        )
        self.responder = SecureChannel(
            keys,
            "responder",
            max_sequence=max_sequence,
            replay_window=replay_window,
            ledger=ledger,
            memo=self.memo,
            replay_window_enabled=replay_window_enabled,
        )

    @classmethod
    def from_result(
        cls,
        result,
        context: Optional[ChannelContext] = None,
        **kwargs,
    ) -> "SecureLink":
        """Build a link from a completed session result.

        Derives the epoch's keys from the result's confirmed final key
        and its session nonce; ``context`` overrides the default context
        (ids, fingerprint, epoch) when the caller binds more state.
        """
        if context is None:
            context = ChannelContext(session_nonce=result.session_nonce)
        keys = derive_channel_keys(master_secret_from_result(result), context)
        return cls(keys, **kwargs)

    def endpoint(self, role: str) -> SecureChannel:
        """The endpoint playing ``role``."""
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        return self.initiator if role == "initiator" else self.responder

    @property
    def epoch(self) -> int:
        """The link's current epoch (both endpoints agree by construction)."""
        return self.initiator.epoch

    def rollover(self, new_keys: ChannelKeys, grace_opens: int = 0) -> None:
        """Advance both endpoints to the next epoch together."""
        self.initiator.rollover(new_keys, grace_opens=grace_opens)
        self.responder.rollover(new_keys, grace_opens=grace_opens)
