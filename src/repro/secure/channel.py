"""Stateful secure-channel endpoints: nonce discipline over the records.

:class:`SecureChannel` is one party's endpoint.  It owns the monotonic
send counter (sealing past the counter bound raises -- the *sender* can
never reuse a nonce), a DTLS-style sliding replay window on the receive
side (a replayed or duplicated record is rejected as ``nonce-replayed``,
never delivered twice), and the epoch routing that makes rekey rollover
safe (current-epoch records verify under current keys; previous-epoch
records drain through a bounded grace allowance; anything older is
``epoch-mismatch``; an epoch never issued can only fail its MAC).

:meth:`SecureChannel.open` **never raises and never leaks**: every
outcome is an :class:`OpenOutcome` whose ``failure`` is one of the closed
:data:`~repro.secure.records.OPEN_FAILURES` slugs, and ``plaintext`` is
``None`` on every one of them.  Decryption happens only after the MAC
verified and the nonce checks passed, so there is no code path on which
attacker-controlled bytes are decrypted and then "unreleased".

:class:`SecureLink` bundles the two endpoints of one simulated channel --
the reproduction holds both parties in one process, exactly as the
session layer holds Alice and Bob.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.exceptions import ProtocolError
from repro.secure.kdf import ChannelContext, ChannelKeys, derive_channel_keys
from repro.secure.kdf import master_secret_from_result
from repro.secure.ledger import NonceLedger
from repro.secure.records import (
    DIRECTION_I2R,
    DIRECTION_R2I,
    FAILURE_AUTH,
    FAILURE_EPOCH,
    FAILURE_EXHAUSTED,
    FAILURE_REPLAY,
    FAILURE_TRUNCATED,
    OPEN_FAILURES,
    RecordDamage,
    SecureRecord,
    decrypt_record,
    parse_record,
    seal_record,
    verify_record,
)
from repro.utils.validation import require

#: Default highest sequence number either side will seal or accept.
DEFAULT_MAX_SEQUENCE = 2**20

#: Default replay-window width (sequence numbers tracked behind the highest).
DEFAULT_REPLAY_WINDOW = 64


class NonceExhaustedError(ProtocolError):
    """The send counter hit its bound; sealing more records is refused.

    This is the sender-side guarantee behind "no nonce reuse, ever": a
    channel that cannot advance its counter refuses to seal rather than
    wrap.  The rekey layer treats it as a trigger, not an error.
    """


@dataclass
class ReplayWindow:
    """Sliding anti-replay window over received sequence numbers.

    Tracks the highest authenticated sequence seen and a bitmap of the
    ``size`` numbers behind it.  A sequence ahead of the highest is new;
    one inside the window is new only if its bit is clear; one that fell
    off the back is treated as replayed (the conservative DTLS rule).

    Attributes:
        size: Window width in sequence numbers.
        highest: Highest sequence accepted so far (-1 before any).
    """

    size: int = DEFAULT_REPLAY_WINDOW
    highest: int = -1
    _bitmap: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        require(self.size > 0, "replay window size must be > 0")

    def seen(self, sequence: int) -> bool:
        """Whether ``sequence`` was already accepted (or is too old to tell)."""
        if sequence > self.highest:
            return False
        offset = self.highest - sequence
        if offset >= self.size:
            return True
        return bool((self._bitmap >> offset) & 1)

    def mark(self, sequence: int) -> None:
        """Record ``sequence`` as accepted."""
        if sequence > self.highest:
            shift = sequence - self.highest if self.highest >= 0 else self.size
            self._bitmap = ((self._bitmap << min(shift, self.size)) | 1) & (
                (1 << self.size) - 1
            )
            self.highest = sequence
        else:
            offset = self.highest - sequence
            if offset < self.size:
                self._bitmap |= 1 << offset


@dataclass(frozen=True)
class OpenOutcome:
    """The structured result of one :meth:`SecureChannel.open` call.

    Attributes:
        ok: Whether the record verified and its plaintext was released.
        plaintext: The decrypted payload; ``None`` on *every* failure --
            the harness's ``no-plaintext-on-auth-failure`` invariant
            checks exactly this field.
        failure: ``None`` on success, else one of the closed
            :data:`~repro.secure.records.OPEN_FAILURES` slugs.
        record: The parsed record when parsing succeeded (diagnostics);
            ``None`` when the bytes were structurally damaged.
    """

    ok: bool
    plaintext: Optional[bytes] = None
    failure: Optional[str] = None
    record: Optional[SecureRecord] = None


class SecureChannel:
    """One endpoint of an established secure channel.

    Args:
        keys: The epoch's traffic keys (both directions; the endpoint
            picks its send/receive halves from ``role``).
        role: ``"initiator"`` or ``"responder"``.
        max_sequence: Highest sequence number this endpoint will seal or
            accept; sealing past it raises :class:`NonceExhaustedError`,
            receiving past it fails as ``nonce-exhausted``.
        replay_window: Receive-side anti-replay window width.
        ledger: Optional :class:`~repro.secure.ledger.NonceLedger` that
            witnesses every seal and accept (the chaos harness threads
            one global ledger through all sessions of a sweep).
        replay_window_enabled: **Test hook.**  ``False`` disables the
            receive-side replay window -- the deliberately broken channel
            the chaos tests use to prove the ``no-nonce-reuse-ever``
            invariant actually fires.  Production paths never touch it.
    """

    def __init__(
        self,
        keys: ChannelKeys,
        role: str,
        max_sequence: int = DEFAULT_MAX_SEQUENCE,
        replay_window: int = DEFAULT_REPLAY_WINDOW,
        ledger: Optional[NonceLedger] = None,
        replay_window_enabled: bool = True,
    ):
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        require(max_sequence > 0, "max_sequence must be > 0")
        self.role = role
        self.max_sequence = max_sequence
        self.ledger = ledger
        self.replay_window_enabled = replay_window_enabled
        self._keys = keys
        self._send_direction = (
            DIRECTION_I2R if role == "initiator" else DIRECTION_R2I
        )
        self._recv_direction = (
            DIRECTION_R2I if role == "initiator" else DIRECTION_I2R
        )
        self._send_sequence = 0
        self._window_size = replay_window
        self._window = ReplayWindow(replay_window)
        self._previous: Optional[ChannelKeys] = None
        self._previous_window: Optional[ReplayWindow] = None
        self._grace_opens_left = 0
        #: Records sealed by this endpoint.
        self.sealed = 0
        #: Records opened (verified and released) by this endpoint.
        self.opened = 0
        #: Failed opens by taxonomy slug (zero-filled, closed key set).
        self.open_failures: Dict[str, int] = {slug: 0 for slug in OPEN_FAILURES}

    @property
    def epoch(self) -> int:
        """The current send/receive epoch."""
        return self._keys.epoch

    @property
    def keys(self) -> ChannelKeys:
        """The current epoch's traffic keys."""
        return self._keys

    @property
    def send_sequence(self) -> int:
        """The next sequence number this endpoint would seal with."""
        return self._send_sequence

    @property
    def sequence_remaining(self) -> int:
        """How many more records this endpoint may seal before exhaustion."""
        return max(0, self.max_sequence + 1 - self._send_sequence)

    @property
    def total_open_failures(self) -> int:
        """Failed opens across all taxonomy slugs."""
        return sum(self.open_failures.values())

    def seal(self, plaintext: bytes, force_sequence: Optional[int] = None) -> bytes:
        """Seal one plaintext into wire bytes; advances the send counter.

        Raises :class:`NonceExhaustedError` once the counter bound is
        reached -- the caller (the rekey layer) must roll the epoch.

        Args:
            plaintext: Payload bytes to protect.
            force_sequence: **Test hook.**  Seal under a specific
                sequence number without touching the counter -- the
                deliberate-misuse tests use it to prove the nonce ledger
                catches a sender that repeats a counter.  Production
                paths never pass it.
        """
        if force_sequence is not None:
            sequence = force_sequence
        else:
            if self._send_sequence > self.max_sequence:
                raise NonceExhaustedError(
                    f"send counter exhausted at {self.max_sequence} "
                    f"(epoch {self.epoch}, role {self.role}); rekey required"
                )
            sequence = self._send_sequence
            self._send_sequence += 1
        send_keys = self._keys.send_keys(self.role)
        if self.ledger is not None:
            self.ledger.record_seal(
                send_keys.key_id, self._send_direction, sequence
            )
        record = seal_record(
            send_keys, self.epoch, self._send_direction, sequence, plaintext
        )
        self.sealed += 1
        return record.encode()

    def _fail(self, slug: str, record: Optional[SecureRecord]) -> OpenOutcome:
        """Count and return one taxonomized open failure (no plaintext)."""
        self.open_failures[slug] += 1
        return OpenOutcome(ok=False, plaintext=None, failure=slug, record=record)

    def _keys_for_epoch(self, epoch: int):
        """Route a record's epoch to keys and replay window, or a failure.

        Returns ``(keys, window, is_previous, failure_slug)``.  The
        routing rule keeps the taxonomy honest: the in-grace previous
        epoch verifies under its own retained keys; an older (rolled-past)
        epoch is ``epoch-mismatch`` without consulting a MAC; an epoch
        *newer than anything issued* cannot name real keys, so it is
        checked under the current keys and can only fail as
        ``auth-failed`` -- a forged header field is an authentication
        failure, not a protocol state.
        """
        if epoch == self.epoch:
            return self._keys, self._window, False, None
        if (
            self._previous is not None
            and epoch == self._previous.epoch
            and self._grace_opens_left > 0
        ):
            return self._previous, self._previous_window, True, None
        if epoch < self.epoch:
            return None, None, False, FAILURE_EPOCH
        return self._keys, self._window, False, None

    def open(self, data: bytes) -> OpenOutcome:
        """Open one wire record; never raises, never leaks plaintext.

        The check order is fixed: structure, epoch routing, MAC, counter
        bound, replay window, and only then decryption.  Every rejection
        maps to exactly one slug of the closed taxonomy, and the replay
        window is only advanced by *authenticated* records, so a forger
        cannot burn window state.
        """
        try:
            record = parse_record(data)
        except RecordDamage:
            return self._fail(FAILURE_TRUNCATED, None)
        keys, window, is_previous, failure = self._keys_for_epoch(record.epoch)
        if failure is not None:
            return self._fail(failure, record)
        recv_keys = keys.recv_keys(self.role)
        if record.direction != self._recv_direction or not verify_record(
            recv_keys, record
        ):
            # A reflected own-direction record carries the peer's MAC
            # under the *other* key; it is a forgery from this endpoint's
            # point of view and fails authentication like any other.
            return self._fail(FAILURE_AUTH, record)
        if record.sequence > self.max_sequence:
            return self._fail(FAILURE_EXHAUSTED, record)
        if self.replay_window_enabled and window.seen(record.sequence):
            return self._fail(FAILURE_REPLAY, record)
        plaintext = decrypt_record(recv_keys, record)
        window.mark(record.sequence)
        if is_previous:
            self._grace_opens_left -= 1
            if self._grace_opens_left <= 0:
                self._previous = None
                self._previous_window = None
        if self.ledger is not None:
            self.ledger.record_accept(
                recv_keys.key_id, record.direction, record.sequence
            )
        self.opened += 1
        return OpenOutcome(ok=True, plaintext=plaintext, record=record)

    def rollover(self, new_keys: ChannelKeys, grace_opens: int = 0) -> None:
        """Install the next epoch's keys; optionally drain the old epoch.

        The send counter and replay window reset -- safe precisely
        because the new epoch's keys are unrelated.  With
        ``grace_opens > 0`` the outgoing epoch's *receive* state is
        retained so that many in-flight records may still drain; after
        the allowance (or a zero allowance) old-epoch records fail as
        ``epoch-mismatch``.
        """
        require(
            new_keys.epoch == self.epoch + 1,
            f"rollover must advance the epoch by 1 "
            f"(current {self.epoch}, offered {new_keys.epoch})",
        )
        require(grace_opens >= 0, "grace_opens must be >= 0")
        if grace_opens > 0:
            self._previous = self._keys
            self._previous_window = self._window
            self._grace_opens_left = grace_opens
        else:
            self._previous = None
            self._previous_window = None
            self._grace_opens_left = 0
        self._keys = new_keys
        self._send_sequence = 0
        self._window = ReplayWindow(self._window_size)


class SecureLink:
    """Both endpoints of one simulated secure channel.

    The reproduction holds both parties in one process (exactly as the
    session layer holds Alice and Bob), so a link is a pair of
    :class:`SecureChannel` endpoints over the same derived keys.

    Args:
        keys: One epoch's traffic keys.
        ledger: Optional shared nonce ledger (both endpoints register).
        max_sequence: Per-endpoint counter bound.
        replay_window: Receive-side window width for both endpoints.
        replay_window_enabled: Test hook, passed to both endpoints.
    """

    def __init__(
        self,
        keys: ChannelKeys,
        ledger: Optional[NonceLedger] = None,
        max_sequence: int = DEFAULT_MAX_SEQUENCE,
        replay_window: int = DEFAULT_REPLAY_WINDOW,
        replay_window_enabled: bool = True,
    ):
        self.initiator = SecureChannel(
            keys,
            "initiator",
            max_sequence=max_sequence,
            replay_window=replay_window,
            ledger=ledger,
            replay_window_enabled=replay_window_enabled,
        )
        self.responder = SecureChannel(
            keys,
            "responder",
            max_sequence=max_sequence,
            replay_window=replay_window,
            ledger=ledger,
            replay_window_enabled=replay_window_enabled,
        )

    @classmethod
    def from_result(
        cls,
        result,
        context: Optional[ChannelContext] = None,
        **kwargs,
    ) -> "SecureLink":
        """Build a link from a completed session result.

        Derives the epoch's keys from the result's confirmed final key
        and its session nonce; ``context`` overrides the default context
        (ids, fingerprint, epoch) when the caller binds more state.
        """
        if context is None:
            context = ChannelContext(session_nonce=result.session_nonce)
        keys = derive_channel_keys(master_secret_from_result(result), context)
        return cls(keys, **kwargs)

    def endpoint(self, role: str) -> SecureChannel:
        """The endpoint playing ``role``."""
        require(role in ("initiator", "responder"), f"unknown role {role!r}")
        return self.initiator if role == "initiator" else self.responder

    @property
    def epoch(self) -> int:
        """The link's current epoch (both endpoints agree by construction)."""
        return self.initiator.epoch

    def rollover(self, new_keys: ChannelKeys, grace_opens: int = 0) -> None:
        """Advance both endpoints to the next epoch together."""
        self.initiator.rollover(new_keys, grace_opens=grace_opens)
        self.responder.rollover(new_keys, grace_opens=grace_opens)
