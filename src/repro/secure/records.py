"""The authenticated-encryption record format of the secure channel.

No AES implementation ships with this environment, so the record layer is
built from the primitives the protocol already trusts -- HMAC-SHA256 via
:mod:`repro.reconciliation.mac`:

- **Encryption** is an HMAC-SHA256 keystream in counter mode: block ``i``
  of the keystream is ``HMAC(enc_key, label || epoch || direction ||
  sequence || i)``, XORed over the plaintext.  The ``(epoch, direction,
  sequence)`` triple is the nonce; the channel layer guarantees it is
  never reused under one key, which is exactly the stream-cipher safety
  condition.
- **Authentication** is encrypt-then-MAC: a truncated HMAC-SHA256 tag
  (:func:`repro.reconciliation.mac.compute_mac`) over the full header and
  the ciphertext, under the independent ``mac_key``.  Every header field
  is authenticated, so any single-bit flip anywhere in the record --
  header, nonce fields, ciphertext or tag -- fails as ``auth-failed``.

The wire format (big-endian)::

    version(1) | epoch(4) | direction(1) | sequence(8) | ct_len(4)
    | ciphertext(ct_len) | tag(16)

Open failures form a closed taxonomy (:data:`OPEN_FAILURES`); the channel
layer maps every rejected record onto exactly one slug and never releases
plaintext alongside any of them.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass

from repro.exceptions import ProtocolError
from repro.reconciliation.mac import MAC_BYTES, compute_mac, verify_mac
from repro.secure.kdf import DirectionKeys
from repro.utils.bits import bytes_to_bits
from repro.utils.validation import require

#: Record format version carried in every header.
RECORD_VERSION = 1

#: Direction codes (match the KDF's label order).
DIRECTION_I2R = 0
DIRECTION_R2I = 1
DIRECTIONS = (DIRECTION_I2R, DIRECTION_R2I)

#: Header codec: version, epoch, direction, sequence, ciphertext length.
_HEADER = struct.Struct(">BIBQI")

#: Header bytes preceding the ciphertext.
HEADER_BYTES = _HEADER.size

#: Authentication tag bytes (truncated HMAC-SHA256, same as syndrome MACs).
TAG_BYTES = MAC_BYTES

#: Fixed per-record overhead: header plus tag.
RECORD_OVERHEAD = HEADER_BYTES + TAG_BYTES

#: Versioned domain-separation label of the keystream PRF.
STREAM_LABEL = b"vehicle-key-stream-v1"

#: Keystream block width (SHA-256 digest size).
_BLOCK_BYTES = 32

#: Closed decrypt-failure taxonomy, in reporting order.
FAILURE_AUTH = "auth-failed"
FAILURE_REPLAY = "nonce-replayed"
FAILURE_EXHAUSTED = "nonce-exhausted"
FAILURE_TRUNCATED = "record-truncated"
FAILURE_EPOCH = "epoch-mismatch"
OPEN_FAILURES = (
    FAILURE_AUTH,
    FAILURE_REPLAY,
    FAILURE_EXHAUSTED,
    FAILURE_TRUNCATED,
    FAILURE_EPOCH,
)


class RecordDamage(ProtocolError):
    """A byte string does not parse as a structurally valid record.

    Carried internally between :func:`parse_record` and the channel's
    ``open`` path, where it becomes the ``record-truncated`` failure slug;
    it never escapes :meth:`repro.secure.channel.SecureChannel.open`.
    """


@dataclass(frozen=True)
class SecureRecord:
    """One parsed (not yet verified) record.

    Attributes:
        epoch: Channel epoch the sender sealed under.
        direction: :data:`DIRECTION_I2R` or :data:`DIRECTION_R2I`.
        sequence: The sender's monotonic per-direction counter value.
        ciphertext: Encrypted payload bytes.
        tag: Truncated HMAC-SHA256 over header and ciphertext.
    """

    epoch: int
    direction: int
    sequence: int
    ciphertext: bytes
    tag: bytes

    def header_bytes(self) -> bytes:
        """The authenticated header encoding of this record."""
        return _HEADER.pack(
            RECORD_VERSION,
            self.epoch,
            self.direction,
            self.sequence,
            len(self.ciphertext),
        )

    def encode(self) -> bytes:
        """The full wire encoding: header, ciphertext, tag."""
        return self.header_bytes() + self.ciphertext + self.tag


def parse_record(data: bytes) -> SecureRecord:
    """Parse a wire record; raises :class:`RecordDamage` on any damage.

    Structural damage -- too short for the header, an unknown version, a
    length field disagreeing with the actual byte count (truncated *or*
    trailing garbage), an out-of-range direction -- is all one failure
    class: the bytes are not a record.  Tampering *within* a structurally
    valid record is the MAC's job, not the parser's.
    """
    data = bytes(data)
    if len(data) < RECORD_OVERHEAD:
        raise RecordDamage(
            f"record too short: {len(data)} bytes < {RECORD_OVERHEAD} overhead"
        )
    version, epoch, direction, sequence, ct_len = _HEADER.unpack_from(data)
    if version != RECORD_VERSION:
        raise RecordDamage(f"unknown record version {version}")
    if direction not in DIRECTIONS:
        raise RecordDamage(f"unknown direction code {direction}")
    if len(data) != RECORD_OVERHEAD + ct_len:
        raise RecordDamage(
            f"length mismatch: header promises {ct_len} ciphertext bytes, "
            f"record carries {len(data) - RECORD_OVERHEAD}"
        )
    ciphertext = data[HEADER_BYTES : HEADER_BYTES + ct_len]
    tag = data[HEADER_BYTES + ct_len :]
    return SecureRecord(
        epoch=epoch,
        direction=direction,
        sequence=sequence,
        ciphertext=ciphertext,
        tag=tag,
    )


def _keystream_xor(
    enc_key: bytes, epoch: int, direction: int, sequence: int, data: bytes
) -> bytes:
    """XOR ``data`` with the (epoch, direction, sequence) keystream."""
    if not data:
        return b""
    nonce = (
        STREAM_LABEL
        + epoch.to_bytes(4, "big")
        + bytes([direction])
        + sequence.to_bytes(8, "big")
    )
    blocks = []
    for counter in range(-(-len(data) // _BLOCK_BYTES)):
        blocks.append(
            hmac.new(
                enc_key, nonce + counter.to_bytes(4, "big"), hashlib.sha256
            ).digest()
        )
    stream = b"".join(blocks)[: len(data)]
    return bytes(a ^ b for a, b in zip(data, stream))


def _mac_key_bits(keys: DirectionKeys):
    """The MAC key as the bit array :mod:`repro.reconciliation.mac` takes."""
    return bytes_to_bits(keys.mac_key)


def seal_record(
    keys: DirectionKeys,
    epoch: int,
    direction: int,
    sequence: int,
    plaintext: bytes,
) -> SecureRecord:
    """Encrypt-then-MAC one plaintext into a :class:`SecureRecord`.

    The caller (the channel layer) owns nonce discipline: it must never
    pass the same ``(epoch, direction, sequence)`` twice for one key.
    """
    require(direction in DIRECTIONS, f"unknown direction code {direction}")
    require(sequence >= 0, "sequence must be >= 0")
    require(epoch >= 0, "epoch must be >= 0")
    ciphertext = _keystream_xor(
        keys.enc_key, epoch, direction, sequence, bytes(plaintext)
    )
    header = _HEADER.pack(
        RECORD_VERSION, epoch, direction, sequence, len(ciphertext)
    )
    tag = compute_mac(_mac_key_bits(keys), header + ciphertext)
    return SecureRecord(
        epoch=epoch,
        direction=direction,
        sequence=sequence,
        ciphertext=ciphertext,
        tag=tag,
    )


def verify_record(keys: DirectionKeys, record: SecureRecord) -> bool:
    """Constant-time check of a record's tag under ``keys``."""
    return verify_mac(
        _mac_key_bits(keys),
        record.header_bytes() + record.ciphertext,
        record.tag,
    )


def decrypt_record(keys: DirectionKeys, record: SecureRecord) -> bytes:
    """Decrypt a record's ciphertext.  Only call after :func:`verify_record`."""
    return _keystream_xor(
        keys.enc_key,
        record.epoch,
        record.direction,
        record.sequence,
        record.ciphertext,
    )
