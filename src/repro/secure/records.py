"""The authenticated-encryption record format of the secure channel.

No AES implementation ships with this environment, so the record layer is
built from the primitives the protocol already trusts -- HMAC-SHA256 via
:mod:`repro.reconciliation.mac`:

- **Encryption** is an HMAC-SHA256 keystream in counter mode: block ``i``
  of the keystream is ``HMAC(enc_key, label || epoch || direction ||
  sequence || i)``, XORed over the plaintext.  The ``(epoch, direction,
  sequence)`` triple is the nonce; the channel layer guarantees it is
  never reused under one key, which is exactly the stream-cipher safety
  condition.
- **Authentication** is encrypt-then-MAC: a truncated HMAC-SHA256 tag
  (:func:`repro.reconciliation.mac.compute_mac`) over the full header and
  the ciphertext, under the independent ``mac_key``.  Every header field
  is authenticated, so any single-bit flip anywhere in the record --
  header, nonce fields, ciphertext or tag -- fails as ``auth-failed``.

The wire format (big-endian)::

    version(1) | epoch(4) | direction(1) | sequence(8) | ct_len(4)
    | ciphertext(ct_len) | tag(16)

Open failures form a closed taxonomy (:data:`OPEN_FAILURES`); the channel
layer maps every rejected record onto exactly one slug and never releases
plaintext alongside any of them.

The hot path here is the *optimized* implementation: HMAC midstates are
primed once per :class:`~repro.secure.kdf.DirectionKeys` (see
:meth:`~repro.secure.kdf.DirectionKeys.keystream_states`), all of a
record's counter blocks are generated in one pass, and the XOR runs over
machine words (``int.from_bytes`` for short records, NumPy for long
ones) instead of a per-byte generator.  Every byte on the wire is
identical to the frozen :mod:`repro.secure.reference` implementation;
the equivalence and known-answer tests pin that.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ProtocolError
from repro.reconciliation.mac import MAC_BYTES
from repro.secure.kdf import DirectionKeys
from repro.utils.validation import require

#: Record format version carried in every header.
RECORD_VERSION = 1

#: Direction codes (match the KDF's label order).
DIRECTION_I2R = 0
DIRECTION_R2I = 1
DIRECTIONS = (DIRECTION_I2R, DIRECTION_R2I)

#: Header codec: version, epoch, direction, sequence, ciphertext length.
_HEADER = struct.Struct(">BIBQI")

#: Header bytes preceding the ciphertext.
HEADER_BYTES = _HEADER.size

#: Authentication tag bytes (truncated HMAC-SHA256, same as syndrome MACs).
TAG_BYTES = MAC_BYTES

#: Fixed per-record overhead: header plus tag.
RECORD_OVERHEAD = HEADER_BYTES + TAG_BYTES

#: Versioned domain-separation label of the keystream PRF.
STREAM_LABEL = b"vehicle-key-stream-v1"

#: Keystream block width (SHA-256 digest size).
_BLOCK_BYTES = 32

#: Closed decrypt-failure taxonomy, in reporting order.
FAILURE_AUTH = "auth-failed"
FAILURE_REPLAY = "nonce-replayed"
FAILURE_EXHAUSTED = "nonce-exhausted"
FAILURE_TRUNCATED = "record-truncated"
FAILURE_EPOCH = "epoch-mismatch"
OPEN_FAILURES = (
    FAILURE_AUTH,
    FAILURE_REPLAY,
    FAILURE_EXHAUSTED,
    FAILURE_TRUNCATED,
    FAILURE_EPOCH,
)


class RecordDamage(ProtocolError):
    """A byte string does not parse as a structurally valid record.

    Carried internally between :func:`parse_record` and the channel's
    ``open`` path, where it becomes the ``record-truncated`` failure slug;
    it never escapes :meth:`repro.secure.channel.SecureChannel.open`.
    """


@dataclass(frozen=True)
class SecureRecord:
    """One parsed (not yet verified) record.

    Attributes:
        epoch: Channel epoch the sender sealed under.
        direction: :data:`DIRECTION_I2R` or :data:`DIRECTION_R2I`.
        sequence: The sender's monotonic per-direction counter value.
        ciphertext: Encrypted payload bytes.
        tag: Truncated HMAC-SHA256 over header and ciphertext.
    """

    epoch: int
    direction: int
    sequence: int
    ciphertext: bytes
    tag: bytes

    def header_bytes(self) -> bytes:
        """The authenticated header encoding of this record."""
        return _HEADER.pack(
            RECORD_VERSION,
            self.epoch,
            self.direction,
            self.sequence,
            len(self.ciphertext),
        )

    def encode(self) -> bytes:
        """The full wire encoding: header, ciphertext, tag."""
        return self.header_bytes() + self.ciphertext + self.tag


def parse_record(data: bytes) -> SecureRecord:
    """Parse a wire record; raises :class:`RecordDamage` on any damage.

    Structural damage -- too short for the header, an unknown version, a
    length field disagreeing with the actual byte count (truncated *or*
    trailing garbage), an out-of-range direction -- is all one failure
    class: the bytes are not a record.  Tampering *within* a structurally
    valid record is the MAC's job, not the parser's.
    """
    data = bytes(data)
    if len(data) < RECORD_OVERHEAD:
        raise RecordDamage(
            f"record too short: {len(data)} bytes < {RECORD_OVERHEAD} overhead"
        )
    version, epoch, direction, sequence, ct_len = _HEADER.unpack_from(data)
    if version != RECORD_VERSION:
        raise RecordDamage(f"unknown record version {version}")
    if direction not in DIRECTIONS:
        raise RecordDamage(f"unknown direction code {direction}")
    if len(data) != RECORD_OVERHEAD + ct_len:
        raise RecordDamage(
            f"length mismatch: header promises {ct_len} ciphertext bytes, "
            f"record carries {len(data) - RECORD_OVERHEAD}"
        )
    ciphertext = data[HEADER_BYTES : HEADER_BYTES + ct_len]
    tag = data[HEADER_BYTES + ct_len :]
    return SecureRecord(
        epoch=epoch,
        direction=direction,
        sequence=sequence,
        ciphertext=ciphertext,
        tag=tag,
    )


#: Nonce-tail codec: epoch, direction, sequence (the keystream PRF input
#: after the label; byte-identical to the reference's manual packing).
_NONCE_TAIL = struct.Struct(">IBQ")

#: Pre-encoded 4-byte big-endian counters, grown on demand.
_COUNTERS = [counter.to_bytes(4, "big") for counter in range(64)]

#: Below this many bytes the int-XOR beats NumPy's per-call overhead.
_NUMPY_XOR_MIN = 256


def _grow_counters(n_blocks: int) -> None:
    while len(_COUNTERS) < n_blocks:
        _COUNTERS.append(len(_COUNTERS).to_bytes(4, "big"))


def keystream_bytes(
    keys: DirectionKeys, epoch: int, direction: int, sequence: int, length: int
) -> bytes:
    """The first ``length`` keystream bytes of one record's nonce.

    Block ``i`` is ``HMAC(enc_key, label || epoch || direction ||
    sequence || i)``, exactly as the reference computes it -- but from
    the key's primed midstates: the label-and-nonce prefix is absorbed
    once, then each block costs two ``copy()``-and-finalize digests
    instead of a full ``hmac.new``.
    """
    if length <= 0:
        return b""
    inner, outer = keys.keystream_states()
    prefix = inner.copy()
    prefix.update(STREAM_LABEL + _NONCE_TAIL.pack(epoch, direction, sequence))
    n_blocks = -(-length // _BLOCK_BYTES)
    if n_blocks > len(_COUNTERS):
        _grow_counters(n_blocks)
    copy_prefix = prefix.copy
    copy_outer = outer.copy
    blocks = []
    append = blocks.append
    for counter in _COUNTERS[:n_blocks]:
        block = copy_prefix()
        block.update(counter)
        closing = copy_outer()
        closing.update(block.digest())
        append(closing.digest())
    stream = b"".join(blocks)
    return stream if len(stream) == length else stream[:length]


def xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length byte strings over machine words."""
    length = len(data)
    if length == 0:
        return b""
    if length >= _NUMPY_XOR_MIN:
        return np.bitwise_xor(
            np.frombuffer(data, dtype=np.uint8),
            np.frombuffer(stream, dtype=np.uint8),
        ).tobytes()
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(length, "big")


def seal_record(
    keys: DirectionKeys,
    epoch: int,
    direction: int,
    sequence: int,
    plaintext: bytes,
    keystream: Optional[bytes] = None,
) -> SecureRecord:
    """Encrypt-then-MAC one plaintext into a :class:`SecureRecord`.

    The caller (the channel layer) owns nonce discipline: it must never
    pass the same ``(epoch, direction, sequence)`` twice for one key.
    ``keystream`` lets that caller pass the record's keystream in when
    it already computed it (it must be exactly
    :func:`keystream_bytes` for the same nonce and length).
    """
    require(direction in DIRECTIONS, f"unknown direction code {direction}")
    require(sequence >= 0, "sequence must be >= 0")
    require(epoch >= 0, "epoch must be >= 0")
    plaintext = bytes(plaintext)
    if keystream is None:
        keystream = keystream_bytes(
            keys, epoch, direction, sequence, len(plaintext)
        )
    ciphertext = xor_bytes(plaintext, keystream)
    header = _HEADER.pack(
        RECORD_VERSION, epoch, direction, sequence, len(ciphertext)
    )
    tag = keys.mac().tag(header + ciphertext)
    return SecureRecord(
        epoch=epoch,
        direction=direction,
        sequence=sequence,
        ciphertext=ciphertext,
        tag=tag,
    )


def verify_record(keys: DirectionKeys, record: SecureRecord) -> bool:
    """Constant-time check of a record's tag under ``keys``."""
    return keys.mac().verify(
        record.header_bytes() + record.ciphertext, record.tag
    )


def decrypt_record(
    keys: DirectionKeys,
    record: SecureRecord,
    keystream: Optional[bytes] = None,
) -> bytes:
    """Decrypt a record's ciphertext.  Only call after :func:`verify_record`."""
    if keystream is None:
        keystream = keystream_bytes(
            keys,
            record.epoch,
            record.direction,
            record.sequence,
            len(record.ciphertext),
        )
    return xor_bytes(record.ciphertext, keystream)
