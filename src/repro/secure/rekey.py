"""Key lifecycle management: epochs, rekey triggers, structured closure.

A traffic key is a consumable.  :class:`RekeyPolicy` declares when one
epoch's keys are spent -- the send counter approaching exhaustion, a
bounded budget of decrypt failures (a tampering adversary or a desynced
peer), or plain age -- and :class:`ManagedSecureLink` executes the
lifecycle: each trigger runs a fresh
:meth:`~repro.core.pipeline.VehicleKeyPipeline.establish_key` under the
same fault plan, retry/backoff policy and adversary the channel lives
with, derives the next epoch's keys with the epoch counter bumped in the
KDF context, and rolls both endpoints over with a bounded grace allowance
so in-flight old-epoch records drain.

The failure contract mirrors the rest of the library: a rekey that cannot
complete (establishment failed under faults, or the rekey budget is
spent) degrades to a **structured channel-closed outcome** -- a
:class:`ChannelCloseReport` with a slug from :data:`CLOSE_REASONS` --
never a silent key mismatch and never an exception out of the data path.
Time is a logical clock (:meth:`ManagedSecureLink.tick`) so age-triggered
rekeys are deterministic under test and chaos seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.secure.channel import (
    NonceExhaustedError,
    OpenOutcome,
    SecureLink,
)
from repro.secure.kdf import (
    ChannelContext,
    derive_channel_keys,
    master_secret_from_result,
)
from repro.secure.ledger import NonceLedger
from repro.utils.validation import require

#: Rekey trigger slugs, in reporting order.
TRIGGER_EXHAUSTION = "counter-exhaustion"
TRIGGER_DECRYPT_BUDGET = "decrypt-budget"
TRIGGER_AGE = "epoch-age"
REKEY_TRIGGERS = (TRIGGER_EXHAUSTION, TRIGGER_DECRYPT_BUDGET, TRIGGER_AGE)

#: Closed taxonomy of structured channel closures.
CLOSE_REKEY_FAILED = "rekey-establish-failed"
CLOSE_REKEY_BUDGET = "rekey-attempts-exhausted"
CLOSE_BY_PEER = "closed-by-peer"
CLOSE_REASONS = (CLOSE_REKEY_FAILED, CLOSE_REKEY_BUDGET, CLOSE_BY_PEER)


@dataclass(frozen=True)
class RekeyPolicy:
    """When one epoch's keys are spent and how hard to try replacing them.

    Attributes:
        max_records_per_epoch: Seal-side trigger: an endpoint that has
            sealed this many records under one epoch rekeys before
            sealing the next (strictly before the channel's hard
            ``max_sequence`` bound, so honest traffic never hits
            :class:`~repro.secure.channel.NonceExhaustedError`).
        decrypt_failure_budget: Failed opens tolerated per epoch before a
            rekey is forced (a tampering adversary burns the budget, not
            the plaintext).
        max_epoch_age_s: Age trigger on the logical clock; ``None``
            disables it.
        grace_opens: In-flight old-epoch records each endpoint may still
            accept after a rollover before the old epoch is rejected as
            ``epoch-mismatch``.
        max_rekey_attempts: Probing attempts (``max_attempts``) granted
            to each rekey's ``establish_key`` run.
        max_rekeys: Completed rekeys allowed over the link's lifetime;
            the next trigger past the bound closes the channel with
            ``rekey-attempts-exhausted``.  ``None`` is unbounded.
    """

    max_records_per_epoch: int = 4096
    decrypt_failure_budget: int = 8
    max_epoch_age_s: Optional[float] = None
    grace_opens: int = 4
    max_rekey_attempts: int = 2
    max_rekeys: Optional[int] = None

    def __post_init__(self) -> None:
        require(self.max_records_per_epoch > 0, "max_records_per_epoch must be > 0")
        require(self.decrypt_failure_budget > 0, "decrypt_failure_budget must be > 0")
        require(self.grace_opens >= 0, "grace_opens must be >= 0")
        require(self.max_rekey_attempts >= 1, "max_rekey_attempts must be >= 1")
        if self.max_epoch_age_s is not None:
            require(self.max_epoch_age_s > 0, "max_epoch_age_s must be > 0")
        if self.max_rekeys is not None:
            require(self.max_rekeys >= 0, "max_rekeys must be >= 0")


@dataclass(frozen=True)
class RekeyEvent:
    """One completed rekey.

    Attributes:
        epoch: The epoch the link rolled *into*.
        trigger: Which :data:`REKEY_TRIGGERS` slug forced it.
        attempts: Probing attempts the establishment consumed.
        clock_s: Logical-clock time of the rollover.
    """

    epoch: int
    trigger: str
    attempts: int
    clock_s: float


@dataclass(frozen=True)
class ChannelCloseReport:
    """Why a managed link closed (the structured, never-silent outcome).

    Attributes:
        reason: One of :data:`CLOSE_REASONS`.
        trigger: The rekey trigger that led here, when one did.
        epoch: The epoch the link was in when it closed.
        detail: Human-readable context (e.g. the establishment
            ``failure_reason`` of the failed rekey).
    """

    reason: str
    trigger: Optional[str]
    epoch: int
    detail: str = ""


class ManagedSecureLink:
    """A :class:`~repro.secure.channel.SecureLink` with a key lifecycle.

    Args:
        pipeline: The trained pipeline rekeys establish through.
        result: The completed (confirmed) session result the first
            epoch's keys derive from.
        episode: Episode label of that establishment; rekey episodes are
            labelled ``{episode}-rekey-{epoch}``.
        policy: The :class:`RekeyPolicy`.
        context: Epoch-0 KDF context; defaults to the result's session
            nonce with the pipeline's fingerprint bound in.  Rekeys keep
            the channel identity (nonce, ids, fingerprint) and bump only
            the epoch counter -- the fresh master secret of each rekey
            establishment does the cryptographic separation, the counter
            keeps old-epoch records rejectable.
        ledger: Optional global nonce ledger threaded through every epoch.
        fault_plan: Link faults rekey establishments run under.
        retry_policy: ARQ retry/backoff policy for rekey establishments
            (the PR-1 machinery; ``None`` is the reliable transport).
        adversary_plan: Active adversary attacking rekey establishments.
        n_rounds: Probing rounds per rekey establishment.
        max_sequence: Hard per-endpoint counter bound.
        replay_window: Receive-side replay window width.
        replay_window_enabled: Test hook, passed through to the channels.
    """

    def __init__(
        self,
        pipeline,
        result,
        episode: str,
        policy: Optional[RekeyPolicy] = None,
        context: Optional[ChannelContext] = None,
        ledger: Optional[NonceLedger] = None,
        fault_plan=None,
        retry_policy=None,
        adversary_plan=None,
        n_rounds: Optional[int] = None,
        max_sequence: int = 2**20,
        replay_window: int = 64,
        replay_window_enabled: bool = True,
    ):
        self.pipeline = pipeline
        self.episode = episode
        self.policy = policy if policy is not None else RekeyPolicy()
        require(
            self.policy.max_records_per_epoch <= max_sequence,
            "max_records_per_epoch must not exceed the channel max_sequence",
        )
        if context is None:
            context = ChannelContext(
                session_nonce=result.session_nonce,
                pipeline_fingerprint=pipeline.fingerprint(),
            )
        self.context = context
        self.ledger = ledger
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.adversary_plan = adversary_plan
        self.n_rounds = n_rounds
        self.link = SecureLink(
            derive_channel_keys(master_secret_from_result(result), context),
            ledger=ledger,
            max_sequence=max_sequence,
            replay_window=replay_window,
            replay_window_enabled=replay_window_enabled,
        )
        self.close_report: Optional[ChannelCloseReport] = None
        #: Completed rekeys, in order.
        self.rekey_events: List[RekeyEvent] = []
        self._clock_s = 0.0
        self._epoch_started_s = 0.0
        self._epoch_decrypt_failures = 0

    # -- state -----------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the link has been closed (see :attr:`close_report`)."""
        return self.close_report is not None

    @property
    def epoch(self) -> int:
        """The link's current epoch."""
        return self.link.epoch

    @property
    def rekeys_completed(self) -> int:
        """Rekeys that completed over the link's lifetime."""
        return len(self.rekey_events)

    def tick(self, dt_s: float) -> None:
        """Advance the logical clock (drives the age trigger)."""
        require(dt_s >= 0.0, "dt_s must be >= 0")
        self._clock_s += dt_s

    def close(self, reason: str = CLOSE_BY_PEER, trigger: Optional[str] = None,
              detail: str = "") -> ChannelCloseReport:
        """Close the link with a structured report (idempotent)."""
        require(reason in CLOSE_REASONS, f"unknown close reason {reason!r}")
        if self.close_report is None:
            self.close_report = ChannelCloseReport(
                reason=reason, trigger=trigger, epoch=self.epoch, detail=detail
            )
        return self.close_report

    # -- rekeying --------------------------------------------------------------
    def _rekey(self, trigger: str) -> bool:
        """Run one rekey; on failure the link closes structurally."""
        if (
            self.policy.max_rekeys is not None
            and self.rekeys_completed >= self.policy.max_rekeys
        ):
            self.close(
                CLOSE_REKEY_BUDGET,
                trigger,
                f"rekey budget of {self.policy.max_rekeys} already spent",
            )
            return False
        next_epoch = self.epoch + 1
        outcome = self.pipeline.establish_key(
            episode=f"{self.episode}-rekey-{next_epoch}",
            n_rounds=self.n_rounds,
            fault_plan=self.fault_plan,
            retry_policy=self.retry_policy,
            adversary_plan=self.adversary_plan,
            max_attempts=self.policy.max_rekey_attempts,
        )
        if not outcome.success:
            self.close(
                CLOSE_REKEY_FAILED,
                trigger,
                f"rekey establishment failed: {outcome.failure_reason}",
            )
            return False
        self.context = self.context.next_epoch()
        new_keys = derive_channel_keys(
            master_secret_from_result(outcome.session), self.context
        )
        self.link.rollover(new_keys, grace_opens=self.policy.grace_opens)
        self._epoch_started_s = self._clock_s
        self._epoch_decrypt_failures = 0
        self.rekey_events.append(
            RekeyEvent(
                epoch=next_epoch,
                trigger=trigger,
                attempts=outcome.attempts,
                clock_s=self._clock_s,
            )
        )
        return True

    def _due_trigger(self, role: str) -> Optional[str]:
        """The rekey trigger due before ``role`` seals, if any."""
        endpoint = self.link.endpoint(role)
        if endpoint.send_sequence >= self.policy.max_records_per_epoch:
            return TRIGGER_EXHAUSTION
        if (
            self.policy.max_epoch_age_s is not None
            and self._clock_s - self._epoch_started_s >= self.policy.max_epoch_age_s
        ):
            return TRIGGER_AGE
        return None

    # -- data path -------------------------------------------------------------
    def seal(self, role: str, plaintext: bytes) -> Optional[bytes]:
        """Seal one payload as ``role``; rekeys first when an epoch is spent.

        Returns the wire bytes, or ``None`` when the link is (or just
        became) closed -- in which case :attr:`close_report` says why.
        Never raises on the data path: even the hard counter bound is
        converted into a rekey attempt and, failing that, a structured
        closure.
        """
        if self.closed:
            return None
        trigger = self._due_trigger(role)
        if trigger is not None and not self._rekey(trigger):
            return None
        try:
            return self.link.endpoint(role).seal(plaintext)
        except NonceExhaustedError:
            # The policy should rekey strictly before the hard bound;
            # reaching it still converts into a rekey, never a raise.
            if not self._rekey(TRIGGER_EXHAUSTION):
                return None
            return self.link.endpoint(role).seal(plaintext)

    def seal_records(self, role: str, payloads: Sequence[bytes]) -> List[bytes]:
        """Seal a burst as ``role``; rekeys at every trigger boundary.

        Chunks the burst at the policy's per-epoch capacity, so the wire
        records and lifecycle events are exactly those of sealing the
        payloads one :meth:`seal` call at a time (the logical clock only
        advances through :meth:`tick`, so no age trigger can fire inside
        a chunk that a sequential caller would have seen).  Returns the
        records sealed before the link closed, if it did --
        :attr:`close_report` then says why; a still-open link returns
        one record per payload.
        """
        wires: List[bytes] = []
        index = 0
        while index < len(payloads):
            if self.closed:
                break
            trigger = self._due_trigger(role)
            if trigger is not None:
                if not self._rekey(trigger):
                    break
                continue
            endpoint = self.link.endpoint(role)
            capacity = min(
                self.policy.max_records_per_epoch - endpoint.send_sequence,
                endpoint.sequence_remaining,
            )
            if capacity <= 0:
                # The policy trigger fires on the next loop turn.
                continue
            chunk = payloads[index : index + capacity]
            wires.extend(endpoint.seal_records(chunk))
            index += len(chunk)
        return wires

    def deliver(self, role: str, data: bytes) -> Optional[OpenOutcome]:
        """Open one wire record at ``role``'s endpoint.

        Returns the structured :class:`~repro.secure.channel.OpenOutcome`
        (``plaintext`` only on success), or ``None`` when the link is
        closed.  Each failed open burns the epoch's decrypt-failure
        budget; exceeding it forces a rekey, and a failed rekey closes
        the link structurally.
        """
        if self.closed:
            return None
        outcome = self.link.endpoint(role).open(data)
        if not outcome.ok:
            self._epoch_decrypt_failures += 1
            if self._epoch_decrypt_failures >= self.policy.decrypt_failure_budget:
                self._rekey(TRIGGER_DECRYPT_BUDGET)
        return outcome

    def deliver_records(
        self, role: str, blobs: Sequence[bytes]
    ) -> List[OpenOutcome]:
        """Open a burst at ``role``'s endpoint, in order.

        Uses the channel's batched open with the remaining decrypt
        budget as the stop cap, so the outcomes and any forced rekey
        land exactly where a sequential :meth:`deliver` loop would put
        them.  Returns the outcomes of the blobs processed before the
        link closed (if it did); a blob delivered after a mid-burst
        rekey is opened under the new epoch, as in the sequential case.
        """
        outcomes: List[OpenOutcome] = []
        index = 0
        while index < len(blobs):
            if self.closed:
                break
            remaining_budget = (
                self.policy.decrypt_failure_budget - self._epoch_decrypt_failures
            )
            chunk = self.link.endpoint(role).open_records(
                blobs[index:], max_failures=remaining_budget
            )
            outcomes.extend(chunk)
            index += len(chunk)
            failures = sum(1 for outcome in chunk if not outcome.ok)
            if failures:
                self._epoch_decrypt_failures += failures
                if (
                    self._epoch_decrypt_failures
                    >= self.policy.decrypt_failure_budget
                ):
                    self._rekey(TRIGGER_DECRYPT_BUDGET)
        return outcomes
