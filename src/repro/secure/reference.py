"""Reference secure-record implementation (frozen).

This module is the record layer exactly as it shipped before the
data-plane rewrite: per-block ``hmac.new`` keystream, generator-XOR, and
the bytes->bits->bytes MAC-key round trip.  It is kept verbatim so the
optimized :mod:`repro.secure.records` has a fixed behavioural target --
the equivalence tests assert byte-identical wire records and identical
verify/decrypt results between the two, and the benchmarks report honest
speedups against this path.  Do not optimize this module; its value is
that it never changes.

The wire format both implementations share (big-endian)::

    version(1) | epoch(4) | direction(1) | sequence(8) | ct_len(4)
    | ciphertext(ct_len) | tag(16)
"""

from __future__ import annotations

import hashlib
import hmac
import struct

from repro.reconciliation.mac import compute_mac, verify_mac
from repro.secure.kdf import DirectionKeys
from repro.secure.records import (
    DIRECTIONS,
    RECORD_VERSION,
    STREAM_LABEL,
    SecureRecord,
)
from repro.utils.bits import bytes_to_bits
from repro.utils.validation import require

#: Header codec, frozen alongside the implementation.
_HEADER = struct.Struct(">BIBQI")

#: Keystream block width (SHA-256 digest size).
_BLOCK_BYTES = 32


def _keystream_xor(
    enc_key: bytes, epoch: int, direction: int, sequence: int, data: bytes
) -> bytes:
    """XOR ``data`` with the (epoch, direction, sequence) keystream."""
    if not data:
        return b""
    nonce = (
        STREAM_LABEL
        + epoch.to_bytes(4, "big")
        + bytes([direction])
        + sequence.to_bytes(8, "big")
    )
    blocks = []
    for counter in range(-(-len(data) // _BLOCK_BYTES)):
        blocks.append(
            hmac.new(
                enc_key, nonce + counter.to_bytes(4, "big"), hashlib.sha256
            ).digest()
        )
    stream = b"".join(blocks)[: len(data)]
    return bytes(a ^ b for a, b in zip(data, stream))


def _mac_key_bits(keys: DirectionKeys):
    """The MAC key as the bit array :mod:`repro.reconciliation.mac` takes."""
    return bytes_to_bits(keys.mac_key)


def seal_record(
    keys: DirectionKeys,
    epoch: int,
    direction: int,
    sequence: int,
    plaintext: bytes,
) -> SecureRecord:
    """Encrypt-then-MAC one plaintext into a :class:`SecureRecord`.

    The caller (the channel layer) owns nonce discipline: it must never
    pass the same ``(epoch, direction, sequence)`` twice for one key.
    """
    require(direction in DIRECTIONS, f"unknown direction code {direction}")
    require(sequence >= 0, "sequence must be >= 0")
    require(epoch >= 0, "epoch must be >= 0")
    ciphertext = _keystream_xor(
        keys.enc_key, epoch, direction, sequence, bytes(plaintext)
    )
    header = _HEADER.pack(
        RECORD_VERSION, epoch, direction, sequence, len(ciphertext)
    )
    tag = compute_mac(_mac_key_bits(keys), header + ciphertext)
    return SecureRecord(
        epoch=epoch,
        direction=direction,
        sequence=sequence,
        ciphertext=ciphertext,
        tag=tag,
    )


def verify_record(keys: DirectionKeys, record: SecureRecord) -> bool:
    """Constant-time check of a record's tag under ``keys``."""
    return verify_mac(
        _mac_key_bits(keys),
        record.header_bytes() + record.ciphertext,
        record.tag,
    )


def decrypt_record(keys: DirectionKeys, record: SecureRecord) -> bytes:
    """Decrypt a record's ciphertext.  Only call after :func:`verify_record`."""
    return _keystream_xor(
        keys.enc_key,
        record.epoch,
        record.direction,
        record.sequence,
        record.ciphertext,
    )
