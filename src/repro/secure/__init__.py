"""Secure channel built on the established key (KDF, AEAD records, rekey).

The rest of the library *establishes* keys; this package makes them do
something.  :mod:`repro.secure.kdf` derives domain-separated, per-direction
traffic keys from a :class:`~repro.core.session.SessionResult`'s reconciled
bits with full context binding (session nonce, device ids, pipeline
fingerprint, epoch counter).  :mod:`repro.secure.records` defines the
encrypt-then-MAC record format over the existing
:mod:`repro.reconciliation.mac` primitives, and
:mod:`repro.secure.channel` enforces nonce discipline on it: monotonic
per-direction sequence counters, a sliding replay window, and a closed
decrypt-failure taxonomy with the hard guarantee that no failure path
releases plaintext.  :mod:`repro.secure.ledger` records every sealed and
accepted nonce so the chaos harness can prove nonce-reuse never happens,
and :mod:`repro.secure.rekey` runs the key lifecycle -- counter
exhaustion, decrypt-failure budgets and age trigger a fresh
``establish_key`` epoch through the PR-1 retry/backoff machinery, and a
failed rekey degrades to a structured channel-closed outcome, never a
silent mismatch.
"""

from repro.secure.channel import (
    NonceExhaustedError,
    OpenOutcome,
    RecordMemo,
    ReplayWindow,
    SecureChannel,
    SecureLink,
)
from repro.secure.kdf import (
    ChannelContext,
    ChannelKeys,
    DirectionKeys,
    derive_channel_keys,
    master_secret_from_result,
)
from repro.secure.ledger import NonceLedger, NonceReuse
from repro.secure.records import (
    FAILURE_AUTH,
    FAILURE_EPOCH,
    FAILURE_EXHAUSTED,
    FAILURE_REPLAY,
    FAILURE_TRUNCATED,
    OPEN_FAILURES,
    SecureRecord,
)
from repro.secure.rekey import (
    CLOSE_REASONS,
    ChannelCloseReport,
    ManagedSecureLink,
    RekeyPolicy,
)

__all__ = [
    "ChannelContext",
    "ChannelKeys",
    "DirectionKeys",
    "derive_channel_keys",
    "master_secret_from_result",
    "SecureRecord",
    "OPEN_FAILURES",
    "FAILURE_AUTH",
    "FAILURE_REPLAY",
    "FAILURE_EXHAUSTED",
    "FAILURE_TRUNCATED",
    "FAILURE_EPOCH",
    "SecureChannel",
    "SecureLink",
    "RecordMemo",
    "ReplayWindow",
    "OpenOutcome",
    "NonceExhaustedError",
    "NonceLedger",
    "NonceReuse",
    "RekeyPolicy",
    "ManagedSecureLink",
    "ChannelCloseReport",
    "CLOSE_REASONS",
]
