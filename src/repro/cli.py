"""Command-line interface.

Usage::

    python -m repro establish --scenario v2v-urban --seed 7
    python -m repro attack --attacker imitator --scenario v2v-rural
    python -m repro validate-channel
    python -m repro experiments fig12-13 --full
    python -m repro robustness --seed 3
    python -m repro chaos --sessions 200 --seed 0
    python -m repro chaos --server --sessions 200 --seed 0
    python -m repro chaos --restart --sessions 200 --seed 0
    python -m repro serve --port 7316 --load-dir artifacts/ --journal-dir wal/

``python -m repro experiments ...`` forwards to
:mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import argparse
import sys

from repro.channel.scenario import ScenarioName


def _scenario(value: str) -> ScenarioName:
    try:
        return ScenarioName(value)
    except ValueError:
        choices = ", ".join(s.value for s in ScenarioName)
        raise argparse.ArgumentTypeError(f"unknown scenario {value!r}; choose from {choices}")


def _cmd_establish(args) -> int:
    from repro.core.pipeline import VehicleKeyPipeline

    pipeline = VehicleKeyPipeline.for_scenario(args.scenario, seed=args.seed)
    if args.load_dir:
        print(f"loading trained components from {args.load_dir} ...")
        pipeline.load(args.load_dir)
    else:
        print(f"training Vehicle-Key for {args.scenario.value} (seed {args.seed}) ...")
        if args.resume and args.checkpoint_dir:
            print(f"resuming from checkpoint in {args.checkpoint_dir} (if present)")
        pipeline.train(
            n_episodes=args.episodes,
            epochs=args.epochs,
            reconciler_epochs=args.epochs // 3,
            checkpoint_dir=args.checkpoint_dir,
            resume=args.resume,
        )
        if args.save_dir:
            pipeline.save(args.save_dir)
            print(f"saved trained components to {args.save_dir}")
    if args.sessions > 1:
        return _establish_batch(pipeline, args.sessions, shards=args.shards)
    outcome = pipeline.establish_key(episode="cli")
    session = outcome.session
    print(f"raw agreement        : {outcome.raw_agreement_rate:.2%}")
    print(f"reconciled agreement : {outcome.agreement_rate:.2%}")
    print(f"verified blocks      : {len(session.verified_blocks)}/{session.n_blocks}")
    print(f"key generation rate  : {outcome.key_generation_rate_bps:.3f} bit/s")
    if outcome.degraded_mode:
        print(
            f"degraded mode        : {outcome.degraded_mode} "
            f"({outcome.ood_windows} OOD windows)"
        )
    if outcome.success:
        print(f"final 128-bit key    : {outcome.final_key.hex()}")
        return 0
    print("final key            : (not enough verified bits this session)")
    return 1


def _establish_batch(pipeline, n_sessions: int, shards: int = 1) -> int:
    """Run ``n_sessions`` concurrent establishments through the batched engine."""
    from repro.core.batch import BatchedSessionRunner

    report = BatchedSessionRunner(
        pipeline, episode_prefix="cli", shards=shards
    ).run(n_sessions)
    for index, outcome in enumerate(report.outcomes):
        status = "ok" if outcome.success else f"failed ({outcome.failure_reason})"
        key = outcome.final_key.hex() if outcome.success else "-"
        print(
            f"session {index:3d} : {status:32s} "
            f"raw {outcome.raw_agreement_rate:6.2%}  "
            f"kgr {outcome.key_generation_rate_bps:7.3f} bit/s  key {key}"
        )
    print(f"sessions             : {report.n_successful}/{report.n_sessions} successful")
    print(f"shards               : {report.shards}")
    print(f"batch wall time      : {report.elapsed_s:.2f} s")
    print(f"throughput           : {report.sessions_per_sec:.2f} sessions/s")
    return 0 if report.n_successful == report.n_sessions else 1


def _cmd_attack(args) -> int:
    from repro.core.pipeline import VehicleKeyPipeline
    from repro.security.attacks import run_attack

    pipeline = VehicleKeyPipeline.for_scenario(args.scenario, seed=args.seed)
    print(f"training Vehicle-Key for {args.scenario.value} ...")
    pipeline.train(
        n_episodes=args.episodes, epochs=args.epochs, reconciler_epochs=args.epochs // 3
    )
    report = run_attack(pipeline, args.attacker, n_traces=2)
    print(f"attacker              : {report.attacker}")
    print(f"legitimate agreement  : {report.legitimate_agreement:.2%}")
    print(f"attacker agreement    : {report.eve_agreement:.2%}")
    print(f"attacker raw agreement: {report.eve_raw_agreement:.2%}")
    print(f"feature correlation   : {report.eve_feature_correlation:.3f}")
    return 0


def _cmd_validate_channel(args) -> int:
    from repro.channel.validation import validate_all

    reports = validate_all(seed=args.seed)
    failures = 0
    for report in reports.values():
        print(report)
        failures += not report.passed
    return 1 if failures else 0


def _cmd_experiments(args) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = list(args.experiment_args)
    if args.full:
        forwarded.append("--full")
    if args.jobs != 1:
        forwarded.extend(["--jobs", str(args.jobs)])
    if args.cache_dir:
        forwarded.extend(["--cache-dir", args.cache_dir])
    return runner_main(forwarded)


def _cmd_robustness(args) -> int:
    from repro.experiments.runner import main as runner_main

    forwarded = ["robustness", "--seed", str(args.seed)]
    if args.full:
        forwarded.append("--full")
    return runner_main(forwarded)


def _cmd_chaos(args) -> int:
    """Run the chaos invariant harness; exit non-zero on any violation."""
    from repro.faults.chaos import (
        INVARIANTS,
        PAYLOAD_INVARIANTS,
        build_chaos_pipeline,
        run_chaos,
    )

    print(f"training chaos pipeline for {args.scenario.value} ...")
    pipeline = build_chaos_pipeline(scenario=args.scenario)
    if args.restart:
        return _chaos_restart(pipeline, args)
    if args.server:
        return _chaos_server(pipeline, args)
    print(
        f"sweeping {args.sessions} random fault x attack combinations "
        f"(seed {args.seed}) ..."
    )
    report = run_chaos(
        pipeline,
        args.sessions,
        seed=args.seed,
        n_rounds=args.rounds,
        max_attempts=args.max_attempts,
        data_phase=not args.no_data_phase,
    )
    print(f"sessions             : {report.n_sessions}")
    print(f"  with faults        : {report.faulted_sessions}")
    print(f"  with attacks       : {report.attacked_sessions}")
    print(f"successful keys      : {report.successes}")
    print(f"degraded sessions    : {report.degraded_sessions}")
    print(f"structured aborts    : {report.aborts}  {report.abort_reasons}")
    print(f"failure reasons      : {report.failure_reasons}")
    print(f"secured sessions     : {report.secured_sessions}")
    print(f"records delivered    : {report.records_delivered}")
    print(f"payload failures     : {report.payload_failures}")
    print(
        f"rekeys / closes      : {report.rekeys_completed} rekeys, "
        f"{report.channels_closed} closed {report.close_reasons}"
    )
    counts = report.violation_counts()
    for invariant in INVARIANTS + PAYLOAD_INVARIANTS:
        print(f"invariant {invariant:32s}: {counts[invariant]} violation(s)")
    for violation in report.violations:
        print(
            f"VIOLATION [{violation.invariant}] session {violation.session} "
            f"(seed {violation.seed}): {violation.detail}"
        )
    if report.ok:
        print("all invariants held")
        return 0
    print(f"{len(report.violations)} invariant violation(s)")
    return 1


def _chaos_server(pipeline, args) -> int:
    """Run the server-path chaos sweep; exit non-zero on any violation."""
    from repro.faults.chaos import (
        INVARIANTS,
        PAYLOAD_INVARIANTS,
        SERVER_INVARIANTS,
        run_server_chaos,
    )

    print(
        f"sweeping {args.sessions} concurrent clients against a live "
        f"server (seed {args.seed}) ..."
    )
    config = None
    if args.shards > 1:
        # The sweep's tuned knobs, with batch ticks sharded across cores.
        from dataclasses import replace

        from repro.faults.chaos import chaos_server_config

        config = replace(chaos_server_config(args.sessions), shards=args.shards)
    report = run_server_chaos(
        pipeline,
        n_clients=args.sessions,
        seed=args.seed,
        n_rounds=args.rounds,
        config=config,
    )
    print(f"clients              : {report.n_clients}  {report.behaviors}")
    print(f"terminal kinds       : {report.client_kinds}")
    print(f"results delivered    : {report.results} ({report.successes} confirmed keys)")
    print(f"structured aborts    : {report.aborts}  {report.metrics.get('aborted')}")
    print(f"shed at admission    : {report.rejections}")
    print(f"degraded sessions    : {report.degraded_sessions}")
    print(
        f"reaped               : {report.metrics.get('reaped_idle')} idle, "
        f"{report.metrics.get('reaped_deadline')} deadline"
    )
    print(
        f"drain                : {report.drain_delivered} delivered, "
        f"{report.drain_aborted} aborted, {report.leaked_sessions} leaked"
    )
    print(
        f"secured clients      : {report.secured_clients} "
        f"({report.metrics.get('secure_records')} records, "
        f"{report.metrics.get('secure_echoed')} echoed)"
    )
    counts = report.violation_counts()
    for invariant in INVARIANTS + PAYLOAD_INVARIANTS + SERVER_INVARIANTS:
        print(f"invariant {invariant:32s}: {counts[invariant]} violation(s)")
    for violation in report.violations:
        print(
            f"VIOLATION [{violation.invariant}] client {violation.session} "
            f"(seed {violation.seed}): {violation.detail}"
        )
    if report.ok:
        print("all invariants held")
        return 0
    print(f"{len(report.violations)} invariant violation(s)")
    return 1


def _chaos_restart(pipeline, args) -> int:
    """Run the kill/restart chaos sweep; exit non-zero on any violation."""
    from repro.faults.chaos import (
        INVARIANTS,
        PAYLOAD_INVARIANTS,
        RESTART_INVARIANTS,
        SERVER_INVARIANTS,
        run_restart_chaos,
    )

    print(
        f"sweeping {args.sessions} clients against a server SIGKILLed at "
        f"seeded crashpoints (seed {args.seed}, {args.restarts} restart(s)) ..."
    )
    report = run_restart_chaos(
        pipeline,
        n_clients=args.sessions,
        seed=args.seed,
        n_rounds=args.rounds,
        journal_dir=args.journal_dir,
        restarts=args.restarts,
    )
    print(f"clients              : {report.n_clients}  {report.behaviors}")
    print(f"terminal kinds       : {report.client_kinds}")
    print(
        f"server generations   : {report.generations} "
        f"({report.kills} SIGKILLed, plans {report.crash_plans})"
    )
    print(
        f"results delivered    : {report.results} ({report.successes} confirmed "
        f"keys, {report.resumed_results} on resumed connections)"
    )
    print(f"recovered aborts     : {report.recovered_aborts}")
    print(f"secured clients      : {report.secured_clients}")
    print(f"resume probes        : {report.resume_probes} idempotent redeliveries")
    print(
        f"journal              : {report.journal_records} records, "
        f"{report.recoveries} recovery pass(es), "
        f"{report.orphans_recovered} orphan(s) aborted"
    )
    counts = report.violation_counts()
    for invariant in (
        INVARIANTS + PAYLOAD_INVARIANTS + SERVER_INVARIANTS + RESTART_INVARIANTS
    ):
        print(f"invariant {invariant:32s}: {counts[invariant]} violation(s)")
    for violation in report.violations:
        print(
            f"VIOLATION [{violation.invariant}] client {violation.session} "
            f"(seed {violation.seed}): {violation.detail}"
        )
    if report.ok:
        print("all invariants held across every crash and restart")
        return 0
    print(f"{len(report.violations)} invariant violation(s)")
    return 1


def _cmd_serve(args) -> int:
    """Run the key-establishment session server until SIGTERM/SIGINT."""
    import asyncio

    from repro.core.pipeline import VehicleKeyPipeline
    from repro.server import KeyEstablishmentServer, ModelRegistry, ServerConfig

    pipeline = VehicleKeyPipeline.for_scenario(args.scenario, seed=args.seed)
    watch_dir = None
    if args.load_dir:
        print(f"loading trained components from {args.load_dir} ...")
        pipeline.load(args.load_dir)
        watch_dir = args.load_dir  # hot-reload newer generations from here
    else:
        print(f"training Vehicle-Key for {args.scenario.value} (seed {args.seed}) ...")
        pipeline.train(
            n_episodes=args.episodes,
            epochs=args.epochs,
            reconciler_epochs=args.epochs // 3,
        )
    registry = ModelRegistry(pipeline, directory=watch_dir)
    config = ServerConfig(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        idle_timeout_s=args.idle_timeout,
        session_deadline_s=args.deadline,
        queue_limit=args.queue_limit,
        max_batch=args.max_batch,
        shards=args.shards,
        journal_dir=args.journal_dir,
        journal_fsync=args.journal_fsync,
    )
    server = KeyEstablishmentServer(registry, config)

    async def _serve_forever() -> int:
        """serve_forever with a drain summary on shutdown."""
        await server.start()
        where = args.unix if args.unix else f"{args.host}:{server.bound_port}"
        print(f"serving key establishment on {where} (SIGTERM drains gracefully)")
        import signal as _signal

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        await stop.wait()
        print("draining ...")
        report = await server.drain()
        print(
            f"drained: {report.delivered} delivered, "
            f"{report.aborted_draining} aborted, {report.leaked} leaked"
        )
        snapshot = server.metrics.snapshot()
        print(f"final metrics: {snapshot}")
        return 0 if report.leaked == 0 else 1

    return asyncio.run(_serve_forever())


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI's argument parser."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    establish = sub.add_parser("establish", help="train and run one key agreement")
    establish.add_argument("--scenario", type=_scenario, default=ScenarioName.V2V_URBAN)
    establish.add_argument("--seed", type=int, default=0)
    establish.add_argument("--episodes", type=int, default=200)
    establish.add_argument("--epochs", type=int, default=90)
    establish.add_argument(
        "--checkpoint-dir",
        default=None,
        help="directory for crash-safe training checkpoints",
    )
    establish.add_argument(
        "--resume",
        action="store_true",
        help="resume training from --checkpoint-dir if a checkpoint exists",
    )
    establish.add_argument(
        "--save-dir",
        default=None,
        help="save the trained model and reconciler into this directory",
    )
    establish.add_argument(
        "--load-dir",
        default=None,
        help="skip training and load trained components from this directory",
    )
    establish.add_argument(
        "--sessions",
        type=int,
        default=1,
        help="run N concurrent key establishments through the batched engine",
    )
    establish.add_argument(
        "--shards",
        type=int,
        default=1,
        help="fork workers to split the batched engine across (1 = in-process)",
    )
    establish.set_defaults(handler=_cmd_establish)

    attack = sub.add_parser("attack", help="evaluate an attacker")
    attack.add_argument("--attacker", choices=("eavesdropper", "imitator"), required=True)
    attack.add_argument("--scenario", type=_scenario, default=ScenarioName.V2V_URBAN)
    attack.add_argument("--seed", type=int, default=0)
    attack.add_argument("--episodes", type=int, default=200)
    attack.add_argument("--epochs", type=int, default=90)
    attack.set_defaults(handler=_cmd_attack)

    validate = sub.add_parser(
        "validate-channel", help="statistical self-checks of the channel simulator"
    )
    validate.add_argument("--seed", type=int, default=0)
    validate.set_defaults(handler=_cmd_validate_channel)

    experiments = sub.add_parser("experiments", help="regenerate paper tables/figures")
    experiments.add_argument("experiment_args", nargs="*")
    experiments.add_argument("--full", action="store_true")
    experiments.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the experiment fan-out",
    )
    experiments.add_argument(
        "--cache-dir", default=None,
        help="on-disk trained-pipeline cache shared by workers and reruns",
    )
    experiments.set_defaults(handler=_cmd_experiments)

    robustness = sub.add_parser(
        "robustness", help="key-rate/disagreement curves under injected packet loss"
    )
    robustness.add_argument("--seed", type=int, default=0)
    robustness.add_argument("--full", action="store_true")
    robustness.set_defaults(handler=_cmd_robustness)

    chaos = sub.add_parser(
        "chaos",
        help="sweep random fault x attack combinations against safety invariants",
    )
    chaos.add_argument("--scenario", type=_scenario, default=ScenarioName.V2I_URBAN)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--sessions", type=int, default=50,
        help="number of seeded random fault/attack combinations to run",
    )
    chaos.add_argument(
        "--rounds", type=int, default=None,
        help="probing rounds per session (default: the chaos pipeline's 96)",
    )
    chaos.add_argument(
        "--max-attempts", type=int, default=2,
        help="probing bursts per session (>1 exercises abort re-sync)",
    )
    chaos.add_argument(
        "--server", action="store_true",
        help="sweep misbehaving concurrent clients against a live session "
        "server instead of the in-process pipeline",
    )
    chaos.add_argument(
        "--no-data-phase", action="store_true",
        help="skip the secure-channel data phase after successful sessions "
        "(library sweep only)",
    )
    chaos.add_argument(
        "--shards", type=int, default=1,
        help="fork workers per server batch tick (--server sweep only)",
    )
    chaos.add_argument(
        "--restart", action="store_true",
        help="kill/restart sweep: SIGKILL a forked server at seeded "
        "crashpoints mid-sweep, restart it against the same journal, and "
        "machine-check the crash-durability invariants",
    )
    chaos.add_argument(
        "--restarts", type=int, default=2,
        help="armed server generations (SIGKILLs) the --restart sweep plans",
    )
    chaos.add_argument(
        "--journal-dir", default=None,
        help="write-ahead journal directory for the --restart sweep "
        "(default: a fresh temporary directory)",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    serve = sub.add_parser(
        "serve", help="run the fault-tolerant key-establishment session server"
    )
    serve.add_argument("--scenario", type=_scenario, default=ScenarioName.V2I_URBAN)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--episodes", type=int, default=200)
    serve.add_argument("--epochs", type=int, default=90)
    serve.add_argument(
        "--load-dir", default=None,
        help="load trained components from this directory and watch it for "
        "checksummed hot-reloads",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7316)
    serve.add_argument(
        "--unix", default=None, help="serve on a unix socket path instead of TCP"
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=30.0,
        help="seconds of peer silence before a session is reaped",
    )
    serve.add_argument(
        "--deadline", type=float, default=120.0,
        help="end-to-end seconds before a session is aborted",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=64,
        help="bounded ingress queue; excess sessions are shed with retry-after",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="most sessions one batch tick may coalesce",
    )
    serve.add_argument(
        "--shards", type=int, default=1,
        help="fork workers to split each batch tick across (1 = in-process)",
    )
    serve.add_argument(
        "--journal-dir", default=None,
        help="crash-durability write-ahead journal directory; enables "
        "recovery, resumption tokens and nonce-floor restoration",
    )
    serve.add_argument(
        "--journal-fsync", default="batch", choices=("always", "batch", "off"),
        help="journal fsync policy (critical records are always fsync'd "
        "in non-off modes)",
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.exceptions import ReproError

    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
