"""Lossy delivery of reconciliation messages.

The syndrome exchange of :class:`~repro.core.session.KeyAgreementSession`
assumes every message arrives exactly once, in order.  A
:class:`LossyMessageChannel` breaks that assumption under seeded control:
messages can vanish, arrive twice, or swap with their successor.  The
session layer's block addressing plus bounded re-requests must absorb all
three without ever silently mismatching keys.
"""

from __future__ import annotations

from typing import List, Optional, TypeVar

import numpy as np

from repro.faults.plan import MessageFaultConfig

MessageT = TypeVar("MessageT")


class LossyMessageChannel:
    """Applies drop/duplication/reorder faults to a message stream.

    Delivery is modeled per transmission: :meth:`deliver` returns the
    messages that arrive at the receiver as a consequence of sending one
    message (possibly none, possibly a delayed predecessor too).  Call
    :meth:`flush` once the sender is done to release any message still
    held back by the reorderer.

    Args:
        config: Fault rates.
        rng: The channel's private random stream.
    """

    def __init__(self, config: MessageFaultConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng
        self._held: Optional[MessageT] = None
        self.transmitted = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def deliver(self, message: MessageT) -> List[MessageT]:
        """Transmit one message; returns what arrives, in arrival order."""
        self.transmitted += 1
        # Fixed draw order (drop, duplicate, reorder) keeps the fault
        # pattern deterministic in the seed regardless of which rates are
        # enabled.
        lost = self._rng.random() < self.config.drop_rate
        duplicated = self._rng.random() < self.config.duplicate_rate
        reorder = self._rng.random() < self.config.reorder_rate
        if lost:
            self.dropped += 1
            # A loss still releases any held-back predecessor.
            return self._release()
        arrivals = [message, message] if duplicated else [message]
        if duplicated:
            self.duplicated += 1
        if reorder and self._held is None:
            # Hold this message back; it arrives after the next delivery.
            self._held = arrivals.pop(0)
            self.reordered += 1
            return arrivals
        return arrivals + self._release()

    def flush(self) -> List[MessageT]:
        """Release any message still held back by the reorderer."""
        return self._release()

    def _release(self) -> List[MessageT]:
        if self._held is None:
            return []
        held, self._held = self._held, None
        return [held]
