"""ARQ retry policy: how hard to fight packet loss before giving up.

One :class:`RetryPolicy` governs both the probing layer's per-probe ARQ
(retransmit an unacknowledged probe after a timeout, with exponential
backoff) and the session layer's bounded syndrome re-requests.  The
backoff is floored by the regional duty-cycle rule when a
:class:`~repro.lora.regional.RegionalPlan` is attached: a retransmission
may never start before the mandatory post-transmission silence the band
imposes, so aggressive retry settings cannot make the simulated device
violate its airtime budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.lora.regional import RegionalPlan
from repro.utils.validation import require


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retransmission with capped exponential backoff.

    Attributes:
        max_retries: Retransmissions allowed per probe round (and syndrome
            re-requests allowed per reconciliation block) on top of the
            initial transmission.
        timeout_s: How long the sender waits for the acknowledging
            response before declaring the attempt lost.
        backoff_base_s: Backoff before the first retransmission.
        backoff_factor: Multiplier applied per further retransmission.
        max_backoff_s: Upper cap on the exponential backoff.
        regional_plan: Optional duty-cycle plan; when set, every backoff
            is floored by the plan's mandatory silence for the attempted
            airtime.
    """

    max_retries: int = 3
    timeout_s: float = 0.05
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter_fraction: float = 0.0
    regional_plan: Optional[RegionalPlan] = None

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.timeout_s >= 0, "timeout_s must be >= 0")
        require(self.backoff_base_s >= 0, "backoff_base_s must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(
            self.max_backoff_s >= self.backoff_base_s,
            "max_backoff_s must be >= backoff_base_s",
        )
        require(
            0.0 <= self.jitter_fraction < 1.0,
            "jitter_fraction must be in [0, 1)",
        )

    def backoff_s(self, retry_index: int, airtime_s: float = 0.0, rng=None) -> float:
        """Silence before retransmission number ``retry_index`` (0-based).

        The exponential ramp is capped at ``max_backoff_s``, spread by the
        optional desynchronizing jitter (a uniform factor in
        ``[1 - jitter_fraction, 1 + jitter_fraction]`` drawn from ``rng``,
        the session's named RNG stream, so runs stay reproducible) and
        floored by the regional duty-cycle silence for the airtime just
        spent.  The duty-cycle floor is applied *after* the jitter: jitter
        may never shorten the band-mandated silence.
        """
        require(retry_index >= 0, "retry_index must be >= 0")
        backoff = min(
            self.max_backoff_s,
            self.backoff_base_s * self.backoff_factor**retry_index,
        )
        if self.jitter_fraction > 0.0 and rng is not None:
            backoff *= 1.0 + self.jitter_fraction * float(rng.uniform(-1.0, 1.0))
        if self.regional_plan is not None:
            backoff = max(backoff, self.regional_plan.min_gap_after(airtime_s))
        return backoff

    def retry_delay_s(
        self, retry_index: int, airtime_s: float = 0.0, rng=None
    ) -> float:
        """Total dead time one failed attempt costs: timeout plus backoff."""
        return self.timeout_s + self.backoff_s(retry_index, airtime_s, rng=rng)

    def min_retry_delay_s(self, airtime_s: float = 0.0) -> float:
        """Lower bound on one retry's dead time, for budget invariants.

        Jitter can shrink the backoff by at most ``jitter_fraction``, but
        never below the regional duty-cycle floor, and the timeout always
        applies -- so every retry costs at least this much wall-clock time.
        """
        floor = 0.0
        if self.regional_plan is not None:
            floor = self.regional_plan.min_gap_after(airtime_s)
        least_backoff = self.backoff_base_s * (1.0 - self.jitter_fraction)
        return self.timeout_s + max(floor, least_backoff)
