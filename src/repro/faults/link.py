"""Seeded link-level fault machinery: loss processes and register glitches.

Real SX127x links lose probes to fading dips, collisions and interference
bursts; the deterministic below-sensitivity flag in the probing protocol
captures none of that.  This module provides the stateful, seeded side of
a :class:`~repro.faults.plan.FaultPlan`:

- :func:`snr_packet_error_rate` -- a logistic PER curve around the
  spreading factor's demodulation SNR limit (the link-budget-coupled part
  of the loss process);
- :class:`GilbertElliottProcess` -- a two-state burst-loss chain whose
  stationary loss rate and mean burst length are the plan's knobs;
- :class:`LinkFaultModel` -- the per-session combination of both plus RSSI
  register corruption, with one independent random stream per concern so
  enabling one fault never perturbs another.
"""

from __future__ import annotations

import math
from typing import Dict

import numpy as np

from repro.faults.plan import FaultPlan
from repro.lora.link_budget import _SNR_LIMIT_DB
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_in_range

#: The two directions of the probing link: Alice's probe (heard by Bob)
#: and Bob's response (heard by Alice).  Each gets its own loss process.
DIRECTIONS = ("a2b", "b2a")

#: SNR span (dB) over which the PER curve falls from ~0.9 to ~0.1; real
#: SX127x PER-vs-SNR measurements show a 2-3 dB waterfall region.
DEFAULT_TRANSITION_WIDTH_DB = 2.5

# ln(9): the logistic slope that puts PER at 0.9 / 0.1 exactly half a
# transition width below / above the demodulation limit.
_LOGISTIC_SLOPE = math.log(9.0)


def snr_packet_error_rate(
    snr_db: float,
    spreading_factor: int,
    transition_width_db: float = DEFAULT_TRANSITION_WIDTH_DB,
) -> float:
    """Packet error rate of a reception at the given SNR.

    A logistic waterfall centered on the spreading factor's demodulation
    SNR limit: 0.5 at the limit, ~0.9 half a transition width below it,
    ~0.1 half a width above, vanishing on strong links.
    """
    require(
        spreading_factor in _SNR_LIMIT_DB,
        f"spreading_factor must be in {sorted(_SNR_LIMIT_DB)}, got {spreading_factor}",
    )
    require(transition_width_db > 0, "transition_width_db must be > 0")
    margin = snr_db - _SNR_LIMIT_DB[spreading_factor]
    scaled = 2.0 * _LOGISTIC_SLOPE * margin / transition_width_db
    # Clamp to keep exp() from overflowing on absurdly weak links.
    if scaled < -60.0:
        return 1.0
    if scaled > 60.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(scaled))


class GilbertElliottProcess:
    """Two-state (good/bad) Markov loss process.

    Packets sent in the bad state are lost; the chain's transition
    probabilities are derived from the requested stationary loss rate and
    mean bad-state dwell, so ``mean_burst=1`` degenerates to memoryless
    Bernoulli loss and larger values produce correlated loss bursts.

    Args:
        loss_rate: Stationary probability of the bad (lossy) state.
        mean_burst: Mean bad-state dwell time in packets (>= 1).
        rng: The process's private random stream.
    """

    def __init__(
        self, loss_rate: float, mean_burst: float, rng: np.random.Generator
    ):
        require_in_range(loss_rate, 0.0, 0.999, "loss_rate")
        require(mean_burst >= 1.0, "mean_burst must be >= 1")
        self.loss_rate = float(loss_rate)
        self.mean_burst = float(mean_burst)
        self._rng = rng
        # bad->good per step; mean dwell in bad is 1/q.
        self._q = 1.0 / self.mean_burst
        # good->bad chosen so the stationary bad probability is loss_rate.
        if loss_rate > 0.0:
            self._p = self._q * loss_rate / (1.0 - loss_rate)
        else:
            self._p = 0.0
        # Start from the stationary distribution so the first packets are
        # as lossy as the rest (no warm-up transient).
        self._bad = bool(self._rng.random() < self.loss_rate)

    def step(self) -> bool:
        """Advance one packet; returns True when that packet is lost."""
        if self.loss_rate <= 0.0:
            return False
        if self._bad:
            if self._rng.random() < self._q:
                self._bad = False
        else:
            if self._rng.random() < self._p:
                self._bad = True
        return self._bad


class LinkFaultModel:
    """One probing session's worth of seeded link faults.

    Draws every decision from named streams of the supplied seed factory
    (``fault-loss-a2b``, ``fault-snr-b2a``, ``fault-register``, ...), so
    fault injection is reproducible per session and adding it never
    perturbs the measurement-noise streams the protocol already consumes.

    Args:
        plan: What to inject.
        seeds: Seed factory, normally the probing episode's.
    """

    def __init__(self, plan: FaultPlan, seeds: SeedSequenceFactory):
        self.plan = plan
        self._burst: Dict[str, GilbertElliottProcess] = {
            direction: GilbertElliottProcess(
                plan.loss.rate,
                plan.loss.mean_burst,
                seeds.generator(f"fault-loss-{direction}"),
            )
            for direction in DIRECTIONS
        }
        self._snr_rng: Dict[str, np.random.Generator] = {
            direction: seeds.generator(f"fault-snr-{direction}")
            for direction in DIRECTIONS
        }
        self._register_rng = seeds.generator("fault-register")

    def packet_lost(
        self, direction: str, snr_db: float, spreading_factor: int
    ) -> bool:
        """Whether one transmission in ``direction`` is lost.

        Combines the burst process with the SNR-dependent PER; both
        streams advance on every call so loss patterns stay aligned with
        the transmission sequence regardless of which mechanism fires.
        """
        require(direction in DIRECTIONS, f"unknown link direction {direction!r}")
        lost = self._burst[direction].step()
        if self.plan.loss.snr_dependent:
            per = snr_packet_error_rate(snr_db, spreading_factor)
            lost = bool(self._snr_rng[direction].random() < per) or lost
        return lost

    def corrupt_register(
        self, samples: np.ndarray, floor_dbm: float
    ) -> np.ndarray:
        """Maybe glitch one run of register reads in a reception's trace.

        Models the occasional bogus RSSI register read-out seen on SX127x
        hosts (SPI glitches, reads racing the AGC): a short run of samples
        collapses toward the floor.  Returns the input unchanged (same
        object) when no glitch fires.
        """
        config = self.plan.register
        if not config.active:
            return samples
        if self._register_rng.random() >= config.probability:
            return samples
        out = samples.copy()
        burst = min(config.burst_symbols, out.size)
        start = int(self._register_rng.integers(0, out.size - burst + 1))
        out[start : start + burst] = np.maximum(
            out[start : start + burst] - config.magnitude_db, floor_dbm
        )
        return out
