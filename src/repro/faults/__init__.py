"""Fault injection and recovery: lossy links, retries, graceful failure.

The robustness layer of the reproduction.  A seeded
:class:`~repro.faults.plan.FaultPlan` describes which faults to inject
(burst packet loss, SNR-dependent PER, RSSI register glitches,
reconciliation-message drop/duplication/reorder); the probing protocol's
ARQ layer and the session's bounded re-requests absorb them, and the
pipeline converts what cannot be absorbed into structured failures
instead of silent key mismatches.
"""

from repro.faults.link import (
    GilbertElliottProcess,
    LinkFaultModel,
    snr_packet_error_rate,
)
from repro.faults.messages import LossyMessageChannel
from repro.faults.plan import (
    FaultPlan,
    LossConfig,
    MessageFaultConfig,
    RegisterCorruptionConfig,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "FaultPlan",
    "LossConfig",
    "MessageFaultConfig",
    "RegisterCorruptionConfig",
    "GilbertElliottProcess",
    "LinkFaultModel",
    "LossyMessageChannel",
    "RetryPolicy",
    "snr_packet_error_rate",
]
