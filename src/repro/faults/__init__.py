"""Fault injection, active adversaries, and recovery.

The robustness layer of the reproduction.  A seeded
:class:`~repro.faults.plan.FaultPlan` describes which *benign* faults to
inject (burst packet loss, SNR-dependent PER, RSSI register glitches,
reconciliation-message drop/duplication/reorder); a seeded
:class:`~repro.faults.adversary.AdversaryPlan` describes which *active
attacks* to launch (probe replay/injection, reactive jamming, syndrome
tamper/replay/spoof, confirmation tampering).  The probing protocol's
ARQ layer and the session's bounded re-requests absorb the faults, the
authenticated state machine converts attacks into structured aborts, and
the pipeline converts what cannot be absorbed into structured failures
instead of silent key mismatches.

The chaos invariant harness lives in :mod:`repro.faults.chaos`; import
it as a submodule (it depends on the pipeline layer, which depends on
this package, so it cannot be re-exported here without a cycle).
"""

from repro.faults.adversary import ActiveAdversary, AdversaryPlan, build_adversary
from repro.faults.link import (
    GilbertElliottProcess,
    LinkFaultModel,
    snr_packet_error_rate,
)
from repro.faults.messages import LossyMessageChannel
from repro.faults.plan import (
    FaultPlan,
    LossConfig,
    MessageFaultConfig,
    RegisterCorruptionConfig,
)
from repro.faults.retry import RetryPolicy

__all__ = [
    "ActiveAdversary",
    "AdversaryPlan",
    "build_adversary",
    "FaultPlan",
    "LossConfig",
    "MessageFaultConfig",
    "RegisterCorruptionConfig",
    "GilbertElliottProcess",
    "LinkFaultModel",
    "LossyMessageChannel",
    "RetryPolicy",
    "snr_packet_error_rate",
]
