"""Declarative fault plans: what to break, how often, how badly.

A :class:`FaultPlan` is a frozen description of every stochastic fault the
robustness layer can inject -- packet loss on the probing link, RSSI
register read corruption, and drop/duplication/reorder of reconciliation
messages.  Plans carry no randomness of their own: the stateful, seeded
machinery lives in :mod:`repro.faults.link` and
:mod:`repro.faults.messages`, so the same plan can be replayed under many
seeds and the same seed always reproduces the same fault pattern.

``FaultPlan.none()`` is the identity plan: every consumer treats it
exactly like "no fault layer at all", so pipelines configured with it are
bit-identical to the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require, require_in_range


@dataclass(frozen=True)
class LossConfig:
    """Stochastic packet loss on the probing link.

    Attributes:
        rate: Stationary loss probability of the burst process, applied
            independently per transmission and direction.  0 disables it.
        mean_burst: Mean length (in packets) of a loss burst.  1 gives
            memoryless Bernoulli loss; above 1 the losses come from a
            Gilbert-Elliott two-state chain whose bad state dwells
            ``mean_burst`` packets on average (fading dips, interference
            bursts).
        snr_dependent: Additionally draw loss from the link budget's
            SNR-dependent packet-error-rate curve around the spreading
            factor's demodulation limit.  Negligible on strong links but
            dominant near sensitivity.
    """

    rate: float = 0.0
    mean_burst: float = 1.0
    snr_dependent: bool = False

    def __post_init__(self) -> None:
        require_in_range(self.rate, 0.0, 0.999, "rate")
        require(self.mean_burst >= 1.0, "mean_burst must be >= 1")

    @property
    def active(self) -> bool:
        """Whether this config injects any loss at all."""
        return self.rate > 0.0 or self.snr_dependent


@dataclass(frozen=True)
class RegisterCorruptionConfig:
    """SX127x RSSI register read glitches.

    Attributes:
        probability: Per-reception probability that a glitch corrupts a
            run of register reads.
        burst_symbols: Consecutive register reads affected by one glitch.
        magnitude_db: Depth of the corruption (the glitched reads drop by
            this much, clamped at the chip's RSSI floor).
    """

    probability: float = 0.0
    burst_symbols: int = 3
    magnitude_db: float = 20.0

    def __post_init__(self) -> None:
        require_in_range(self.probability, 0.0, 1.0, "probability")
        require(self.burst_symbols >= 1, "burst_symbols must be >= 1")
        require(self.magnitude_db >= 0.0, "magnitude_db must be >= 0")

    @property
    def active(self) -> bool:
        """Whether register corruption is enabled."""
        return self.probability > 0.0


@dataclass(frozen=True)
class MessageFaultConfig:
    """Faults on the reconciliation (syndrome) message exchange.

    Attributes:
        drop_rate: Probability a transmitted message never arrives.
        duplicate_rate: Probability a message arrives twice.
        reorder_rate: Probability a message is held back and delivered
            after its successor.
    """

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0

    def __post_init__(self) -> None:
        require_in_range(self.drop_rate, 0.0, 0.999, "drop_rate")
        require_in_range(self.duplicate_rate, 0.0, 1.0, "duplicate_rate")
        require_in_range(self.reorder_rate, 0.0, 1.0, "reorder_rate")

    @property
    def active(self) -> bool:
        """Whether any message fault is enabled."""
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.reorder_rate > 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything the fault-injection layer may do to one session.

    Attributes:
        loss: Probe/response packet-loss process.
        register: RSSI register corruption.
        messages: Reconciliation-message faults.
    """

    loss: LossConfig = field(default_factory=LossConfig)
    register: RegisterCorruptionConfig = field(
        default_factory=RegisterCorruptionConfig
    )
    messages: MessageFaultConfig = field(default_factory=MessageFaultConfig)

    @classmethod
    def none(cls) -> "FaultPlan":
        """The identity plan: inject nothing anywhere."""
        return cls()

    @classmethod
    def lossy(
        cls,
        rate: float,
        mean_burst: float = 1.0,
        message_drop_rate: float = 0.0,
        snr_dependent: bool = True,
    ) -> "FaultPlan":
        """A link-loss-centric plan, the robustness sweep's workhorse."""
        return cls(
            loss=LossConfig(
                rate=rate, mean_burst=mean_burst, snr_dependent=snr_dependent
            ),
            messages=MessageFaultConfig(drop_rate=message_drop_rate),
        )

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (bit-identical to no plan)."""
        return not (
            self.loss.active or self.register.active or self.messages.active
        )
