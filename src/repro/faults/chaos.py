"""Chaos invariant harness: random faults x attacks vs. safety invariants.

Deterministic fault tests prove that one specific attack produces one
specific structured failure.  The chaos harness attacks the *composition*:
it sweeps seeded random combinations of :class:`~repro.faults.plan.FaultPlan`,
:class:`~repro.faults.adversary.AdversaryPlan` and
:class:`~repro.faults.retry.RetryPolicy` (including duty-cycled regional
plans) through :meth:`~repro.core.pipeline.VehicleKeyPipeline.establish_key`
and asserts the machine-checked safety invariants that must hold for
*every* combination:

``silent-key-mismatch``
    ``success=True`` always means both parties hold the same confirmed
    key and the state machine did not abort.
``key-after-failed-verification``
    An aborted or confirmation-failed session never releases key bytes.
``uncaught-exception``
    Attacker-controlled input never raises out of ``establish_key``.
``retry-budget-exceeded``
    No probing round ever spends more retries than the policy allows.
``duty-cycle-violated``
    Under a regional plan, accumulated backoff time is never less than
    the band-mandated minimum for the retries actually spent.
``undetected-replay``
    A replayed (stale-nonce) syndrome that cannot have been dropped in
    flight always drives the session into an abort.

Any violation is recorded with its seed and session index, so a failure
in CI reproduces locally with one command (``repro chaos --seed N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.faults.adversary import AdversaryPlan
from repro.faults.plan import (
    FaultPlan,
    LossConfig,
    MessageFaultConfig,
    RegisterCorruptionConfig,
)
from repro.faults.retry import RetryPolicy
from repro.lora.regional import EU433, EU868, UNRESTRICTED
from repro.probing.features import FeatureConfig
from repro.utils.validation import require_positive

#: Every invariant the harness checks, in reporting order.
INVARIANTS = (
    "silent-key-mismatch",
    "key-after-failed-verification",
    "uncaught-exception",
    "retry-budget-exceeded",
    "duty-cycle-violated",
    "undetected-replay",
)

#: Numerical slack for the duty-cycle time accounting.
_TIME_EPS = 1e-9


def random_fault_plan(rng: np.random.Generator) -> FaultPlan:
    """One seeded random fault plan (sometimes the null plan)."""
    if rng.random() < 0.25:
        return FaultPlan.none()
    loss = LossConfig(
        rate=float(rng.uniform(0.0, 0.35)),
        mean_burst=float(rng.uniform(1.0, 5.0)),
        snr_dependent=bool(rng.random() < 0.3),
    )
    register = RegisterCorruptionConfig(
        probability=float(rng.uniform(0.0, 0.15)) if rng.random() < 0.4 else 0.0,
        burst_symbols=int(rng.integers(1, 5)),
        magnitude_db=float(rng.uniform(5.0, 30.0)),
    )
    messages = MessageFaultConfig(
        drop_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
        duplicate_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
        reorder_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
    )
    return FaultPlan(loss=loss, register=register, messages=messages)


def random_adversary_plan(rng: np.random.Generator) -> AdversaryPlan:
    """One seeded random attack plan (sometimes no attacker at all)."""
    if rng.random() < 0.25:
        return AdversaryPlan.none()
    return AdversaryPlan(
        probe_replay_rate=float(rng.uniform(0.0, 0.2)) if rng.random() < 0.5 else 0.0,
        probe_injection_rate=(
            float(rng.uniform(0.0, 0.2)) if rng.random() < 0.5 else 0.0
        ),
        injection_rssi_dbm=float(rng.uniform(-90.0, -40.0)),
        jamming_rate=float(rng.uniform(0.0, 0.25)) if rng.random() < 0.5 else 0.0,
        jamming_mean_burst=float(rng.uniform(1.0, 4.0)),
        syndrome_tamper_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.5 else 0.0
        ),
        syndrome_replay_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.4 else 0.0
        ),
        syndrome_spoof_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.4 else 0.0
        ),
        confirmation_tamper=bool(rng.random() < 0.2),
    )


def random_retry_policy(rng: np.random.Generator) -> RetryPolicy:
    """One seeded random ARQ policy, sometimes duty-cycle constrained."""
    regional = [None, UNRESTRICTED, EU433, EU868][int(rng.integers(0, 4))]
    return RetryPolicy(
        max_retries=int(rng.integers(0, 5)),
        timeout_s=float(rng.uniform(0.01, 0.1)),
        backoff_base_s=float(rng.uniform(0.01, 0.1)),
        backoff_factor=float(rng.uniform(1.0, 3.0)),
        max_backoff_s=float(rng.uniform(0.5, 3.0)),
        jitter_fraction=float(rng.uniform(0.0, 0.5)),
        regional_plan=regional,
    )


@dataclass(frozen=True)
class ChaosViolation:
    """One broken safety invariant.

    Attributes:
        invariant: Which invariant from :data:`INVARIANTS` was violated.
        session: Session index within the sweep (combine with the seed to
            reproduce).
        seed: The sweep seed the session derived from.
        detail: Human-readable description of what went wrong.
    """

    invariant: str
    session: int
    seed: int
    detail: str


@dataclass
class ChaosReport:
    """Aggregated verdict of one chaos sweep.

    Attributes:
        n_sessions: Sessions executed.
        seed: Sweep seed.
        violations: Every broken invariant, in discovery order.
        successes: Sessions that established a confirmed key.
        aborts: Sessions whose final attempt ended in a structured abort.
        abort_reasons: Abort-slug histogram over final attempts.
        failure_reasons: ``failure_reason`` histogram over all sessions.
        attacked_sessions: Sessions that faced a non-null adversary plan.
        faulted_sessions: Sessions that faced a non-null fault plan.
    """

    n_sessions: int = 0
    seed: int = 0
    violations: List[ChaosViolation] = field(default_factory=list)
    successes: int = 0
    aborts: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    attacked_sessions: int = 0
    faulted_sessions: int = 0

    @property
    def ok(self) -> bool:
        """Whether every invariant held across the whole sweep."""
        return not self.violations

    def violation_counts(self) -> Dict[str, int]:
        """Per-invariant violation counts (zero-filled for reporting)."""
        counts = {name: 0 for name in INVARIANTS}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def merge(self, other: "ChaosReport") -> "ChaosReport":
        """Fold another sweep's counts into this report (returns self)."""
        self.n_sessions += other.n_sessions
        self.violations.extend(other.violations)
        self.successes += other.successes
        self.aborts += other.aborts
        for key, value in other.abort_reasons.items():
            self.abort_reasons[key] = self.abort_reasons.get(key, 0) + value
        for key, value in other.failure_reasons.items():
            self.failure_reasons[key] = self.failure_reasons.get(key, 0) + value
        self.attacked_sessions += other.attacked_sessions
        self.faulted_sessions += other.faulted_sessions
        return self


def _check_invariants(
    outcome,
    policy: RetryPolicy,
    fault_plan: FaultPlan,
    adversary_plan: AdversaryPlan,
    airtime_s: float,
    session_index: int,
    seed: int,
) -> List[ChaosViolation]:
    """All invariant violations one completed session exhibits."""
    session = outcome.session
    violations: List[ChaosViolation] = []

    def violated(invariant: str, detail: str) -> None:
        violations.append(
            ChaosViolation(
                invariant=invariant,
                session=session_index,
                seed=seed,
                detail=detail,
            )
        )

    if outcome.success and (
        not session.keys_match
        or session.abort is not None
        or session.confirmed is False
    ):
        violated(
            "silent-key-mismatch",
            "success=True without a matching confirmed key "
            f"(abort={session.abort}, confirmed={session.confirmed})",
        )
    if (session.abort is not None or session.confirmed is False) and (
        session.final_key_alice is not None or session.final_key_bob is not None
    ):
        violated(
            "key-after-failed-verification",
            f"abort={session.abort} confirmed={session.confirmed} "
            "but key material was released",
        )
    if (
        outcome.retry_budget_remaining is not None
        and outcome.retry_budget_remaining < 0
    ):
        violated(
            "retry-budget-exceeded",
            f"worst round spent {outcome.max_round_retries} retries, "
            f"policy allows {outcome.retry_limit_per_round}",
        )
    if policy.regional_plan is not None and outcome.total_retries > 0:
        floor = outcome.total_retries * policy.min_retry_delay_s(airtime_s)
        if outcome.total_backoff_s < floor - _TIME_EPS:
            violated(
                "duty-cycle-violated",
                f"{outcome.total_retries} retries backed off only "
                f"{outcome.total_backoff_s:.6f}s; regional floor is "
                f"{floor:.6f}s",
            )
    events = outcome.adversary_events or {}
    # A replayed syndrome can only vanish in flight if the message channel
    # drops packets; otherwise its stale nonce must have reached Alice and
    # aborted the session (possibly on an earlier, recovered attempt).
    replay_observable = fault_plan.messages.drop_rate == 0.0
    if (
        events.get("syndromes_replayed", 0) > 0
        and replay_observable
        and not outcome.aborted
        and outcome.aborted_attempts == 0
    ):
        violated(
            "undetected-replay",
            f"{events['syndromes_replayed']} stale-nonce syndromes were "
            "delivered but no attempt aborted",
        )
    return violations


def run_chaos(
    pipeline: VehicleKeyPipeline,
    n_sessions: int,
    seed: int = 0,
    n_rounds: Optional[int] = None,
    max_attempts: int = 2,
) -> ChaosReport:
    """Sweep seeded random fault/attack combinations through the pipeline.

    Args:
        pipeline: A trained pipeline; every session probes a fresh
            ``chaos-{seed}-{i}`` episode (an independent channel and
            trajectory realization of the pipeline's scenario).
        n_sessions: Random combinations to run.
        seed: Sweep seed; combination ``i`` derives from ``(seed, i)``, so
            any single session reproduces in isolation.
        n_rounds: Probing rounds per session (default: the pipeline's
            ``session_rounds``).
        max_attempts: Probing bursts allowed per session, letting abort
            recovery (desync re-sync) exercise its re-probe path.

    Returns:
        The :class:`ChaosReport`; ``report.ok`` is the harness verdict.
    """
    require_positive(n_sessions, "n_sessions")
    airtime_s = pipeline.config.phy.airtime_s
    report = ChaosReport(n_sessions=n_sessions, seed=seed)
    for index in range(n_sessions):
        rng = np.random.default_rng([seed, index])
        fault_plan = random_fault_plan(rng)
        adversary_plan = random_adversary_plan(rng)
        policy = random_retry_policy(rng)
        if not adversary_plan.is_null:
            report.attacked_sessions += 1
        if not fault_plan.is_null:
            report.faulted_sessions += 1
        try:
            outcome = pipeline.establish_key(
                episode=f"chaos-{seed}-{index}",
                n_rounds=n_rounds,
                fault_plan=fault_plan,
                retry_policy=policy,
                adversary_plan=adversary_plan,
                max_attempts=max_attempts,
            )
        except Exception as error:  # noqa: BLE001 - the invariant IS "never raises"
            report.violations.append(
                ChaosViolation(
                    invariant="uncaught-exception",
                    session=index,
                    seed=seed,
                    detail=f"{type(error).__name__}: {error}",
                )
            )
            continue
        if outcome.success:
            report.successes += 1
        if outcome.aborted:
            report.aborts += 1
            reason = outcome.abort_reason
            report.abort_reasons[reason] = report.abort_reasons.get(reason, 0) + 1
        if outcome.failure_reason is not None:
            report.failure_reasons[outcome.failure_reason] = (
                report.failure_reasons.get(outcome.failure_reason, 0) + 1
            )
        report.violations.extend(
            _check_invariants(
                outcome,
                policy,
                fault_plan,
                adversary_plan,
                airtime_s,
                index,
                seed,
            )
        )
    return report


def build_chaos_pipeline(
    scenario: ScenarioName = ScenarioName.V2I_URBAN,
    seed: int = 11,
) -> VehicleKeyPipeline:
    """A small trained pipeline sized for chaos sweeps.

    The harness measures protocol safety, not model quality, so the
    pipeline uses the test-sized tiny architecture trained just enough
    that fault-free sessions reach reconciliation and succeed: a sweep
    then exercises every protocol phase (blocks, MACs, confirmation),
    not just early exhaustion.  Training takes ~10 s and a 96-round
    session well under a second, making hundreds of sessions per CI
    smoke run affordable.
    """
    config = PipelineConfig(
        scenario=scenario_config(scenario),
        feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
        seq_len=16,
        hidden_units=16,
        key_bits=32,
        code_dim=24,
        decoder_units=64,
        rounds_per_episode=48,
        session_rounds=96,
        final_key_bits=64,
        alice_confidence_margin=0.12,
        bob_guard_fraction=0.30,
    )
    pipeline = VehicleKeyPipeline(config, seed=seed)
    pipeline.train(n_episodes=100, epochs=60, reconciler_epochs=15)
    return pipeline
