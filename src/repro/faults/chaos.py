"""Chaos invariant harness: random faults x attacks vs. safety invariants.

Deterministic fault tests prove that one specific attack produces one
specific structured failure.  The chaos harness attacks the *composition*:
it sweeps seeded random combinations of :class:`~repro.faults.plan.FaultPlan`,
:class:`~repro.faults.adversary.AdversaryPlan` and
:class:`~repro.faults.retry.RetryPolicy` (including duty-cycled regional
plans) through :meth:`~repro.core.pipeline.VehicleKeyPipeline.establish_key`
and asserts the machine-checked safety invariants that must hold for
*every* combination:

``silent-key-mismatch``
    ``success=True`` always means both parties hold the same confirmed
    key and the state machine did not abort.
``key-after-failed-verification``
    An aborted or confirmation-failed session never releases key bytes.
``uncaught-exception``
    Attacker-controlled input never raises out of ``establish_key``.
``retry-budget-exceeded``
    No probing round ever spends more retries than the policy allows.
``duty-cycle-violated``
    Under a regional plan, accumulated backoff time is never less than
    the band-mandated minimum for the retries actually spent.
``undetected-replay``
    A replayed (stale-nonce) syndrome that cannot have been dropped in
    flight always drives the session into an abort.

Sessions that establish a key then continue into a secure-channel *data
phase* (:mod:`repro.secure`): both endpoints exchange AEAD records under
a random :class:`~repro.secure.rekey.RekeyPolicy` while the adversary
mounts payload attacks (ciphertext bit-flips, record replay, truncation,
cross-session splicing).  Four payload-level invariants are checked on
every delivery:

``no-decrypt-under-mismatched-keys``
    A record that this session's channel never sealed (spliced from
    another session, or mutated in flight) never opens successfully.
``no-nonce-reuse-ever``
    A global per-key nonce ledger witnesses every seal and accept across
    the whole sweep -- including rekeys -- and never sees a duplicate.
``no-plaintext-on-auth-failure``
    A failed open never releases plaintext, whatever the failure slug.
``rekey-preserves-continuity``
    Untouched records always round-trip, canaries sealed right after a
    rekey decrypt on the first try, and a channel that stops always
    carries a structured close report.

Any violation is recorded with its seed and session index, so a failure
in CI reproduces locally with one command (``repro chaos --seed N``).

The harness also drives the *served* path (``repro chaos --server``):
:func:`run_server_chaos` stands up a real
:class:`~repro.server.server.KeyEstablishmentServer`, hits it with a
seeded mix of honest and misbehaving clients (mid-phase disconnects,
slow-loris frames, corrupt and oversized frames, duplicate session ids,
overload bursts), re-checks the library invariants on every outcome the
server produced, and adds the server-level invariants:

``session-leak-after-reap``
    After the final drain no session is still registered -- reaping and
    disconnect handling reclaim every record.
``tick-stall``
    An honest client that started establishment always receives its
    terminal frame; a wedged or hostile peer never stalls the tick loop
    for everyone else.
``shed-not-hang``
    Every client interaction ends in a structured verdict (result,
    taxonomized abort, or rejection carrying ``retry_after_s``) or a
    clean close -- never a client-side timeout.
``silent-degraded-session``
    Every served session that used the quantizer-fallback degraded mode
    is counted in server metrics; degradation is never silent.

Finally, the *kill/restart* sweep (``repro chaos --restart``):
:func:`run_restart_chaos` forks the server into a child process armed
with seeded :mod:`~repro.server.crashpoints`, SIGKILLs it mid-sweep at
the armed site, restarts a fresh server against the same write-ahead
journal while the clients reconnect and resume, and machine-checks the
crash-durability invariants from the journal itself:

``no-nonce-reuse-across-restart``
    No ``(key, direction, sequence)`` triple is ever sealed or accepted
    twice across a crash: journaled seal high-water marks never regress,
    resumed channels always advance their epoch, and neither the server
    child's ledger nor the parent-side client ledger witnesses a reuse.
``no-duplicate-result-delivery``
    One resumption token maps to one key, forever: every journaled
    result outcome for a token carries the same key digest, a delivered
    result is never later orphan-aborted, and re-resuming a delivered
    result re-answers the identical digest.
``no-orphan-session-after-recovery``
    Every session admitted before a crash holds a terminal outcome once
    recovery completes (``recovered-after-crash`` when the crash caught
    it mid-flight), and the final drain leaves no session registered.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import tempfile
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.channel.scenario import ScenarioName, scenario_config
from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline
from repro.core.statemachine import ABORT_RECOVERED
from repro.faults.adversary import AdversaryPlan, build_adversary
from repro.faults.plan import (
    FaultPlan,
    LossConfig,
    MessageFaultConfig,
    RegisterCorruptionConfig,
)
from repro.faults.retry import RetryPolicy
from repro.lora.regional import EU433, EU868, UNRESTRICTED
from repro.probing.features import FeatureConfig
from repro.secure import ManagedSecureLink, NonceLedger, RekeyPolicy
from repro.secure.rekey import CLOSE_REASONS
from repro.server.client import (
    ClientOutcome,
    DeviceClient,
    Endpoint,
    channel_from_frame,
    run_behavior,
)
from repro.server.crashpoints import CRASHPOINTS, SITES
from repro.server.journal import JOURNAL_FILENAME, replay_journal
from repro.server.registry import ModelRegistry
from repro.server.server import KeyEstablishmentServer, ServerConfig
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

#: Every invariant the harness checks, in reporting order.
INVARIANTS = (
    "silent-key-mismatch",
    "key-after-failed-verification",
    "uncaught-exception",
    "retry-budget-exceeded",
    "duty-cycle-violated",
    "undetected-replay",
)

#: Payload-level invariants checked during the secure-channel data phase.
PAYLOAD_INVARIANTS = (
    "no-decrypt-under-mismatched-keys",
    "no-nonce-reuse-ever",
    "no-plaintext-on-auth-failure",
    "rekey-preserves-continuity",
)

#: Server-level invariants :func:`run_server_chaos` adds on top.
SERVER_INVARIANTS = (
    "session-leak-after-reap",
    "tick-stall",
    "shed-not-hang",
    "silent-degraded-session",
)

#: Crash-durability invariants :func:`run_restart_chaos` adds on top.
RESTART_INVARIANTS = (
    "no-nonce-reuse-across-restart",
    "no-duplicate-result-delivery",
    "no-orphan-session-after-recovery",
)

#: Numerical slack for the duty-cycle time accounting.
_TIME_EPS = 1e-9


def random_fault_plan(rng: np.random.Generator) -> FaultPlan:
    """One seeded random fault plan (sometimes the null plan)."""
    if rng.random() < 0.25:
        return FaultPlan.none()
    loss = LossConfig(
        rate=float(rng.uniform(0.0, 0.35)),
        mean_burst=float(rng.uniform(1.0, 5.0)),
        snr_dependent=bool(rng.random() < 0.3),
    )
    register = RegisterCorruptionConfig(
        probability=float(rng.uniform(0.0, 0.15)) if rng.random() < 0.4 else 0.0,
        burst_symbols=int(rng.integers(1, 5)),
        magnitude_db=float(rng.uniform(5.0, 30.0)),
    )
    messages = MessageFaultConfig(
        drop_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
        duplicate_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
        reorder_rate=float(rng.uniform(0.0, 0.3)) if rng.random() < 0.5 else 0.0,
    )
    return FaultPlan(loss=loss, register=register, messages=messages)


def random_adversary_plan(rng: np.random.Generator) -> AdversaryPlan:
    """One seeded random attack plan (sometimes no attacker at all)."""
    if rng.random() < 0.25:
        return AdversaryPlan.none()
    return AdversaryPlan(
        probe_replay_rate=float(rng.uniform(0.0, 0.2)) if rng.random() < 0.5 else 0.0,
        probe_injection_rate=(
            float(rng.uniform(0.0, 0.2)) if rng.random() < 0.5 else 0.0
        ),
        injection_rssi_dbm=float(rng.uniform(-90.0, -40.0)),
        jamming_rate=float(rng.uniform(0.0, 0.25)) if rng.random() < 0.5 else 0.0,
        jamming_mean_burst=float(rng.uniform(1.0, 4.0)),
        syndrome_tamper_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.5 else 0.0
        ),
        syndrome_replay_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.4 else 0.0
        ),
        syndrome_spoof_rate=(
            float(rng.uniform(0.0, 1.0)) if rng.random() < 0.4 else 0.0
        ),
        confirmation_tamper=bool(rng.random() < 0.2),
        record_bitflip_rate=float(rng.uniform(0.0, 0.5)) if rng.random() < 0.5 else 0.0,
        record_replay_rate=float(rng.uniform(0.0, 0.5)) if rng.random() < 0.5 else 0.0,
        record_truncate_rate=(
            float(rng.uniform(0.0, 0.4)) if rng.random() < 0.4 else 0.0
        ),
        record_splice_rate=float(rng.uniform(0.0, 0.4)) if rng.random() < 0.4 else 0.0,
    )


def random_retry_policy(rng: np.random.Generator) -> RetryPolicy:
    """One seeded random ARQ policy, sometimes duty-cycle constrained."""
    regional = [None, UNRESTRICTED, EU433, EU868][int(rng.integers(0, 4))]
    return RetryPolicy(
        max_retries=int(rng.integers(0, 5)),
        timeout_s=float(rng.uniform(0.01, 0.1)),
        backoff_base_s=float(rng.uniform(0.01, 0.1)),
        backoff_factor=float(rng.uniform(1.0, 3.0)),
        max_backoff_s=float(rng.uniform(0.5, 3.0)),
        jitter_fraction=float(rng.uniform(0.0, 0.5)),
        regional_plan=regional,
    )


def random_rekey_policy(rng: np.random.Generator) -> RekeyPolicy:
    """One seeded random key-lifecycle policy for the data phase.

    Epoch limits are often tiny so sweeps actually exercise rekeying;
    ``max_rekeys`` is occasionally zero so the rekey-budget close path
    gets traffic too.
    """
    return RekeyPolicy(
        max_records_per_epoch=(
            int(rng.integers(3, 12)) if rng.random() < 0.6 else 4096
        ),
        decrypt_failure_budget=int(rng.integers(2, 7)),
        grace_opens=int(rng.integers(0, 5)),
        max_rekey_attempts=2,
        max_rekeys=int(rng.integers(0, 4)) if rng.random() < 0.3 else None,
    )


@dataclass(frozen=True)
class ChaosViolation:
    """One broken safety invariant.

    Attributes:
        invariant: Which invariant from :data:`INVARIANTS` was violated.
        session: Session index within the sweep (combine with the seed to
            reproduce).
        seed: The sweep seed the session derived from.
        detail: Human-readable description of what went wrong.
    """

    invariant: str
    session: int
    seed: int
    detail: str


@dataclass
class ChaosReport:
    """Aggregated verdict of one chaos sweep.

    Attributes:
        n_sessions: Sessions executed.
        seed: Sweep seed.
        violations: Every broken invariant, in discovery order.
        successes: Sessions that established a confirmed key.
        aborts: Sessions whose final attempt ended in a structured abort.
        abort_reasons: Abort-slug histogram over final attempts.
        failure_reasons: ``failure_reason`` histogram over all sessions.
        attacked_sessions: Sessions that faced a non-null adversary plan.
        faulted_sessions: Sessions that faced a non-null fault plan.
        degraded_sessions: Sessions served in a degraded mode (the
            InferenceGuard's quantizer fallback) -- a counted
            observation, so degradation under chaos is never silent.
        secured_sessions: Successful sessions that ran a secure-channel
            data phase.
        records_delivered: Wire blobs (legitimate and attacked) delivered
            into channels across all data phases.
        payload_failures: Open-failure-slug histogram over the data
            phases (every slug from a closed taxonomy).
        rekeys_completed: Epoch rollovers completed across all channels.
        channels_closed: Channels that ended in a structured close.
        close_reasons: Close-reason histogram over closed channels.
        nonce_reuses: Duplicate (key, direction, sequence) events the
            global nonce ledger witnessed (must be zero).
    """

    n_sessions: int = 0
    seed: int = 0
    violations: List[ChaosViolation] = field(default_factory=list)
    successes: int = 0
    aborts: int = 0
    abort_reasons: Dict[str, int] = field(default_factory=dict)
    failure_reasons: Dict[str, int] = field(default_factory=dict)
    attacked_sessions: int = 0
    faulted_sessions: int = 0
    degraded_sessions: int = 0
    secured_sessions: int = 0
    records_delivered: int = 0
    payload_failures: Dict[str, int] = field(default_factory=dict)
    rekeys_completed: int = 0
    channels_closed: int = 0
    close_reasons: Dict[str, int] = field(default_factory=dict)
    nonce_reuses: int = 0

    @property
    def ok(self) -> bool:
        """Whether every invariant held across the whole sweep."""
        return not self.violations

    def violation_counts(self) -> Dict[str, int]:
        """Per-invariant violation counts (zero-filled for reporting)."""
        counts = {name: 0 for name in INVARIANTS + PAYLOAD_INVARIANTS}
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts

    def merge(self, other: "ChaosReport") -> "ChaosReport":
        """Fold another sweep's counts into this report (returns self)."""
        self.n_sessions += other.n_sessions
        self.violations.extend(other.violations)
        self.successes += other.successes
        self.aborts += other.aborts
        for key, value in other.abort_reasons.items():
            self.abort_reasons[key] = self.abort_reasons.get(key, 0) + value
        for key, value in other.failure_reasons.items():
            self.failure_reasons[key] = self.failure_reasons.get(key, 0) + value
        self.attacked_sessions += other.attacked_sessions
        self.faulted_sessions += other.faulted_sessions
        self.degraded_sessions += other.degraded_sessions
        self.secured_sessions += other.secured_sessions
        self.records_delivered += other.records_delivered
        for key, value in other.payload_failures.items():
            self.payload_failures[key] = self.payload_failures.get(key, 0) + value
        self.rekeys_completed += other.rekeys_completed
        self.channels_closed += other.channels_closed
        for key, value in other.close_reasons.items():
            self.close_reasons[key] = self.close_reasons.get(key, 0) + value
        self.nonce_reuses += other.nonce_reuses
        return self


def _check_invariants(
    outcome,
    policy: RetryPolicy,
    fault_plan: FaultPlan,
    adversary_plan: AdversaryPlan,
    airtime_s: float,
    session_index: int,
    seed: int,
) -> List[ChaosViolation]:
    """All invariant violations one completed session exhibits."""
    session = outcome.session
    violations: List[ChaosViolation] = []

    def violated(invariant: str, detail: str) -> None:
        violations.append(
            ChaosViolation(
                invariant=invariant,
                session=session_index,
                seed=seed,
                detail=detail,
            )
        )

    if outcome.success and (
        not session.keys_match
        or session.abort is not None
        or session.confirmed is False
    ):
        violated(
            "silent-key-mismatch",
            "success=True without a matching confirmed key "
            f"(abort={session.abort}, confirmed={session.confirmed})",
        )
    if (session.abort is not None or session.confirmed is False) and (
        session.final_key_alice is not None or session.final_key_bob is not None
    ):
        violated(
            "key-after-failed-verification",
            f"abort={session.abort} confirmed={session.confirmed} "
            "but key material was released",
        )
    if (
        outcome.retry_budget_remaining is not None
        and outcome.retry_budget_remaining < 0
    ):
        violated(
            "retry-budget-exceeded",
            f"worst round spent {outcome.max_round_retries} retries, "
            f"policy allows {outcome.retry_limit_per_round}",
        )
    if policy.regional_plan is not None and outcome.total_retries > 0:
        floor = outcome.total_retries * policy.min_retry_delay_s(airtime_s)
        if outcome.total_backoff_s < floor - _TIME_EPS:
            violated(
                "duty-cycle-violated",
                f"{outcome.total_retries} retries backed off only "
                f"{outcome.total_backoff_s:.6f}s; regional floor is "
                f"{floor:.6f}s",
            )
    events = outcome.adversary_events or {}
    # A replayed syndrome can only vanish in flight if the message channel
    # drops packets; otherwise its stale nonce must have reached Alice and
    # aborted the session (possibly on an earlier, recovered attempt).
    replay_observable = fault_plan.messages.drop_rate == 0.0
    if (
        events.get("syndromes_replayed", 0) > 0
        and replay_observable
        and not outcome.aborted
        and outcome.aborted_attempts == 0
    ):
        violated(
            "undetected-replay",
            f"{events['syndromes_replayed']} stale-nonce syndromes were "
            "delivered but no attempt aborted",
        )
    return violations


#: The two channel endpoints and who receives what each seals.
_ROLES = ("initiator", "responder")
_PEER = {"initiator": "responder", "responder": "initiator"}


def _payload_canary(
    link: ManagedSecureLink,
    legit: set,
    history: List[bytes],
    label: bytes,
    report: ChaosReport,
) -> Optional[str]:
    """Round-trip one canary in each direction; the failure detail or None.

    Sealing the canary may itself trigger (and complete) another rekey;
    that is fine -- the invariant is that whatever epoch the canary was
    sealed under, it opens first try.
    """
    for sender in _ROLES:
        plaintext = label + sender.encode()
        wire = link.seal(sender, plaintext)
        if wire is None:
            return None  # structured close; checked by the caller
        legit.add(wire)
        history.append(wire)
        result = link.deliver(_PEER[sender], wire)
        if result is None:
            return None
        report.records_delivered += 1
        if not result.ok or result.plaintext != plaintext:
            return (
                f"post-rekey canary from {sender} failed "
                f"(failure={result.failure!r})"
            )
    return None


def _run_payload_phase(
    pipeline: VehicleKeyPipeline,
    outcome,
    rng: np.random.Generator,
    fault_plan: FaultPlan,
    retry_policy: RetryPolicy,
    adversary_plan: AdversaryPlan,
    ledger: NonceLedger,
    foreign_pool: List[bytes],
    session_index: int,
    seed: int,
    report: ChaosReport,
    replay_window_enabled: bool = True,
) -> List[ChaosViolation]:
    """Drive one successful session's secure-channel data phase.

    Both endpoints exchange AEAD records under a random
    :class:`RekeyPolicy` while the session's adversary mounts payload
    attacks; every delivery is checked against the payload invariants.
    ``foreign_pool`` supplies records sealed by *earlier* sessions for
    cross-session splicing, and receives one of this session's records
    for later sessions to splice.
    """
    violations: List[ChaosViolation] = []

    def violated(invariant: str, detail: str) -> None:
        violations.append(
            ChaosViolation(
                invariant=invariant,
                session=session_index,
                seed=seed,
                detail=detail,
            )
        )

    policy = random_rekey_policy(rng)
    link = ManagedSecureLink(
        pipeline,
        outcome.session,
        f"chaos-{seed}-{session_index}",
        policy=policy,
        ledger=ledger,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
        adversary_plan=adversary_plan,
        replay_window_enabled=replay_window_enabled,
    )
    adversary = None
    if adversary_plan.attacks_payload:
        payload_seed = int(rng.integers(0, 2**63 - 1))
        adversary = build_adversary(
            adversary_plan, SeedSequenceFactory(payload_seed)
        )

    legit: set = set()
    history: List[bytes] = []
    rekeys_seen = 0
    n_messages = int(rng.integers(6, 18))
    for message_index in range(n_messages):
        if link.closed:
            break
        sender = _ROLES[int(rng.integers(0, 2))]
        plaintext = f"chaos-{seed}-{session_index}-m{message_index}".encode()
        wire = link.seal(sender, plaintext)
        if wire is None:
            break
        legit.add(wire)
        deliveries = [wire]
        if adversary is not None:
            foreign = foreign_pool[-1] if foreign_pool else None
            deliveries = adversary.attack_record(wire, history, foreign)
        history.append(wire)
        for blob in deliveries:
            result = link.deliver(_PEER[sender], blob)
            if result is None:
                break
            report.records_delivered += 1
            if result.ok:
                if blob not in legit:
                    violated(
                        "no-decrypt-under-mismatched-keys",
                        "a record this channel never sealed opened "
                        f"successfully (message {message_index})",
                    )
                elif blob == wire and result.plaintext != plaintext:
                    violated(
                        "rekey-preserves-continuity",
                        f"legitimate record {message_index} decrypted to "
                        "the wrong plaintext",
                    )
            else:
                report.payload_failures[result.failure] = (
                    report.payload_failures.get(result.failure, 0) + 1
                )
                if result.plaintext is not None:
                    violated(
                        "no-plaintext-on-auth-failure",
                        f"open failed with {result.failure!r} but "
                        "released plaintext",
                    )
                if blob is wire:
                    violated(
                        "rekey-preserves-continuity",
                        f"untouched record {message_index} failed to open "
                        f"({result.failure!r}) at epoch {link.epoch}",
                    )
        if link.rekeys_completed > rekeys_seen and not link.closed:
            rekeys_seen = link.rekeys_completed
            detail = _payload_canary(
                link,
                legit,
                history,
                f"canary-{seed}-{session_index}-".encode(),
                report,
            )
            if detail is not None:
                violated("rekey-preserves-continuity", detail)

    # Batched burst: push the same payload invariants through the batched
    # data plane (``seal_records``/``deliver_records``).  The burst is
    # sized to the epoch's remaining seal capacity so no records-trigger
    # rekey can fire mid-burst (a zero-grace policy would otherwise
    # legitimately expire the pre-rekey records in flight); rekey
    # crossings are the sequential loop's and the canary's job.
    if not link.closed:
        desired = int(rng.integers(3, 7))
        for sender in _ROLES:
            if link.closed:
                break
            endpoint = link.link.endpoint(sender)
            capacity = min(
                policy.max_records_per_epoch - endpoint.send_sequence,
                endpoint.sequence_remaining,
            )
            if capacity < 1:
                continue
            payloads = [
                f"chaos-{seed}-{session_index}-burst-{sender}-{i}".encode()
                for i in range(min(desired, int(capacity)))
            ]
            wires = link.seal_records(sender, payloads)
            legit.update(wires)
            history.extend(wires)
            results = link.deliver_records(_PEER[sender], wires)
            report.records_delivered += len(results)
            for index, result in enumerate(results):
                if result.ok:
                    if result.plaintext != payloads[index]:
                        violated(
                            "rekey-preserves-continuity",
                            f"batched record {index} from {sender} decrypted "
                            "to the wrong plaintext",
                        )
                    continue
                report.payload_failures[result.failure] = (
                    report.payload_failures.get(result.failure, 0) + 1
                )
                if result.plaintext is not None:
                    violated(
                        "no-plaintext-on-auth-failure",
                        f"batched open failed with {result.failure!r} but "
                        "released plaintext",
                    )
                violated(
                    "rekey-preserves-continuity",
                    f"untouched batched record {index} from {sender} failed "
                    f"to open ({result.failure!r}) at epoch {link.epoch}",
                )
            if len(results) < len(wires) and not link.closed:
                violated(
                    "rekey-preserves-continuity",
                    f"batched delivery from {sender} stopped at "
                    f"{len(results)}/{len(wires)} without closing the link",
                )

    report.rekeys_completed += link.rekeys_completed
    if link.closed:
        report.channels_closed += 1
        close = link.close_report
        if close is None or close.reason not in CLOSE_REASONS:
            violated(
                "rekey-preserves-continuity",
                "channel stopped without a structured close report",
            )
        else:
            report.close_reasons[close.reason] = (
                report.close_reasons.get(close.reason, 0) + 1
            )
    if history:
        foreign_pool.append(history[0])
        del foreign_pool[:-4]
    return violations


def run_chaos(
    pipeline: VehicleKeyPipeline,
    n_sessions: int,
    seed: int = 0,
    n_rounds: Optional[int] = None,
    max_attempts: int = 2,
    data_phase: bool = True,
    replay_window_enabled: bool = True,
) -> ChaosReport:
    """Sweep seeded random fault/attack combinations through the pipeline.

    Args:
        pipeline: A trained pipeline; every session probes a fresh
            ``chaos-{seed}-{i}`` episode (an independent channel and
            trajectory realization of the pipeline's scenario).
        n_sessions: Random combinations to run.
        seed: Sweep seed; combination ``i`` derives from ``(seed, i)``, so
            any single session reproduces in isolation.
        n_rounds: Probing rounds per session (default: the pipeline's
            ``session_rounds``).
        max_attempts: Probing bursts allowed per session, letting abort
            recovery (desync re-sync) exercise its re-probe path.
        data_phase: Continue successful sessions into the secure-channel
            data phase and check the payload invariants.
        replay_window_enabled: Test hook -- ``False`` disables the
            channels' replay windows, which a correct harness must report
            as ``no-nonce-reuse-ever`` violations (the deliberately
            broken channel the harness's own tests use to prove the
            invariant actually fires).

    Returns:
        The :class:`ChaosReport`; ``report.ok`` is the harness verdict.
    """
    require_positive(n_sessions, "n_sessions")
    airtime_s = pipeline.config.phy.airtime_s
    report = ChaosReport(n_sessions=n_sessions, seed=seed)
    ledger = NonceLedger()
    foreign_pool: List[bytes] = []
    for index in range(n_sessions):
        rng = np.random.default_rng([seed, index])
        fault_plan = random_fault_plan(rng)
        adversary_plan = random_adversary_plan(rng)
        policy = random_retry_policy(rng)
        if not adversary_plan.is_null:
            report.attacked_sessions += 1
        if not fault_plan.is_null:
            report.faulted_sessions += 1
        try:
            outcome = pipeline.establish_key(
                episode=f"chaos-{seed}-{index}",
                n_rounds=n_rounds,
                fault_plan=fault_plan,
                retry_policy=policy,
                adversary_plan=adversary_plan,
                max_attempts=max_attempts,
            )
        except Exception as error:  # noqa: BLE001 - the invariant IS "never raises"
            report.violations.append(
                ChaosViolation(
                    invariant="uncaught-exception",
                    session=index,
                    seed=seed,
                    detail=f"{type(error).__name__}: {error}",
                )
            )
            continue
        if outcome.success:
            report.successes += 1
        if outcome.degraded_mode is not None:
            report.degraded_sessions += 1
        if outcome.aborted:
            report.aborts += 1
            reason = outcome.abort_reason
            report.abort_reasons[reason] = report.abort_reasons.get(reason, 0) + 1
        if outcome.failure_reason is not None:
            report.failure_reasons[outcome.failure_reason] = (
                report.failure_reasons.get(outcome.failure_reason, 0) + 1
            )
        report.violations.extend(
            _check_invariants(
                outcome,
                policy,
                fault_plan,
                adversary_plan,
                airtime_s,
                index,
                seed,
            )
        )
        if data_phase and outcome.success:
            report.secured_sessions += 1
            try:
                report.violations.extend(
                    _run_payload_phase(
                        pipeline,
                        outcome,
                        rng,
                        fault_plan,
                        policy,
                        adversary_plan,
                        ledger,
                        foreign_pool,
                        index,
                        seed,
                        report,
                        replay_window_enabled=replay_window_enabled,
                    )
                )
            except Exception as error:  # noqa: BLE001 - same contract as above
                report.violations.append(
                    ChaosViolation(
                        invariant="uncaught-exception",
                        session=index,
                        seed=seed,
                        detail=f"data phase: {type(error).__name__}: {error}",
                    )
                )
    report.nonce_reuses = len(ledger.reuses)
    for reuse in ledger.reuses:
        report.violations.append(
            ChaosViolation(
                invariant="no-nonce-reuse-ever",
                session=-1,
                seed=seed,
                detail=f"duplicate {reuse.kind} of sequence {reuse.sequence} "
                f"({reuse.direction}) under key {reuse.key_id}",
            )
        )
    return report


#: Seeded behavior mix the server sweep draws from (weights sum to 1).
_BEHAVIOR_WEIGHTS = (
    ("normal", 0.27),
    ("ping-then-normal", 0.10),
    ("secure-echo", 0.10),
    ("secure-tamper", 0.05),
    ("normal-retry", 0.03),
    ("disconnect-after-hello", 0.08),
    ("disconnect-after-start", 0.08),
    ("slow-loris", 0.07),
    ("corrupt-frame", 0.07),
    ("oversized-frame", 0.05),
    ("unknown-frame", 0.05),
    ("silent", 0.05),
)

#: Probability a client claims the previous client's session id.
_DUPLICATE_ID_RATE = 0.05


def random_client_behavior(rng: np.random.Generator) -> str:
    """One seeded draw from the server sweep's behavior mix."""
    names = [name for name, _ in _BEHAVIOR_WEIGHTS]
    weights = np.array([weight for _, weight in _BEHAVIOR_WEIGHTS])
    return str(rng.choice(names, p=weights / weights.sum()))


@dataclass
class ServerChaosReport:
    """Aggregated verdict of one server chaos sweep.

    Attributes:
        n_clients: Client interactions executed.
        seed: Sweep seed; client ``i`` derives from ``(seed, i)``.
        violations: Every broken invariant (library- and server-level).
        behaviors: How many clients ran each behavior.
        client_kinds: Histogram of terminal client-outcome kinds.
        results: Clients that received an establishment result frame.
        successes: Result frames reporting a confirmed key.
        aborts: Clients answered with a taxonomized abort frame.
        rejections: Clients shed at admission with a structured
            rejection.
        degraded_sessions: Served sessions that used the quantizer
            fallback, per server metrics.
        drain_delivered: Sessions whose verdict the final drain
            delivered.
        drain_aborted: Unstarted sessions the drain aborted with
            ``server-draining``.
        leaked_sessions: Sessions still registered after the drain
            (must be zero).
        secured_clients: Clients that ran a data phase to completion.
        nonce_reuses: Duplicate nonce events the server-wide ledger
            witnessed across every data-phase channel (must be zero).
        metrics: The server's full metrics snapshot.
    """

    n_clients: int = 0
    seed: int = 0
    violations: List[ChaosViolation] = field(default_factory=list)
    behaviors: Dict[str, int] = field(default_factory=dict)
    client_kinds: Dict[str, int] = field(default_factory=dict)
    results: int = 0
    successes: int = 0
    aborts: int = 0
    rejections: int = 0
    degraded_sessions: int = 0
    drain_delivered: int = 0
    drain_aborted: int = 0
    leaked_sessions: int = 0
    secured_clients: int = 0
    nonce_reuses: int = 0
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every invariant held across the whole sweep."""
        return not self.violations

    def violation_counts(self) -> Dict[str, int]:
        """Per-invariant violation counts (zero-filled for reporting)."""
        counts = {
            name: 0
            for name in INVARIANTS + PAYLOAD_INVARIANTS + SERVER_INVARIANTS
        }
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts


def chaos_server_config(n_clients: int) -> ServerConfig:
    """Server knobs tuned so a sweep exercises every robustness path.

    Budgets are tight enough that silent and slow-loris peers are reaped
    within the sweep, and the ingress queue is small enough that a burst
    of honest clients actually triggers load shedding.
    """
    return ServerConfig(
        port=0,
        hello_timeout_s=1.0,
        idle_timeout_s=1.5,
        session_deadline_s=90.0,
        tick_interval_s=0.02,
        max_batch=16,
        queue_limit=max(8, min(16, n_clients)),
        max_sessions=max(64, 2 * n_clients),
        retry_after_s=0.5,
        reap_interval_s=0.25,
    )


def _served_outcome_violations(outcome, index: int, seed: int) -> List[ChaosViolation]:
    """Library-path safety invariants re-checked on a served outcome."""
    session = outcome.session
    violations: List[ChaosViolation] = []
    if outcome.success and (
        not session.keys_match
        or session.abort is not None
        or session.confirmed is False
    ):
        violations.append(
            ChaosViolation(
                invariant="silent-key-mismatch",
                session=index,
                seed=seed,
                detail="served success=True without a matching confirmed key "
                f"(abort={session.abort}, confirmed={session.confirmed})",
            )
        )
    if (session.abort is not None or session.confirmed is False) and (
        session.final_key_alice is not None or session.final_key_bob is not None
    ):
        violations.append(
            ChaosViolation(
                invariant="key-after-failed-verification",
                session=index,
                seed=seed,
                detail=f"served abort={session.abort} confirmed={session.confirmed} "
                "but key material was released",
            )
        )
    return violations


async def _run_server_chaos(
    pipeline: VehicleKeyPipeline,
    n_clients: int,
    seed: int,
    n_rounds: Optional[int],
    config: Optional[ServerConfig],
) -> ServerChaosReport:
    """The async body of :func:`run_server_chaos`."""
    report = ServerChaosReport(n_clients=n_clients, seed=seed)
    observed = {"index": 0, "degraded": 0}

    def on_outcome(session, outcome) -> None:
        """Re-check library invariants on every served outcome."""
        index = observed["index"]
        observed["index"] = index + 1
        if outcome.degraded_mode is not None:
            observed["degraded"] += 1
        report.violations.extend(_served_outcome_violations(outcome, index, seed))

    ledger = NonceLedger()
    server = KeyEstablishmentServer(
        ModelRegistry(pipeline),
        config if config is not None else chaos_server_config(n_clients),
        on_outcome=on_outcome,
        nonce_ledger=ledger,
    )
    await server.start()
    endpoint = Endpoint(port=server.bound_port)

    async def one_client(index: int) -> ClientOutcome:
        """Client ``index``'s seeded behavior draw and execution."""
        rng = np.random.default_rng([seed, index])
        await asyncio.sleep(float(rng.uniform(0.0, 0.5)))
        behavior = random_client_behavior(rng)
        if index > 0 and rng.random() < _DUPLICATE_ID_RATE:
            session_id = f"dev-{seed}-{index - 1}"
        else:
            session_id = f"dev-{seed}-{index}"
        return await run_behavior(
            endpoint,
            behavior,
            session_id,
            episode=f"serve-chaos-{seed}-{index}",
            rounds=n_rounds,
            timeout_s=60.0,
        )

    try:
        outcomes = await asyncio.gather(
            *(one_client(index) for index in range(n_clients))
        )
    finally:
        drain = await server.drain()

    report.drain_delivered = drain.delivered
    report.drain_aborted = drain.aborted_draining
    report.leaked_sessions = drain.leaked
    report.metrics = server.metrics.snapshot()
    report.degraded_sessions = server.metrics.degraded_sessions

    honest = (
        "normal",
        "normal-retry",
        "ping-then-normal",
        "secure-echo",
        "secure-tamper",
    )
    for index, outcome in enumerate(outcomes):
        report.behaviors[outcome.behavior] = (
            report.behaviors.get(outcome.behavior, 0) + 1
        )
        report.client_kinds[outcome.kind] = (
            report.client_kinds.get(outcome.kind, 0) + 1
        )
        if outcome.detail.startswith("payload-invariant:"):
            name = outcome.detail.split(":", 1)[1]
            report.violations.append(
                ChaosViolation(
                    invariant=(
                        name if name in PAYLOAD_INVARIANTS else "shed-not-hang"
                    ),
                    session=index,
                    seed=seed,
                    detail=f"{outcome.behavior!r} client's payload check "
                    f"failed ({outcome.detail})",
                )
            )
            continue
        if outcome.kind == "result":
            report.results += 1
            if outcome.frame is not None and outcome.frame.get("success"):
                report.successes += 1
                if outcome.behavior in ("secure-echo", "secure-tamper"):
                    report.secured_clients += 1
        elif outcome.kind == "abort":
            report.aborts += 1
        elif outcome.kind == "rejected":
            report.rejections += 1
            if outcome.frame is None or "retry_after_s" not in outcome.frame:
                report.violations.append(
                    ChaosViolation(
                        invariant="shed-not-hang",
                        session=index,
                        seed=seed,
                        detail=f"{outcome.behavior!r} client was rejected "
                        "without a retry_after_s hint",
                    )
                )
        elif outcome.kind == "error" or (
            outcome.kind == "closed" and outcome.behavior in honest
        ):
            invariant = "tick-stall" if outcome.behavior in honest else "shed-not-hang"
            report.violations.append(
                ChaosViolation(
                    invariant=invariant,
                    session=index,
                    seed=seed,
                    detail=f"{outcome.behavior!r} client ended with "
                    f"kind={outcome.kind!r} ({outcome.detail or 'no terminal frame'})",
                )
            )
    if report.leaked_sessions > 0 or server.active_sessions > 0:
        report.violations.append(
            ChaosViolation(
                invariant="session-leak-after-reap",
                session=-1,
                seed=seed,
                detail=f"{max(report.leaked_sessions, server.active_sessions)} "
                "sessions still registered after the final drain",
            )
        )
    if server.metrics.degraded_sessions != observed["degraded"]:
        report.violations.append(
            ChaosViolation(
                invariant="silent-degraded-session",
                session=-1,
                seed=seed,
                detail=f"observer saw {observed['degraded']} degraded sessions "
                f"but server metrics counted {server.metrics.degraded_sessions}",
            )
        )
    report.nonce_reuses = len(ledger.reuses)
    for reuse in ledger.reuses:
        report.violations.append(
            ChaosViolation(
                invariant="no-nonce-reuse-ever",
                session=-1,
                seed=seed,
                detail=f"served channel duplicated {reuse.kind} of sequence "
                f"{reuse.sequence} ({reuse.direction}) under key {reuse.key_id}",
            )
        )
    return report


def run_server_chaos(
    pipeline: VehicleKeyPipeline,
    n_clients: int,
    seed: int = 0,
    n_rounds: Optional[int] = None,
    config: Optional[ServerConfig] = None,
) -> ServerChaosReport:
    """Chaos-sweep the *served* path with misbehaving concurrent clients.

    Stands up a real :class:`KeyEstablishmentServer` on a loopback port,
    launches ``n_clients`` concurrent clients whose behaviors (honest,
    disconnecting, slow-loris, corrupt/oversized frames, duplicate ids,
    silent) derive from ``(seed, index)``, then drains the server and
    checks the library invariants on every served outcome plus the
    server-level invariants in :data:`SERVER_INVARIANTS`.

    Args:
        pipeline: A trained pipeline to serve (e.g.
            :func:`build_chaos_pipeline`'s).
        n_clients: Concurrent client interactions to run.
        seed: Sweep seed; any single client reproduces from
            ``(seed, index)``.
        n_rounds: Probing rounds clients request (``None``: the server
            default, i.e. the pipeline's ``session_rounds``).
        config: Server knobs; defaults to :func:`chaos_server_config`.

    Returns:
        The :class:`ServerChaosReport`; ``report.ok`` is the verdict.
    """
    require_positive(n_clients, "n_clients")
    return asyncio.run(
        _run_server_chaos(pipeline, n_clients, seed, n_rounds, config)
    )


def build_chaos_pipeline(
    scenario: ScenarioName = ScenarioName.V2I_URBAN,
    seed: int = 11,
) -> VehicleKeyPipeline:
    """A small trained pipeline sized for chaos sweeps.

    The harness measures protocol safety, not model quality, so the
    pipeline uses the test-sized tiny architecture trained just enough
    that fault-free sessions reach reconciliation and succeed: a sweep
    then exercises every protocol phase (blocks, MACs, confirmation),
    not just early exhaustion.  Training takes ~10 s and a 96-round
    session well under a second, making hundreds of sessions per CI
    smoke run affordable.
    """
    config = PipelineConfig(
        scenario=scenario_config(scenario),
        feature_config=FeatureConfig(window_fraction=0.10, values_per_packet=2),
        seq_len=16,
        hidden_units=16,
        key_bits=32,
        code_dim=24,
        decoder_units=64,
        rounds_per_episode=48,
        session_rounds=96,
        final_key_bits=64,
        alice_confidence_margin=0.12,
        bob_guard_fraction=0.30,
    )
    pipeline = VehicleKeyPipeline(config, seed=seed)
    pipeline.train(n_episodes=100, epochs=60, reconciler_epochs=15)
    return pipeline


# -- kill/restart sweep -------------------------------------------------------

#: Seeded behavior mix of the restart sweep: mostly honest sessions that
#: span crashes, plus walk-away clients that leave orphans behind.
_RESTART_BEHAVIOR_WEIGHTS = (
    ("normal", 0.45),
    ("secure-data", 0.30),
    ("disconnect-after-start", 0.125),
    ("disconnect-after-hello", 0.125),
)

#: Probability a client that received a result re-resumes its token to
#: actively verify idempotent redelivery.
_RESUME_PROBE_RATE = 0.30

#: Most reconnect/resume attempts one client spends chasing a verdict.
_RESUME_ATTEMPTS = 12


def restart_chaos_config(n_clients: int, journal_dir: str) -> ServerConfig:
    """The server sweep's tuned knobs plus crash-durability journaling.

    ``batch`` fsync (small batches) is deliberate: it leaves a window of
    admission and nonce high-water records that a SIGKILL can eat, which
    is exactly the lag recovery must compensate for.  Idle/hello budgets
    are widened past the restart latency so detached sessions survive
    the resumption window.
    """
    return replace(
        chaos_server_config(n_clients),
        journal_dir=str(journal_dir),
        journal_fsync="batch",
        journal_batch_records=8,
        hello_timeout_s=2.0,
        idle_timeout_s=4.0,
    )


def _write_port_file(path: str, port: int) -> None:
    """Publish the child's bound port atomically (write-temp-then-rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(str(port))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


async def _restart_server_child_main(
    pipeline: VehicleKeyPipeline, config: ServerConfig, port_path: str
) -> int:
    """Async body of the forked server child: serve until SIGTERM, drain.

    The journal doubles as the child's witness channel: library-path
    invariant breaches on served outcomes and ledger-witnessed nonce
    reuses are appended as ``violation`` records, so the parent can
    machine-check them after the child is long dead.
    """
    ledger = NonceLedger()
    server = KeyEstablishmentServer(
        ModelRegistry(pipeline), config, nonce_ledger=ledger
    )
    observed = {"index": 0}

    def on_outcome(session, outcome) -> None:
        index = observed["index"]
        observed["index"] = index + 1
        for violation in _served_outcome_violations(outcome, index, 0):
            server.journal_append(
                {
                    "t": "violation",
                    "invariant": violation.invariant,
                    "detail": violation.detail,
                },
                critical=True,
            )

    def on_reuse(reuse) -> None:
        server.journal_append(
            {
                "t": "violation",
                "invariant": "no-nonce-reuse-across-restart",
                "detail": f"served channel duplicated {reuse.kind} of sequence "
                f"{reuse.sequence} ({reuse.direction}) under key {reuse.key_id}",
            },
            critical=True,
        )

    server.on_outcome = on_outcome
    ledger.on_reuse = on_reuse
    await server.start()
    _write_port_file(port_path, int(server.bound_port))
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await stop.wait()
    report = await server.drain()
    return 0 if report.leaked == 0 else 3


def _restart_server_child(
    pipeline: VehicleKeyPipeline,
    config: ServerConfig,
    port_path: str,
    crash_plan: Dict[str, int],
) -> None:  # pragma: no cover - runs in a forked child
    """Forked child entry: arm the crash plan, serve, die or drain."""
    CRASHPOINTS.reset()
    CRASHPOINTS.arm_plan(crash_plan)
    raise SystemExit(
        asyncio.run(_restart_server_child_main(pipeline, config, port_path))
    )


class _ServerCluster:
    """Parent-side spawn/respawn handle over the forked server child.

    Generations ``0 .. restarts-1`` run with a seeded crashpoint armed
    (derived from ``(seed, 7, generation)``); later generations run
    unarmed so the sweep always ends with a clean recovery and drain.
    """

    def __init__(
        self,
        pipeline: VehicleKeyPipeline,
        config: ServerConfig,
        journal_dir: str,
        seed: int,
        n_clients: int,
        restarts: int,
    ) -> None:
        self.pipeline = pipeline
        self.config = config
        self.port_path = Path(journal_dir) / "server.port"
        self.seed = seed
        self.n_clients = n_clients
        self.restarts = restarts
        self.generation = 0
        self.kills = 0
        self.unexpected_exits: List[int] = []
        self.crash_plans: List[Dict[str, int]] = []
        self.process = None
        self._ctx = multiprocessing.get_context("fork")

    def crash_plan(self, generation: int) -> Dict[str, int]:
        """The seeded ``site -> countdown`` plan for one generation."""
        if generation >= self.restarts:
            return {}
        rng = np.random.default_rng([self.seed, 7, generation])
        site = str(rng.choice(np.array(SITES)))
        spans = {
            "admit": (1, max(3, self.n_clients // 2)),
            "tick": (1, 24),
            "deliver": (1, max(3, self.n_clients // 2)),
            "seal": (2, max(6, 2 * self.n_clients)),
        }
        low, high = spans[site]
        return {site: int(rng.integers(low, high + 1))}

    def spawn(self) -> None:
        """Fork the next server generation against the same journal."""
        try:
            os.unlink(self.port_path)
        except FileNotFoundError:
            pass
        plan = self.crash_plan(self.generation)
        self.crash_plans.append(plan)
        self.process = self._ctx.Process(
            target=_restart_server_child,
            args=(self.pipeline, self.config, str(self.port_path), plan),
            daemon=True,
        )
        self.process.start()

    async def port(self, timeout_s: float = 120.0) -> int:
        """Await the *current* generation's published port."""
        deadline = asyncio.get_running_loop().time() + timeout_s
        while asyncio.get_running_loop().time() < deadline:
            try:
                text = self.port_path.read_text(encoding="utf-8").strip()
                if text:
                    return int(text)
            except (FileNotFoundError, ValueError):
                pass
            await asyncio.sleep(0.02)
        raise asyncio.TimeoutError("server port file never appeared")

    async def monitor(self, stop: asyncio.Event) -> None:
        """Respawn the child whenever a crashpoint SIGKILLs it."""
        while not stop.is_set():
            process = self.process
            if process is not None and not process.is_alive():
                code = process.exitcode
                if code == -signal.SIGKILL:
                    self.kills += 1
                else:
                    self.unexpected_exits.append(int(code or 0))
                if self.generation >= self.restarts + 3:
                    return  # runaway backstop; clients will time out
                self.generation += 1
                self.spawn()
            await asyncio.sleep(0.02)

    async def finish(self, timeout_s: float = 60.0) -> Optional[int]:
        """SIGTERM the live child (graceful drain) and reap its exit."""
        process = self.process
        if process is None:
            return None
        if process.is_alive():
            process.terminate()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while process.is_alive() and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.05)
        if process.is_alive():  # pragma: no cover - drain wedged
            process.kill()
        process.join(timeout=5.0)
        return process.exitcode


@dataclass
class RestartChaosReport:
    """Aggregated verdict of one kill/restart chaos sweep.

    Attributes:
        n_clients: Client interactions executed.
        seed: Sweep seed; client ``i`` derives from ``(seed, i)`` and
            generation ``g``'s crash plan from ``(seed, 7, g)``.
        restarts: Armed generations the sweep planned.
        kills: Server children actually SIGKILLed by a crashpoint.
        generations: Server generations that ran (kills + 1 when every
            armed crashpoint fired).
        crash_plans: The seeded ``site -> countdown`` plan per
            generation (empty for unarmed generations).
        unexpected_exits: Child exit codes other than the crashpoint's
            SIGKILL or a clean drain (each is also a violation).
        violations: Every broken invariant, across all four families.
        behaviors: How many clients ran each behavior.
        client_kinds: Histogram of terminal client-outcome kinds.
        results: Clients that received an establishment result frame.
        successes: Result frames reporting a confirmed key.
        resumed_results: Results delivered on a resumed connection.
        recovered_aborts: Clients answered ``recovered-after-crash``.
        aborts: Clients answered with any taxonomized abort frame.
        rejections: Clients shed with a final structured rejection.
        secured_clients: Clients that completed an encrypted echo phase.
        resume_probes: Extra idempotency resumes after a delivered
            result (each must re-answer the identical key digest).
        journal_records: Records the final journal replayed to.
        recoveries: Recovery passes witnessed in the journal.
        orphans_recovered: Orphaned sessions recovery aborted.
        nonce_reuses: Duplicate nonce events the parent-side client
            ledger witnessed across every channel epoch (must be zero).
        drain_metrics: The final generation's journaled metrics
            snapshot.
    """

    n_clients: int = 0
    seed: int = 0
    restarts: int = 0
    kills: int = 0
    generations: int = 1
    crash_plans: List[Dict[str, int]] = field(default_factory=list)
    unexpected_exits: List[int] = field(default_factory=list)
    violations: List[ChaosViolation] = field(default_factory=list)
    behaviors: Dict[str, int] = field(default_factory=dict)
    client_kinds: Dict[str, int] = field(default_factory=dict)
    results: int = 0
    successes: int = 0
    resumed_results: int = 0
    recovered_aborts: int = 0
    aborts: int = 0
    rejections: int = 0
    secured_clients: int = 0
    resume_probes: int = 0
    journal_records: int = 0
    recoveries: int = 0
    orphans_recovered: int = 0
    nonce_reuses: int = 0
    drain_metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every invariant held across the whole sweep."""
        return not self.violations

    def violation_counts(self) -> Dict[str, int]:
        """Per-invariant violation counts (zero-filled for reporting)."""
        counts = {
            name: 0
            for name in (
                INVARIANTS
                + PAYLOAD_INVARIANTS
                + SERVER_INVARIANTS
                + RESTART_INVARIANTS
            )
        }
        for violation in self.violations:
            counts[violation.invariant] = counts.get(violation.invariant, 0) + 1
        return counts


async def _drive_secure_data(
    client: DeviceClient,
    session_id: str,
    ledger: NonceLedger,
    report: RestartChaosReport,
    index: int,
    seed: int,
    epoch_seen: Dict[str, int],
    resume: Optional[str] = None,
) -> ClientOutcome:
    """One secure-data connection attempt: (resume-)hello, verdict, echo.

    Unlike :func:`run_behavior`'s ``secure-echo``, every seal and accept
    registers on the sweep-wide parent ``ledger``, and each result
    frame's channel epoch is checked to strictly advance across resumes
    -- the client-side halves of ``no-nonce-reuse-across-restart``.
    """
    behavior = "secure-data"
    client.data = True
    if resume:
        client.resume = resume
        client.resume_token = resume

    def closed_kind() -> str:
        return "disconnected" if client.resume_token else "closed"

    try:
        await client.connect()
        answer = await client.hello()
        if answer is None:
            return ClientOutcome(
                session_id, behavior, closed_kind(),
                resume_token=client.resume_token,
            )
        if answer.get("type") == "rejected":
            return ClientOutcome(
                session_id, behavior, "rejected", answer,
                resume_token=client.resume_token,
            )
        if not resume:
            await client.send({"type": "start"})
        verdict = await client.recv()
        if verdict is None:
            return ClientOutcome(
                session_id, behavior, closed_kind(),
                resume_token=client.resume_token,
            )
        if verdict.get("type") != "result":
            return ClientOutcome(
                session_id, behavior, "abort", verdict,
                resume_token=client.resume_token,
            )
        channel_frame = verdict.get("channel")
        if not verdict.get("success") or channel_frame is None:
            return ClientOutcome(
                session_id, behavior, "result", verdict,
                resume_token=client.resume_token,
            )
        epoch = int(channel_frame.get("epoch", 0))
        if epoch <= epoch_seen["epoch"]:
            report.violations.append(
                ChaosViolation(
                    invariant="no-nonce-reuse-across-restart",
                    session=index,
                    seed=seed,
                    detail=f"resumed channel re-issued epoch {epoch} "
                    f"(this client already held epoch {epoch_seen['epoch']})",
                )
            )
        epoch_seen["epoch"] = max(epoch_seen["epoch"], epoch)
        channel = channel_from_frame(channel_frame, ledger=ledger)
        payloads = [f"{session_id}-restart-echo-{i}".encode() for i in range(3)]
        for record in channel.seal_records(payloads):
            await client.send({"type": "secure", "record": record.hex()})
        for plaintext in payloads:
            reply = await client.recv()
            if reply is None:
                return ClientOutcome(
                    session_id, behavior, closed_kind(), verdict,
                    resume_token=client.resume_token,
                )
            if reply.get("type") != "secure":
                return ClientOutcome(
                    session_id, behavior, "error", reply,
                    detail="payload-invariant:rekey-preserves-continuity",
                    resume_token=client.resume_token,
                )
            opened = channel.open(bytes.fromhex(str(reply.get("record", ""))))
            if not opened.ok or opened.plaintext != plaintext:
                return ClientOutcome(
                    session_id, behavior, "error", reply,
                    detail="payload-invariant:rekey-preserves-continuity",
                    resume_token=client.resume_token,
                )
        await client.send({"type": "bye"})
        return ClientOutcome(
            session_id, behavior, "result", verdict,
            resume_token=client.resume_token,
        )
    except (OSError, asyncio.TimeoutError, ConnectionError) as error:
        return ClientOutcome(
            session_id,
            behavior,
            "disconnected" if client.resume_token else "error",
            detail=str(error),
            resume_token=client.resume_token,
        )
    finally:
        await client.close()


async def _restart_client(
    cluster: _ServerCluster,
    index: int,
    seed: int,
    n_rounds: Optional[int],
    ledger: NonceLedger,
    report: RestartChaosReport,
) -> ClientOutcome:
    """One client's establish / reconnect / resume loop across crashes."""
    rng = np.random.default_rng([seed, index])
    await asyncio.sleep(float(rng.uniform(0.0, 1.0)))
    names = [name for name, _ in _RESTART_BEHAVIOR_WEIGHTS]
    weights = np.array([weight for _, weight in _RESTART_BEHAVIOR_WEIGHTS])
    behavior = str(rng.choice(names, p=weights / weights.sum()))
    session_id = f"dev-{seed}-{index}"
    episode = f"restart-chaos-{seed}-{index}"
    if behavior in ("disconnect-after-hello", "disconnect-after-start"):
        # Walk-away clients: their abandoned admissions are exactly the
        # orphans recovery must abort; any outcome is legal for them.
        try:
            endpoint = Endpoint(port=await cluster.port())
        except asyncio.TimeoutError:
            return ClientOutcome(session_id, behavior, "error",
                                 detail="server endpoint never appeared")
        return await run_behavior(
            endpoint, behavior, session_id,
            episode=episode, rounds=n_rounds, timeout_s=60.0,
        )
    token = ""
    epoch_seen = {"epoch": -1}
    outcome = ClientOutcome(session_id, behavior, "error", detail="never ran")
    for attempt in range(_RESUME_ATTEMPTS):
        try:
            endpoint = Endpoint(port=await cluster.port())
        except asyncio.TimeoutError:
            outcome = ClientOutcome(
                session_id, behavior, "error",
                detail="server endpoint never reappeared", resume_token=token,
            )
            break
        client = DeviceClient(
            endpoint,
            session_id,
            episode=episode,
            rounds=n_rounds,
            timeout_s=60.0,
            max_admission_retries=4,
            backoff_cap_s=1.0,
            retry_seed=int(rng.integers(0, 2**31)),
        )
        if behavior == "secure-data":
            outcome = await _drive_secure_data(
                client, session_id, ledger, report, index, seed, epoch_seen,
                resume=token or None,
            )
        elif token:
            outcome = await client.resume_session(token)
        else:
            outcome = await client.establish(behavior=behavior)
        token = outcome.resume_token or token
        if outcome.kind in ("result", "abort"):
            break
        if outcome.kind == "rejected":
            reason = str((outcome.frame or {}).get("reason") or "")
            if reason == "unknown-resumption-token":
                # The admit record died un-fsynced with the crash; the
                # contract is a fresh session, never a duplicate key.
                token = ""
            elif reason not in ("duplicate-session", "server-overloaded"):
                break  # final structured rejection
        await asyncio.sleep(0.1 * (attempt + 1) + float(rng.uniform(0.0, 0.3)))
    if (
        outcome.kind == "result"
        and token
        and float(rng.random()) < _RESUME_PROBE_RATE
    ):
        # Actively verify idempotent redelivery: re-resuming a delivered
        # result must re-answer the identical key digest, never a second
        # key and never an abort (results are journaled before delivery).
        report.resume_probes += 1
        try:
            probe = DeviceClient(
                Endpoint(port=await cluster.port()),
                session_id,
                timeout_s=60.0,
                max_admission_retries=6,
                backoff_cap_s=1.0,
                retry_seed=int(rng.integers(0, 2**31)),
            )
            again = await probe.resume_session(token)
        except asyncio.TimeoutError:
            again = ClientOutcome(session_id, "resume", "error")
        first = (outcome.frame or {}).get("key_digest")
        if again.kind == "result":
            second = (again.frame or {}).get("key_digest")
            if second != first:
                report.violations.append(
                    ChaosViolation(
                        invariant="no-duplicate-result-delivery",
                        session=index,
                        seed=seed,
                        detail=f"re-resume answered key digest {second!r} "
                        f"after the first delivery answered {first!r}",
                    )
                )
        elif again.kind == "abort" or (
            again.kind == "rejected"
            and (again.frame or {}).get("reason") == "unknown-resumption-token"
        ):
            report.violations.append(
                ChaosViolation(
                    invariant="no-duplicate-result-delivery",
                    session=index,
                    seed=seed,
                    detail=f"re-resume of a delivered result answered "
                    f"{again.kind!r} ({(again.frame or {}).get('reason')!r})",
                )
            )
    return outcome


def _verify_restart_journal(records: List[dict], seed: int):
    """Machine-check the three restart invariants from the journal alone.

    Returns ``(violations, stats)``.  The checks are purely structural,
    so a torn or lying server cannot pass by construction: high-water
    marks must never regress, channel epochs must strictly advance per
    token, every admission preceding a recovery marker must precede a
    terminal outcome, and one token must never map to two key digests.
    """
    violations: List[ChaosViolation] = []
    stats = {
        "recoveries": 0,
        "orphans": 0,
        "drains": 0,
        "leaked": 0,
        "drain_metrics": {},
    }
    admitted: Dict[str, int] = {}
    outcomes: Dict[str, List[tuple]] = {}
    nonce_high: Dict[tuple, int] = {}
    epochs: Dict[str, int] = {}
    for pos, record in enumerate(records):
        kind = record.get("t")
        token = str(record.get("token", ""))
        if kind == "admit":
            admitted.setdefault(token, pos)
        elif kind == "outcome":
            frame = record.get("frame") or {}
            outcomes.setdefault(token, []).append(
                (
                    pos,
                    str(record.get("kind", "")),
                    frame.get("key_digest"),
                    str(record.get("reason", "")),
                )
            )
        elif kind == "channel":
            epoch = int(record.get("epoch", 0))
            last = epochs.get(token, -1)
            if epoch <= last:
                violations.append(
                    ChaosViolation(
                        invariant="no-nonce-reuse-across-restart",
                        session=-1,
                        seed=seed,
                        detail=f"token {token[:8]}... re-journaled channel "
                        f"epoch {epoch} after already reaching {last}",
                    )
                )
            epochs[token] = max(last, epoch)
        elif kind == "nonce":
            key = (str(record.get("key", "")), int(record.get("dir", 0)))
            high = int(record.get("high", 0))
            if high <= nonce_high.get(key, -1):
                violations.append(
                    ChaosViolation(
                        invariant="no-nonce-reuse-across-restart",
                        session=-1,
                        seed=seed,
                        detail=f"seal high-water for key {key[0][:16]}... "
                        f"dir {key[1]} regressed to {high} from "
                        f"{nonce_high[key]}",
                    )
                )
            nonce_high[key] = max(nonce_high.get(key, -1), high)
        elif kind == "recovery":
            stats["recoveries"] += 1
            stats["orphans"] += int(record.get("orphans", 0))
            for admit_token, admit_pos in admitted.items():
                if admit_pos < pos and not any(
                    outcome_pos < pos
                    for outcome_pos, *_ in outcomes.get(admit_token, [])
                ):
                    violations.append(
                        ChaosViolation(
                            invariant="no-orphan-session-after-recovery",
                            session=-1,
                            seed=seed,
                            detail=f"recovery left admitted token "
                            f"{admit_token[:8]}... without a terminal outcome",
                        )
                    )
        elif kind == "violation":
            violations.append(
                ChaosViolation(
                    invariant=str(record.get("invariant", "uncaught-exception")),
                    session=-1,
                    seed=seed,
                    detail=f"server child witnessed: {record.get('detail', '')}",
                )
            )
        elif kind == "drain":
            stats["drains"] += 1
            stats["leaked"] = int(record.get("leaked", 0))
            stats["drain_metrics"] = record.get("metrics") or {}
            if int(record.get("leaked", 0)) > 0:
                violations.append(
                    ChaosViolation(
                        invariant="no-orphan-session-after-recovery",
                        session=-1,
                        seed=seed,
                        detail=f"drain left {record.get('leaked')} "
                        "session(s) registered",
                    )
                )
            if int(record.get("ledger_reuses", 0)) > 0:
                violations.append(
                    ChaosViolation(
                        invariant="no-nonce-reuse-across-restart",
                        session=-1,
                        seed=seed,
                        detail=f"server ledger witnessed "
                        f"{record.get('ledger_reuses')} nonce reuse(s)",
                    )
                )
    for token, entries in outcomes.items():
        digests = {
            digest for _, okind, digest, _ in entries if okind == "result" and digest
        }
        if len(digests) > 1:
            violations.append(
                ChaosViolation(
                    invariant="no-duplicate-result-delivery",
                    session=-1,
                    seed=seed,
                    detail=f"token {token[:8]}... holds result outcomes under "
                    f"{len(digests)} distinct key digests",
                )
            )
        result_positions = [p for p, okind, _, _ in entries if okind == "result"]
        if result_positions and any(
            okind == "abort" and reason == ABORT_RECOVERED
            and pos > min(result_positions)
            for pos, okind, _, reason in entries
        ):
            violations.append(
                ChaosViolation(
                    invariant="no-duplicate-result-delivery",
                    session=-1,
                    seed=seed,
                    detail=f"token {token[:8]}... was orphan-aborted after "
                    "its result was already journaled",
                )
            )
    return violations, stats


async def _run_restart_chaos(
    pipeline: VehicleKeyPipeline,
    n_clients: int,
    seed: int,
    n_rounds: Optional[int],
    journal_dir: str,
    restarts: int,
    config: Optional[ServerConfig],
) -> RestartChaosReport:
    """The async body of :func:`run_restart_chaos`."""
    report = RestartChaosReport(n_clients=n_clients, seed=seed, restarts=restarts)
    if config is None:
        config = restart_chaos_config(n_clients, journal_dir)
    cluster = _ServerCluster(pipeline, config, journal_dir, seed, n_clients, restarts)
    cluster.spawn()
    stop = asyncio.Event()
    monitor = asyncio.create_task(cluster.monitor(stop))
    ledger = NonceLedger()
    try:
        outcomes = await asyncio.gather(
            *(
                _restart_client(cluster, index, seed, n_rounds, ledger, report)
                for index in range(n_clients)
            )
        )
    finally:
        stop.set()
        await monitor
        exit_code = await cluster.finish()
        if exit_code == -signal.SIGKILL:
            # An armed crashpoint fired during the drain itself: run one
            # final unarmed generation so recovery and a graceful drain
            # complete against the same journal before verification.
            cluster.kills += 1
            cluster.generation = max(cluster.generation + 1, restarts)
            cluster.spawn()
            await cluster.port()
            exit_code = await cluster.finish()
    report.kills = cluster.kills
    report.generations = cluster.generation + 1
    report.crash_plans = cluster.crash_plans
    report.unexpected_exits = list(cluster.unexpected_exits)
    if exit_code not in (0, None):
        report.unexpected_exits.append(int(exit_code))
    for code in report.unexpected_exits:
        report.violations.append(
            ChaosViolation(
                invariant="no-orphan-session-after-recovery",
                session=-1,
                seed=seed,
                detail=f"server child exited with unexpected code {code} "
                "(crashpoints only ever SIGKILL; a drain exits 0)",
            )
        )
    honest = ("normal", "secure-data")
    for index, outcome in enumerate(outcomes):
        report.behaviors[outcome.behavior] = (
            report.behaviors.get(outcome.behavior, 0) + 1
        )
        report.client_kinds[outcome.kind] = (
            report.client_kinds.get(outcome.kind, 0) + 1
        )
        if outcome.detail.startswith("payload-invariant:"):
            name = outcome.detail.split(":", 1)[1]
            report.violations.append(
                ChaosViolation(
                    invariant=(
                        name if name in PAYLOAD_INVARIANTS else "shed-not-hang"
                    ),
                    session=index,
                    seed=seed,
                    detail=f"{outcome.behavior!r} client's payload check "
                    f"failed ({outcome.detail})",
                )
            )
            continue
        if outcome.kind == "result":
            report.results += 1
            if outcome.frame is not None and outcome.frame.get("success"):
                report.successes += 1
                if outcome.behavior == "secure-data":
                    report.secured_clients += 1
            if outcome.frame is not None and outcome.frame.get("resumed"):
                report.resumed_results += 1
        elif outcome.kind == "abort":
            report.aborts += 1
            if (
                outcome.frame is not None
                and outcome.frame.get("reason") == ABORT_RECOVERED
            ):
                report.recovered_aborts += 1
        elif outcome.kind == "rejected":
            report.rejections += 1
        elif outcome.behavior in honest:
            report.violations.append(
                ChaosViolation(
                    invariant="shed-not-hang",
                    session=index,
                    seed=seed,
                    detail=f"{outcome.behavior!r} client never reached a "
                    f"structured verdict across {_RESUME_ATTEMPTS} "
                    f"reconnects (kind={outcome.kind!r}, "
                    f"{outcome.detail or 'no terminal frame'})",
                )
            )
    report.nonce_reuses = len(ledger.reuses)
    for reuse in ledger.reuses:
        report.violations.append(
            ChaosViolation(
                invariant="no-nonce-reuse-across-restart",
                session=-1,
                seed=seed,
                detail=f"client-side ledger duplicated {reuse.kind} of "
                f"sequence {reuse.sequence} ({reuse.direction}) under key "
                f"{reuse.key_id}",
            )
        )
    replay = replay_journal(Path(journal_dir) / JOURNAL_FILENAME)
    report.journal_records = len(replay.records)
    if not replay.clean:
        report.violations.append(
            ChaosViolation(
                invariant="no-orphan-session-after-recovery",
                session=-1,
                seed=seed,
                detail=f"journal tail still torn after the final drain "
                f"({replay.torn})",
            )
        )
    journal_violations, stats = _verify_restart_journal(replay.records, seed)
    report.violations.extend(journal_violations)
    report.recoveries = stats["recoveries"]
    report.orphans_recovered = stats["orphans"]
    report.drain_metrics = stats["drain_metrics"]
    if stats["drains"] == 0:
        report.violations.append(
            ChaosViolation(
                invariant="no-orphan-session-after-recovery",
                session=-1,
                seed=seed,
                detail="no drain record reached the journal -- the final "
                "generation never drained gracefully",
            )
        )
    return report


def run_restart_chaos(
    pipeline: VehicleKeyPipeline,
    n_clients: int,
    seed: int = 0,
    n_rounds: Optional[int] = None,
    journal_dir: Optional[str] = None,
    restarts: int = 2,
    config: Optional[ServerConfig] = None,
) -> RestartChaosReport:
    """Kill/restart-sweep the served path against its durability contract.

    Forks a real :class:`KeyEstablishmentServer` into a child process
    whose :mod:`~repro.server.crashpoints` are armed from
    ``(seed, 7, generation)``, launches ``n_clients`` seeded clients
    (honest establishments, encrypted data phases, walk-away orphans),
    lets the armed crashpoint SIGKILL the child mid-sweep, restarts a
    fresh server generation against the same write-ahead journal while
    clients reconnect with their resumption tokens, and finally drains
    gracefully and machine-checks :data:`RESTART_INVARIANTS` (plus the
    library and payload invariants the child re-checked in-process) from
    the journal, the parent-side client nonce ledger, and active
    idempotency probes.

    Args:
        pipeline: A trained pipeline to serve (e.g.
            :func:`build_chaos_pipeline`'s).
        n_clients: Concurrent client interactions to run.
        seed: Sweep seed; one seed reproduces clients, behaviors, crash
            plans and restart timing.
        n_rounds: Probing rounds clients request (``None``: the server
            default).
        journal_dir: Journal directory shared by every server
            generation; a fresh temporary directory when ``None``.
        restarts: Armed generations (SIGKILLs) to plan; later
            generations run unarmed so the sweep always ends clean.
        config: Server knobs; defaults to :func:`restart_chaos_config`.

    Returns:
        The :class:`RestartChaosReport`; ``report.ok`` is the verdict.
    """
    require_positive(n_clients, "n_clients")
    if restarts < 0:
        raise ValueError(f"restarts must be >= 0, got {restarts}")
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="vk-restart-chaos-")
    return asyncio.run(
        _run_restart_chaos(
            pipeline, n_clients, seed, n_rounds, str(journal_dir), restarts, config
        )
    )
