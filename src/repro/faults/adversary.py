"""Active-adversary injection: replay, injection, spoofing, jamming.

The link/register/message faults of :mod:`repro.faults.plan` model
*nature*; this module models an *attacker*.  A frozen
:class:`AdversaryPlan` declares which attacks to mount and how often, and
a seeded :class:`ActiveAdversary` executes them against one session:

- **probe replay** -- retransmit a stale captured probe; Bob's
  sequence-window check must reject it (and the collision costs Alice a
  retry), never fold it into the trace;
- **probe injection** -- transmit a forged probe carrying the *current*
  sequence number at an attacker-chosen power, poisoning Bob's RSSI
  measurement for that round (reciprocity breaks, so the downstream MAC /
  confirmation layers must catch the damage);
- **reactive jamming** -- burst interference on either link direction,
  driven by the same Gilbert-Elliott chain the natural loss model uses;
- **syndrome tamper/replay/spoof** -- modify Bob's syndromes in flight,
  replay stale-nonce syndromes, or inject wholly forged ones (the nonce is
  public, so a spoofer can copy it; the MAC is what stops them);
- **confirmation tamper** -- corrupt the final key-confirmation hashes;
- **payload attacks** -- once a key is established and the secure-channel
  data phase begins (:mod:`repro.secure`), flip ciphertext bits, truncate
  records, replay captured records, or splice in records sealed under a
  different session's keys.  The AEAD layer must answer each with its
  closed failure taxonomy and never release plaintext.

Attacks compose with a :class:`~repro.faults.plan.FaultPlan`: natural loss
and adversarial interference stack.  All adversary randomness comes from
dedicated named seed streams (``adversary-*``), so enabling an attack
never perturbs the legitimate measurement-noise streams -- a null plan is
bit-identical to no adversary at all.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.faults.link import DIRECTIONS, GilbertElliottProcess
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_in_range

#: Nonce an adversary replays from a "previous session" -- any value that
#: differs from the live session's fresh nonce exercises the same check.
STALE_NONCE = b"\x00stale!\x00"


@dataclass(frozen=True)
class AdversaryPlan:
    """Declarative description of one active attacker.

    Attributes:
        probe_replay_rate: Per-attempt probability the attacker replays a
            stale captured probe during the probe slot.
        probe_injection_rate: Per-attempt probability the attacker injects
            a forged probe with the current sequence number.
        injection_rssi_dbm: Received power of injected probes at Bob.
        injection_jitter_db: Std-dev of the injected probe's sample noise.
        jamming_rate: Stationary probability of a reactive-jamming burst
            hitting one transmission (per direction).
        jamming_mean_burst: Mean jamming-burst length in packets.
        syndrome_tamper_rate: Per-message probability a syndrome's payload
            is modified in flight.
        syndrome_replay_rate: Per-message probability a stale-nonce
            syndrome is substituted for Bob's.
        syndrome_spoof_rate: Per request round, probability the attacker
            injects one forged syndrome message (public nonce copied,
            forged MAC).
        confirmation_tamper: Corrupt the key-confirmation hash exchange.
        record_bitflip_rate: Per-record probability one bit of a sealed
            AEAD record is flipped in flight during the data phase.
        record_replay_rate: Per-record probability a previously captured
            record is re-delivered after the legitimate one.
        record_truncate_rate: Per-record probability the record is cut
            short in flight.
        record_splice_rate: Per-record probability a record sealed under a
            *different* session's keys is substituted (cross-session
            splicing).
    """

    probe_replay_rate: float = 0.0
    probe_injection_rate: float = 0.0
    injection_rssi_dbm: float = -55.0
    injection_jitter_db: float = 1.0
    jamming_rate: float = 0.0
    jamming_mean_burst: float = 3.0
    syndrome_tamper_rate: float = 0.0
    syndrome_replay_rate: float = 0.0
    syndrome_spoof_rate: float = 0.0
    confirmation_tamper: bool = False
    record_bitflip_rate: float = 0.0
    record_replay_rate: float = 0.0
    record_truncate_rate: float = 0.0
    record_splice_rate: float = 0.0

    def __post_init__(self) -> None:
        require_in_range(self.probe_replay_rate, 0.0, 1.0, "probe_replay_rate")
        require_in_range(
            self.probe_injection_rate, 0.0, 1.0, "probe_injection_rate"
        )
        require(self.injection_jitter_db >= 0.0, "injection_jitter_db must be >= 0")
        require_in_range(self.jamming_rate, 0.0, 0.999, "jamming_rate")
        require(self.jamming_mean_burst >= 1.0, "jamming_mean_burst must be >= 1")
        require_in_range(self.syndrome_tamper_rate, 0.0, 1.0, "syndrome_tamper_rate")
        require_in_range(self.syndrome_replay_rate, 0.0, 1.0, "syndrome_replay_rate")
        require_in_range(self.syndrome_spoof_rate, 0.0, 1.0, "syndrome_spoof_rate")
        require_in_range(self.record_bitflip_rate, 0.0, 1.0, "record_bitflip_rate")
        require_in_range(self.record_replay_rate, 0.0, 1.0, "record_replay_rate")
        require_in_range(
            self.record_truncate_rate, 0.0, 1.0, "record_truncate_rate"
        )
        require_in_range(self.record_splice_rate, 0.0, 1.0, "record_splice_rate")

    @classmethod
    def none(cls) -> "AdversaryPlan":
        """The identity plan: no attack at all."""
        return cls()

    @property
    def is_null(self) -> bool:
        """True when the plan mounts no attack (identical to no adversary)."""
        return not (
            self.probe_replay_rate > 0.0
            or self.probe_injection_rate > 0.0
            or self.jamming_rate > 0.0
            or self.syndrome_tamper_rate > 0.0
            or self.syndrome_replay_rate > 0.0
            or self.syndrome_spoof_rate > 0.0
            or self.confirmation_tamper
            or self.record_bitflip_rate > 0.0
            or self.record_replay_rate > 0.0
            or self.record_truncate_rate > 0.0
            or self.record_splice_rate > 0.0
        )

    @property
    def attacks_probing(self) -> bool:
        """Whether any probing-layer attack is enabled."""
        return (
            self.probe_replay_rate > 0.0
            or self.probe_injection_rate > 0.0
            or self.jamming_rate > 0.0
        )

    @property
    def attacks_messages(self) -> bool:
        """Whether any reconciliation-message attack is enabled."""
        return (
            self.syndrome_tamper_rate > 0.0
            or self.syndrome_replay_rate > 0.0
            or self.syndrome_spoof_rate > 0.0
        )

    @property
    def attacks_payload(self) -> bool:
        """Whether any data-phase (secure-record) attack is enabled."""
        return (
            self.record_bitflip_rate > 0.0
            or self.record_replay_rate > 0.0
            or self.record_truncate_rate > 0.0
            or self.record_splice_rate > 0.0
        )


class ActiveAdversary:
    """One session's worth of seeded active attacks.

    All randomness comes from named streams of ``seeds``
    (``adversary-probe``, ``adversary-message``, ``adversary-payload``,
    ``adversary-jam-*``), so
    the attack pattern is reproducible per session and independent of the
    legitimate protocol's streams.  The adversary also keeps per-attack
    event counters so detection rates can be computed against what was
    actually launched.

    Args:
        plan: What to mount.
        seeds: Seed factory, normally the probing episode's.
    """

    def __init__(self, plan: AdversaryPlan, seeds: SeedSequenceFactory):
        self.plan = plan
        self._probe_rng = seeds.generator("adversary-probe")
        self._message_rng = seeds.generator("adversary-message")
        self._payload_rng = seeds.generator("adversary-payload")
        self._jam: Dict[str, GilbertElliottProcess] = {
            direction: GilbertElliottProcess(
                plan.jamming_rate,
                plan.jamming_mean_burst,
                seeds.generator(f"adversary-jam-{direction}"),
            )
            for direction in DIRECTIONS
        }
        #: Attack-event counters, keyed by event name.
        self.events: Dict[str, int] = {
            "probes_replayed": 0,
            "probes_injected": 0,
            "transmissions_jammed": 0,
            "syndromes_tampered": 0,
            "syndromes_replayed": 0,
            "syndromes_spoofed": 0,
            "confirmations_tampered": 0,
            "records_bitflipped": 0,
            "records_replayed": 0,
            "records_truncated": 0,
            "records_spliced": 0,
        }

    def event_counts(self) -> Dict[str, int]:
        """Snapshot of the attack-event counters (copy)."""
        return dict(self.events)

    @property
    def attacks_launched(self) -> int:
        """Total attack events mounted so far."""
        return sum(self.events.values())

    # -- probing-layer attacks -------------------------------------------------
    def jams(self, direction: str) -> bool:
        """Whether a reactive-jamming burst destroys one transmission."""
        if self.plan.jamming_rate <= 0.0:
            return False
        jammed = self._jam[direction].step()
        if jammed:
            self.events["transmissions_jammed"] += 1
        return jammed

    def replays_probe(self) -> bool:
        """Whether the attacker replays a stale probe this attempt."""
        if self.plan.probe_replay_rate <= 0.0:
            return False
        fired = bool(self._probe_rng.random() < self.plan.probe_replay_rate)
        if fired:
            self.events["probes_replayed"] += 1
        return fired

    def injects_probe(self) -> bool:
        """Whether the attacker injects a forged current-seq probe."""
        if self.plan.probe_injection_rate <= 0.0:
            return False
        fired = bool(self._probe_rng.random() < self.plan.probe_injection_rate)
        if fired:
            self.events["probes_injected"] += 1
        return fired

    def injected_register_samples(self, n_samples: int) -> np.ndarray:
        """The register-RSSI vector Bob records for an injected probe."""
        return self.plan.injection_rssi_dbm + (
            self.plan.injection_jitter_db * self._probe_rng.standard_normal(n_samples)
        )

    # -- reconciliation-message attacks ----------------------------------------
    def corrupt_syndrome(self, message):
        """Maybe tamper with / replay-substitute one syndrome in flight.

        Draw order is fixed (tamper, then replay) so the attack pattern is
        deterministic in the seed regardless of which rates are enabled.
        Returns the (possibly modified) message.
        """
        if self.plan.syndrome_tamper_rate > 0.0 and bool(
            self._message_rng.random() < self.plan.syndrome_tamper_rate
        ):
            self.events["syndromes_tampered"] += 1
            bad = np.asarray(message.syndrome, dtype=float).copy()
            if bad.size:
                position = int(self._message_rng.integers(0, bad.size))
                bad[position] += float(self._message_rng.normal(0.0, 4.0)) + 2.0
            message = dataclasses.replace(message, syndrome=bad)
        if self.plan.syndrome_replay_rate > 0.0 and bool(
            self._message_rng.random() < self.plan.syndrome_replay_rate
        ):
            self.events["syndromes_replayed"] += 1
            message = dataclasses.replace(message, session_nonce=STALE_NONCE)
        return message

    def spoof_syndromes(self, nonce: bytes, n_blocks: int, code_dim: int) -> List:
        """Forged syndrome messages injected after one request round.

        The session nonce is public protocol state, so the spoofer copies
        it; the MAC key is not, so the forged MAC can only be noise.  At
        most one spoof per request round keeps the attack rate
        interpretable.
        """
        from repro.core.session import SyndromeMessage

        if self.plan.syndrome_spoof_rate <= 0.0 or n_blocks <= 0:
            return []
        if not bool(self._message_rng.random() < self.plan.syndrome_spoof_rate):
            return []
        self.events["syndromes_spoofed"] += 1
        block = int(self._message_rng.integers(0, n_blocks))
        syndrome = self._message_rng.normal(0.0, 2.0, size=code_dim)
        mac = self._message_rng.bytes(16)
        return [
            SyndromeMessage(
                block_index=block,
                session_nonce=nonce,
                syndrome=syndrome,
                mac=mac,
            )
        ]

    # -- data-phase (secure-record) attacks ------------------------------------
    def attack_record(
        self,
        data: bytes,
        history: List[bytes],
        foreign: Optional[bytes] = None,
    ) -> List[bytes]:
        """The wire blobs delivered in place of one sealed AEAD record.

        Draw order is fixed (bitflip, truncate, splice, replay) so the
        attack pattern is deterministic in the seed regardless of which
        rates are enabled.  ``history`` is the caller's capture log of
        previously delivered records (the replay pool); ``foreign`` is a
        record sealed under a *different* session's keys, used for
        cross-session splicing when provided.

        Returns the list of byte strings to deliver: the (possibly
        mutated or substituted) record, optionally followed by one
        replayed capture.  Never returns an empty list -- even a
        truncated record still arrives as *something* on the wire.
        """
        plan = self.plan
        out = data
        if plan.record_bitflip_rate > 0.0 and bool(
            self._payload_rng.random() < plan.record_bitflip_rate
        ):
            self.events["records_bitflipped"] += 1
            position = int(self._payload_rng.integers(0, len(out)))
            flipped = out[position] ^ (1 << int(self._payload_rng.integers(0, 8)))
            out = out[:position] + bytes([flipped]) + out[position + 1 :]
        if plan.record_truncate_rate > 0.0 and bool(
            self._payload_rng.random() < plan.record_truncate_rate
        ):
            self.events["records_truncated"] += 1
            out = out[: int(self._payload_rng.integers(0, len(out)))]
        if (
            foreign is not None
            and plan.record_splice_rate > 0.0
            and bool(self._payload_rng.random() < plan.record_splice_rate)
        ):
            self.events["records_spliced"] += 1
            out = foreign
        deliveries = [out]
        if (
            history
            and plan.record_replay_rate > 0.0
            and bool(self._payload_rng.random() < plan.record_replay_rate)
        ):
            self.events["records_replayed"] += 1
            deliveries.append(
                history[int(self._payload_rng.integers(0, len(history)))]
            )
        return deliveries

    def tamper_confirmation(self, payload: bytes) -> bytes:
        """Maybe corrupt one key-confirmation hash in flight."""
        if not self.plan.confirmation_tamper or not payload:
            return payload
        self.events["confirmations_tampered"] += 1
        position = int(self._message_rng.integers(0, len(payload)))
        flipped = payload[position] ^ (1 << int(self._message_rng.integers(0, 8)))
        return payload[:position] + bytes([flipped]) + payload[position + 1 :]


def build_adversary(
    plan: Optional[AdversaryPlan], seeds: SeedSequenceFactory
) -> Optional[ActiveAdversary]:
    """An :class:`ActiveAdversary` for a non-null plan, else ``None``.

    Mirrors the fault layer's convention: a null plan is treated exactly
    like no adversary at all, keeping the unattacked path bit-identical.
    """
    if plan is None or plan.is_null:
        return None
    return ActiveAdversary(plan, seeds)
