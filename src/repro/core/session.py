"""Authenticated two-party key-agreement session (message level).

Runs the key-derivation half of Vehicle-Key over an already-collected
probing trace:

1. **Windowing** -- both sides extract arRSSI windows.
2. **Bit extraction** -- Alice runs the prediction/quantization model;
   Bob runs his guard-banded multi-bit quantizer (paper Sec. IV-B).
3. **Consensus masking** -- Bob publishes which samples his guard bands
   kept; Alice publishes which samples her quantization head was
   confident about (sigmoid output far from 0.5).  Both keep only the
   intersection -- the standard public index-exchange step of
   guard-banded quantizers.
4. **Reconciliation** -- the surviving bits are pooled into fixed-size
   blocks; for each block Bob sends one autoencoder syndrome plus a MAC
   (Sec. IV-C).  A block whose reconciliation failed, or whose syndrome
   was tampered with, fails verification and is discarded.
5. **Privacy amplification** -- verified blocks are hashed into the
   final 128-bit key.
6. **Key confirmation** -- both parties exchange domain-separated hash
   commitments over the amplified key; a mismatch aborts the session and
   releases no key, so a reported success is cryptographically grounded
   rather than inferred from bit agreement.

The whole exchange runs under an explicit authenticated state machine
(:mod:`repro.core.statemachine`): attacker-controlled input -- replayed
nonces, malformed or spoofed syndromes, wholesale MAC failure, tampered
confirmations -- drives the session into a terminal, machine-readable
:class:`~repro.core.statemachine.SessionAbort` instead of raising or
silently corrupting state.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.guard import InferenceGuard
from repro.core.model import PredictionQuantizationModel
from repro.core.statemachine import (
    ABORT_CONFIRMATION,
    ABORT_MAC,
    ABORT_MALFORMED,
    ABORT_REPLAY,
    SessionAbort,
    SessionState,
    SessionStateMachine,
)
from repro.faults.adversary import ActiveAdversary
from repro.faults.messages import LossyMessageChannel
from repro.metrics.agreement import AgreementSummary, agreement_statistics
from repro.privacy.amplification import amplify_to_bytes
from repro.probing.dataset import build_dataset
from repro.probing.features import FeatureConfig, arrssi_sequences
from repro.probing.trace import ProbeTrace
from repro.quantization.base import consensus_mask
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.reconciliation.mac import MAC_BYTES, compute_mac, verify_mac
from repro.utils.validation import require, require_in_range, require_positive


@dataclass(frozen=True)
class SyndromeMessage:
    """What Bob transmits per reconciliation block.

    Attributes:
        block_index: Which pooled key block this syndrome covers.
        session_nonce: Fresh per-session nonce (replay protection).
        syndrome: Bob's encoder output ``y_Bob``.
        mac: ``MAC(K'_Bob, nonce || block || syndrome)``.
    """

    block_index: int
    session_nonce: bytes
    syndrome: np.ndarray
    mac: bytes

    def payload_bytes(self) -> int:
        """Serialized size charged against the LoRa airtime budget."""
        return 4 + len(self.session_nonce) + 4 * self.syndrome.size + MAC_BYTES

    def body(self) -> bytes:
        """The MAC'd message body."""
        return (
            self.session_nonce
            + self.block_index.to_bytes(4, "big")
            + np.asarray(self.syndrome, dtype="<f8").tobytes()
        )


@dataclass
class ExtractionDetail:
    """Per-window consensus extraction output (public masks included).

    Attributes:
        alice_bits: Alice's surviving bit stream.
        bob_bits: Bob's, aligned with Alice's.
        masks: Per-window boolean keep-masks (broadcast protocol state).
        kept_fraction: Fraction of samples surviving the consensus.
        consensus_bytes: Mask-exchange payload bytes.
        degraded: ``True`` when the inference guard rejected the batch and
            Alice's bits came from the conventional quantizer fallback
            instead of the learned model.
        ood_windows: Windows the inference guard flagged out-of-distribution.
    """

    alice_bits: np.ndarray
    bob_bits: np.ndarray
    masks: List[np.ndarray]
    kept_fraction: float
    consensus_bytes: int
    degraded: bool = False
    ood_windows: int = 0


@dataclass
class SessionResult:
    """Everything a completed key-agreement session produced.

    Attributes:
        raw_agreement: Agreement of the consensus-kept bits before
            reconciliation, summarized per block.
        reconciled_agreement: Post-reconciliation agreement (no discards).
        verified_blocks: Block indices that passed MAC verification.
        n_blocks: Total reconciliation blocks processed.
        n_windows: arRSSI windows the trace yielded.
        kept_fraction: Samples surviving the two-sided consensus mask.
        final_key_alice: Alice's final key bytes (``None`` if too few
            verified bits).
        final_key_bob: Bob's final key bytes.
        agreed_bits: Verified key-material bits before hashing.
        consensus_bytes: Mask-exchange payload bytes.
        reconciliation_bytes: Syndrome payload bytes.
        reconciliation_messages: Syndrome messages exchanged.
        retransmitted_messages: Syndrome retransmissions triggered by
            Alice's bounded re-requests (0 on a reliable transport).
        undelivered_blocks: Blocks whose syndrome never reached Alice
            within the re-request budget (discarded, never key material).
        degraded_mode: ``None`` when the learned model produced Alice's
            bits; the slug ``"ood-quantizer-fallback"`` when the inference
            guard rejected at least one trace's windows and the session
            fell back to Alice's conventional multi-bit quantizer.
        ood_windows: Windows flagged out-of-distribution by the guard.
        abort: Structured :class:`~repro.core.statemachine.SessionAbort`
            when the state machine aborted the session; ``None`` on a
            clean completion.  An aborted session never carries final
            keys.
        confirmed: ``True`` when the key-confirmation hash exchange
            verified on both sides, ``False`` when it ran and failed,
            ``None`` when it never ran (no candidate key to confirm).
        confirmation_bytes: Public payload bytes of the confirmation
            round (two hash commitments; 0 when it never ran).
        mac_failures: Syndrome messages whose MAC verification failed.
        rejected_messages: Messages rejected before MAC verification
            (stale nonce, malformed structure, unknown block).
        session_nonce: The fresh public nonce this session ran under;
            the secure-channel KDF binds traffic keys to it
            (:class:`repro.secure.kdf.ChannelContext`).
        final_state: Terminal :class:`~repro.core.statemachine.SessionState`
            value (``"complete"`` or ``"aborted"``).
        phase_s: Wall-clock seconds per session phase -- ``window``
            (arRSSI sequence + dataset construction), ``extract`` (model
            forward / quantization + consensus masking), ``reconcile``
            (syndrome exchange + MAC verification) and ``amplify``
            (privacy amplification + key confirmation).  The throughput
            benchmark's per-phase breakdown aggregates these.
    """

    raw_agreement: AgreementSummary
    reconciled_agreement: AgreementSummary
    verified_blocks: List[int]
    n_blocks: int
    n_windows: int
    kept_fraction: float
    final_key_alice: Optional[bytes]
    final_key_bob: Optional[bytes]
    agreed_bits: int
    consensus_bytes: int
    reconciliation_bytes: int
    reconciliation_messages: int
    retransmitted_messages: int = 0
    undelivered_blocks: int = 0
    degraded_mode: Optional[str] = None
    ood_windows: int = 0
    abort: Optional[SessionAbort] = None
    confirmed: Optional[bool] = None
    confirmation_bytes: int = 0
    mac_failures: int = 0
    rejected_messages: int = 0
    session_nonce: bytes = b""
    final_state: Optional[str] = None
    phase_s: Dict[str, float] = field(default_factory=dict)

    @property
    def keys_match(self) -> bool:
        """Whether both parties hold the same final key."""
        return (
            self.final_key_alice is not None
            and self.final_key_alice == self.final_key_bob
        )

    @property
    def aborted(self) -> bool:
        """Whether the authenticated state machine aborted the session."""
        return self.abort is not None

    @property
    def total_public_bytes(self) -> int:
        """All public-channel payload bytes the session consumed."""
        return (
            self.consensus_bytes
            + self.reconciliation_bytes
            + self.confirmation_bytes
        )


class KeyAgreementSession:
    """One Vehicle-Key key-agreement run over a probing trace.

    Args:
        model: Trained prediction/quantization model (Alice's side).
        reconciler: Trained autoencoder reconciliation.
        feature_config: arRSSI extraction parameters.
        final_key_bits: Final key length after privacy amplification.
        alice_confidence_margin: Alice keeps a sample only when every one
            of its predicted bit probabilities is at least this far from
            0.5 -- her side of the two-sided guard band.
        bob_guard_fraction: Guard-band mass fraction of Bob's runtime
            quantizer (his side of the two-sided guard band).  Training
            targets always come from the model's guard-free quantizer so
            the bit layout stays fixed.
        session_nonce: Fresh public nonce; defaults to a digest of the
            trace timing (deterministic for reproducibility).
        inference_guard: Optional out-of-distribution guard over Alice's
            raw windows.  When the guard rejects a window batch, Alice's
            bits come from her conventional guard-banded quantizer instead
            of the learned model -- a degraded but sound mode reported via
            :attr:`SessionResult.degraded_mode`, never a silent success.
            ``None`` (the default) always trusts the model.
    """

    def __init__(
        self,
        model: PredictionQuantizationModel,
        reconciler: AutoencoderReconciliation,
        feature_config: FeatureConfig = FeatureConfig(),
        final_key_bits: int = 128,
        alice_confidence_margin: float = 0.15,
        bob_guard_fraction: float = 0.30,
        session_nonce: bytes = None,
        inference_guard: Optional[InferenceGuard] = None,
    ):
        require_positive(final_key_bits, "final_key_bits")
        require_in_range(alice_confidence_margin, 0.0, 0.49, "alice_confidence_margin")
        require_in_range(bob_guard_fraction, 0.0, 0.49, "bob_guard_fraction")
        self.model = model
        self.reconciler = reconciler
        self.feature_config = feature_config
        self.final_key_bits = int(final_key_bits)
        self.alice_confidence_margin = float(alice_confidence_margin)
        from repro.quantization.multibit import MultiBitQuantizer

        self.bob_quantizer = MultiBitQuantizer(
            bits_per_sample=model.bob_quantizer.bits_per_sample,
            guard_band_fraction=bob_guard_fraction,
            fixed_thresholds=model.bob_quantizer.fixed_thresholds,
        )
        # Alice's conventional-path quantizer, mirroring Bob's runtime
        # configuration; only exercised when the inference guard rejects a
        # window batch and the session degrades to quantizer-vs-quantizer.
        self.alice_fallback_quantizer = MultiBitQuantizer(
            bits_per_sample=model.bob_quantizer.bits_per_sample,
            guard_band_fraction=bob_guard_fraction,
            fixed_thresholds=model.bob_quantizer.fixed_thresholds,
        )
        self.inference_guard = inference_guard
        self.session_nonce = session_nonce

    # -- per-side bit extraction -----------------------------------------------
    def alice_keep_mask(self, probabilities: np.ndarray) -> np.ndarray:
        """Alice's per-sample confidence mask over one window's outputs."""
        bits_per_sample = self.model.bob_quantizer.bits_per_sample
        margins = np.abs(probabilities - 0.5).reshape(-1, bits_per_sample)
        return margins.min(axis=1) >= self.alice_confidence_margin

    def extract_detail(
        self, dataset, alice_probabilities: Optional[np.ndarray] = None
    ) -> "ExtractionDetail":
        """Consensus extraction with per-window masks (public protocol state).

        The masks are what both parties broadcast during index
        reconciliation, so attack harnesses legitimately see them too.

        When an :class:`~repro.core.guard.InferenceGuard` is configured
        and rejects the batch's raw windows, extraction degrades to the
        conventional quantizer path (see :meth:`_extract_detail_degraded`)
        instead of feeding the model out-of-distribution inputs.

        Args:
            dataset: The window dataset to extract bits from.
            alice_probabilities: Optional precomputed output of
                ``model.predict_bit_probabilities(dataset.alice)``, used
                by the batched multi-session engine to amortize one big
                forward pass across sessions.  The guard (if any) still
                runs first; a degraded batch ignores the precomputed
                values, exactly as it ignores the model.
        """
        verdict = None
        if self.inference_guard is not None:
            verdict = self.inference_guard.check(dataset.alice_raw)
            if not verdict.ok:
                return self._extract_detail_degraded(dataset, verdict)
        bits_per_sample = self.model.bob_quantizer.bits_per_sample
        if alice_probabilities is not None:
            alice_probs = np.asarray(alice_probabilities)
            require(
                len(alice_probs) == len(dataset),
                "alice_probabilities must cover every dataset window",
            )
        else:
            alice_probs = self.model.predict_bit_probabilities(dataset.alice)
        alice_bits = (alice_probs > 0.5).astype(np.uint8)

        alice_stream: List[np.ndarray] = []
        bob_stream: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        kept = 0
        total = 0
        consensus_bytes = 0
        for index in range(len(dataset)):
            bob_result = self.bob_quantizer.quantize(dataset.bob_raw[index])
            alice_keep = self.alice_keep_mask(alice_probs[index])
            keep = consensus_mask(bob_result.kept, alice_keep)
            masks.append(keep)
            total += keep.size
            kept += int(keep.sum())
            # Each side publishes its mask: one bit per sample, both ways.
            consensus_bytes += 2 * ((keep.size + 7) // 8)
            if not keep.any():
                continue
            bob_stream.append(
                self.bob_quantizer.quantize_with_mask(dataset.bob_raw[index], keep)
            )
            groups = alice_bits[index].reshape(-1, bits_per_sample)
            alice_stream.append(groups[keep].reshape(-1))
        alice_all = (
            np.concatenate(alice_stream) if alice_stream else np.zeros(0, np.uint8)
        )
        bob_all = np.concatenate(bob_stream) if bob_stream else np.zeros(0, np.uint8)
        kept_fraction = kept / total if total else 0.0
        return ExtractionDetail(
            alice_bits=alice_all,
            bob_bits=bob_all,
            masks=masks,
            kept_fraction=kept_fraction,
            consensus_bytes=consensus_bytes,
            ood_windows=0 if verdict is None else verdict.n_ood,
        )

    def _extract_detail_degraded(self, dataset, verdict) -> "ExtractionDetail":
        """Conventional-quantizer extraction for OOD window batches.

        Alice quantizes her *own* raw windows with a guard-banded
        multi-bit quantizer mirroring Bob's -- the classic reciprocity
        scheme that needs no model.  Windows containing non-finite values
        contribute no samples (their keep-mask is all-``False``), so a
        corrupted burst can reduce throughput but never poisons key
        material.
        """
        alice_stream: List[np.ndarray] = []
        bob_stream: List[np.ndarray] = []
        masks: List[np.ndarray] = []
        kept = 0
        total = 0
        consensus_bytes = 0
        for index in range(len(dataset)):
            bob_result = self.bob_quantizer.quantize(dataset.bob_raw[index])
            window = dataset.alice_raw[index]
            if np.isfinite(window).all():
                alice_result = self.alice_fallback_quantizer.quantize(window)
                keep = consensus_mask(bob_result.kept, alice_result.kept)
            else:
                keep = np.zeros(bob_result.kept.size, dtype=bool)
            masks.append(keep)
            total += keep.size
            kept += int(keep.sum())
            consensus_bytes += 2 * ((keep.size + 7) // 8)
            if not keep.any():
                continue
            bob_stream.append(
                self.bob_quantizer.quantize_with_mask(dataset.bob_raw[index], keep)
            )
            alice_stream.append(
                self.alice_fallback_quantizer.quantize_with_mask(window, keep)
            )
        alice_all = (
            np.concatenate(alice_stream) if alice_stream else np.zeros(0, np.uint8)
        )
        bob_all = np.concatenate(bob_stream) if bob_stream else np.zeros(0, np.uint8)
        kept_fraction = kept / total if total else 0.0
        return ExtractionDetail(
            alice_bits=alice_all,
            bob_bits=bob_all,
            masks=masks,
            kept_fraction=kept_fraction,
            consensus_bytes=consensus_bytes,
            degraded=True,
            ood_windows=verdict.n_ood,
        )

    # -- message validation ------------------------------------------------------
    @staticmethod
    def _validate_message(message: SyndromeMessage) -> Optional[str]:
        """Describe what is structurally wrong with a message, if anything.

        A negative block index or an empty nonce would previously flow
        into array indexing / MAC bodies as silent garbage.  Attacker
        input must never raise out of the session, so the problem is
        returned as a detail string (``None`` when the message is well
        formed) and the caller converts it into a structured abort.
        """
        if message.block_index < 0:
            return f"syndrome block index must be >= 0, got {message.block_index}"
        if not message.session_nonce:
            return "syndrome message carries an empty session nonce"
        return None

    @staticmethod
    def _confirmation_commit(tag: bytes, nonce: bytes, key: bytes) -> bytes:
        """One party's key-confirmation commitment.

        A truncated domain-separated hash over the amplified key: the
        ``tag`` distinguishes the two directions so neither party can
        reflect the other's commitment back.
        """
        return hashlib.sha256(tag + nonce + key).digest()[:16]

    # -- the session -------------------------------------------------------------
    def run(
        self,
        trace,
        tamper=None,
        channel: Optional[LossyMessageChannel] = None,
        max_rerequests: int = 2,
        alice_probabilities: Optional[List[np.ndarray]] = None,
        adversary: Optional[ActiveAdversary] = None,
        datasets: Optional[List] = None,
    ) -> SessionResult:
        """Execute the session.

        Args:
            trace: A completed probing trace, or a sequence of traces whose
                surviving bits are pooled (key establishment may span
                several probing bursts before enough verified bits exist).
            tamper: Optional fault-injection hook mapping a
                :class:`SyndromeMessage` to a (possibly modified) message;
                used by the MITM tests.
            channel: Optional lossy transport for the syndrome exchange.
                Messages may be dropped, duplicated or reordered; Alice
                re-requests blocks that did not verify, up to
                ``max_rerequests`` extra rounds, and blocks that never
                arrive are discarded rather than failing the session.
                ``None`` is the reliable transport of the seed behaviour.
            max_rerequests: Re-request rounds allowed when ``channel`` is
                lossy.  Ignored on a reliable transport, where the single
                pass always delivers every block.
            alice_probabilities: Optional precomputed model outputs, one
                array per trace that yields at least ``seq_len`` windows
                (in trace order) -- the batched engine's hook for sharing
                a single stacked forward pass across sessions.  ``None``
                runs the model per dataset as usual.
            datasets: Optional precomputed window datasets, one entry per
                trace (``None`` for a trace that fell short of
                ``seq_len`` windows) -- the batched engine's hook for
                skipping the re-windowing it already performed.  Entries
                must be exactly what :func:`build_dataset` would produce
                for the trace; ``None`` windows each trace here as usual.
            adversary: Optional active attacker whose message-layer
                attacks (syndrome tamper/replay/spoof, confirmation
                tamper) are woven into the exchange.  Attacker input
                never raises out of the session: a replayed nonce, a
                malformed message, or a wholesale MAC failure drives the
                state machine into a structured
                :class:`~repro.core.statemachine.SessionAbort` carried on
                the returned result, and an aborted session releases no
                key material.

        Returns:
            The :class:`SessionResult`, with ``abort``/``confirmed``/
            ``final_state`` reporting the state machine's verdict.
        """
        traces = [trace] if isinstance(trace, ProbeTrace) else list(trace)
        require(bool(traces), "need at least one probing trace")
        machine = SessionStateMachine()
        nonce = self.session_nonce
        if nonce is None:
            nonce = hashlib.sha256(
                np.ascontiguousarray(traces[0].round_start_s).tobytes()
            ).digest()[:8]
        machine.advance(SessionState.EXTRACTING)

        alice_parts, bob_parts = [], []
        kept_fractions = []
        consensus_bytes = 0
        n_windows = 0
        degraded = False
        ood_windows = 0
        precomputed = list(alice_probabilities) if alice_probabilities else None
        prebuilt = list(datasets) if datasets is not None else None
        if prebuilt is not None:
            require(
                len(prebuilt) == len(traces),
                "datasets must supply one entry (or None) per trace",
            )
        phase_s = {"window": 0.0, "extract": 0.0, "reconcile": 0.0, "amplify": 0.0}
        for trace_index, part in enumerate(traces):
            phase_start = time.perf_counter()
            if prebuilt is not None:
                dataset = prebuilt[trace_index]
                phase_s["window"] += time.perf_counter() - phase_start
                if dataset is None:
                    continue
            else:
                bob_seq, alice_seq = arrssi_sequences(part, self.feature_config)
                if len(alice_seq) < self.model.seq_len:
                    phase_s["window"] += time.perf_counter() - phase_start
                    continue
                dataset = build_dataset(alice_seq, bob_seq, seq_len=self.model.seq_len)
                phase_s["window"] += time.perf_counter() - phase_start
            n_windows += len(dataset)
            probs = precomputed.pop(0) if precomputed else None
            phase_start = time.perf_counter()
            detail = self.extract_detail(dataset, alice_probabilities=probs)
            phase_s["extract"] += time.perf_counter() - phase_start
            alice_parts.append(detail.alice_bits)
            bob_parts.append(detail.bob_bits)
            kept_fractions.append(detail.kept_fraction)
            consensus_bytes += detail.consensus_bytes
            degraded = degraded or detail.degraded
            ood_windows += detail.ood_windows
        alice_all = (
            np.concatenate(alice_parts) if alice_parts else np.zeros(0, np.uint8)
        )
        bob_all = np.concatenate(bob_parts) if bob_parts else np.zeros(0, np.uint8)
        kept_fraction = float(np.mean(kept_fractions)) if kept_fractions else 0.0
        block_bits = self.reconciler.key_bits
        n_blocks = alice_all.size // block_bits

        alice_blocks: List[np.ndarray] = [
            alice_all[b * block_bits : (b + 1) * block_bits]
            for b in range(n_blocks)
        ]
        bob_blocks: List[np.ndarray] = [
            bob_all[b * block_bits : (b + 1) * block_bits]
            for b in range(n_blocks)
        ]
        corrected: Dict[int, np.ndarray] = {}
        verified_set = set()
        reconciliation_bytes = 0
        messages = 0
        retransmitted = 0
        mac_failures = 0
        rejected = 0
        if n_blocks:
            machine.advance(SessionState.RECONCILING)

        def bob_message(block: int) -> SyndromeMessage:
            """Bob's (re)transmission of one block's syndrome."""
            bob_key = bob_blocks[block]
            syndrome = self.reconciler.bob_syndrome(bob_key)
            body = (
                nonce
                + block.to_bytes(4, "big")
                + np.asarray(syndrome, dtype="<f8").tobytes()
            )
            return SyndromeMessage(
                block_index=block,
                session_nonce=nonce,
                syndrome=syndrome,
                mac=compute_mac(self.reconciler.bloom.transform(bob_key), body),
            )

        def alice_receive(message: SyndromeMessage) -> None:
            """Alice's handling of one arrival (idempotent per block).

            Attacker-controlled input never raises: structural damage and
            stale nonces abort the state machine; MAC failures leave the
            block unverified (and counted) so a later retransmission can
            still succeed.
            """
            nonlocal mac_failures, rejected
            if machine.aborted:
                return
            problem = self._validate_message(message)
            if problem is not None:
                rejected += 1
                machine.abort(ABORT_MALFORMED, problem)
                return
            if message.session_nonce != nonce:
                rejected += 1
                machine.abort(
                    ABORT_REPLAY,
                    "session nonce mismatch: stale or replayed message",
                )
                return
            block = message.block_index
            if block >= n_blocks:
                rejected += 1
                machine.abort(
                    ABORT_MALFORMED,
                    f"syndrome for unknown block {block} (have {n_blocks})",
                )
                return
            if block in verified_set:
                # Idempotent: a duplicate -- or a forgery racing a block
                # that already verified -- never overwrites key material.
                return
            corrected_key = self.reconciler.alice_correct(
                alice_blocks[block], message.syndrome
            )
            corrected[block] = corrected_key
            if verify_mac(
                self.reconciler.bloom.transform(corrected_key),
                message.body(),
                message.mac,
            ):
                verified_set.add(block)
            else:
                mac_failures += 1

        # First pass sends every block; further passes (lossy or attacked
        # transport only) re-request the blocks that did not verify --
        # lost ones and MAC failures alike -- until the re-request budget
        # runs out.
        unreliable = channel is not None or (
            adversary is not None and adversary.plan.attacks_messages
        )
        phase_start = time.perf_counter()
        outstanding = list(range(n_blocks))
        for request_round in range(max(0, max_rerequests) + 1):
            if not outstanding or machine.aborted:
                break
            if request_round > 0:
                retransmitted += len(outstanding)
            arrivals: List[SyndromeMessage] = []
            for block in outstanding:
                message = bob_message(block)
                if tamper is not None:
                    message = tamper(message)
                if adversary is not None:
                    message = adversary.corrupt_syndrome(message)
                messages += 1
                reconciliation_bytes += message.payload_bytes()
                if channel is None:
                    arrivals.append(message)
                else:
                    arrivals.extend(channel.deliver(message))
            if channel is not None:
                arrivals.extend(channel.flush())
            if adversary is not None:
                arrivals.extend(
                    adversary.spoof_syndromes(
                        nonce, n_blocks, self.reconciler.code_dim
                    )
                )
            for message in arrivals:
                alice_receive(message)
            if not unreliable:
                # Reliable transport: everything arrived; MAC failures are
                # reconciliation failures, which a resend cannot fix.
                break
            outstanding = [b for b in outstanding if b not in verified_set]

        # Wholesale MAC failure: syndromes arrived but not one verified.
        # That is indistinguishable from a man-in-the-middle rewriting the
        # exchange, so the session aborts rather than reporting a merely
        # unproductive run.
        if not machine.aborted and n_blocks and corrected and not verified_set:
            machine.abort(
                ABORT_MAC,
                f"all {len(corrected)} received syndromes failed MAC "
                "verification",
            )

        phase_s["reconcile"] = time.perf_counter() - phase_start
        verified = sorted(verified_set)
        received = sorted(corrected)
        if n_blocks:
            raw = agreement_statistics(alice_blocks, bob_blocks)
        else:
            raw = AgreementSummary(mean=0.0, std=0.0, n_pairs=0)
        if received:
            reconciled = agreement_statistics(
                [corrected[b] for b in received],
                [bob_blocks[b] for b in received],
            )
        else:
            reconciled = AgreementSummary(mean=0.0, std=0.0, n_pairs=0)

        phase_start = time.perf_counter()
        verified_alice = (
            np.concatenate([corrected[i] for i in verified])
            if verified
            else np.zeros(0, dtype=np.uint8)
        )
        verified_bob = (
            np.concatenate([bob_blocks[i] for i in verified])
            if verified
            else np.zeros(0, dtype=np.uint8)
        )
        if verified_alice.size >= self.final_key_bits and not machine.aborted:
            final_alice = amplify_to_bytes(verified_alice, self.final_key_bits)
            final_bob = amplify_to_bytes(verified_bob, self.final_key_bits)
        else:
            final_alice = final_bob = None

        # Key confirmation: both parties commit to the amplified key with
        # domain-separated truncated hashes.  Only a key that survives the
        # exchange is released, so ``keys_match`` is cryptographically
        # checked rather than inferred from bit agreement.
        confirmed: Optional[bool] = None
        confirmation_bytes = 0
        if final_alice is not None and final_bob is not None:
            machine.advance(SessionState.CONFIRMING)
            bob_commit = self._confirmation_commit(
                b"vehicle-key-confirm-bob", nonce, final_bob
            )
            if adversary is not None:
                bob_commit = adversary.tamper_confirmation(bob_commit)
            confirmation_bytes += len(bob_commit)
            alice_accepts = bob_commit == self._confirmation_commit(
                b"vehicle-key-confirm-bob", nonce, final_alice
            )
            alice_commit = self._confirmation_commit(
                b"vehicle-key-confirm-alice", nonce, final_alice
            )
            if adversary is not None:
                alice_commit = adversary.tamper_confirmation(alice_commit)
            confirmation_bytes += len(alice_commit)
            bob_accepts = alice_commit == self._confirmation_commit(
                b"vehicle-key-confirm-alice", nonce, final_bob
            )
            confirmed = alice_accepts and bob_accepts
            if not confirmed:
                machine.abort(
                    ABORT_CONFIRMATION,
                    "key-confirmation hash exchange failed",
                )
                final_alice = final_bob = None
        if not machine.terminal:
            machine.advance(SessionState.COMPLETE)
        phase_s["amplify"] = time.perf_counter() - phase_start

        return SessionResult(
            raw_agreement=raw,
            reconciled_agreement=reconciled,
            verified_blocks=verified,
            n_blocks=n_blocks,
            n_windows=n_windows,
            kept_fraction=kept_fraction,
            final_key_alice=final_alice,
            final_key_bob=final_bob,
            agreed_bits=int(verified_alice.size),
            consensus_bytes=consensus_bytes,
            reconciliation_bytes=reconciliation_bytes,
            reconciliation_messages=messages,
            retransmitted_messages=retransmitted,
            undelivered_blocks=n_blocks - len(corrected),
            degraded_mode="ood-quantizer-fallback" if degraded else None,
            ood_windows=ood_windows,
            abort=machine.abort_record,
            confirmed=confirmed,
            confirmation_bytes=confirmation_bytes,
            mac_failures=mac_failures,
            rejected_messages=rejected,
            session_nonce=nonce,
            final_state=machine.state.value,
            phase_s=phase_s,
        )
