"""Cross-scenario transfer learning (paper Sec. V-G, Fig. 14).

A model trained in one scenario (e.g. M1 = V2I-Urban) is fine-tuned with
a small fraction of data from a new scenario and compared against a model
trained from scratch there.  The paper's finding: transfer-10% reaches
traditionally-trained accuracy with 10% of the data and a tenth of the
epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.model import PredictionQuantizationModel
from repro.probing.dataset import DatasetSplits, KeyGenDataset, split_dataset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_in_range, require_positive


@dataclass
class TransferResult:
    """Agreement of one fine-tuning configuration on the target test set.

    Attributes:
        label: e.g. ``"transfer-10%"`` or ``"scratch"``.
        fraction: Fraction of target-scenario training data used.
        epochs: Fine-tuning epochs run.
        agreement: Mean bit agreement on the target scenario's test split.
    """

    label: str
    fraction: float
    epochs: int
    agreement: float


def evaluate_agreement(
    model: PredictionQuantizationModel, dataset: KeyGenDataset
) -> float:
    """Mean Alice-vs-Bob bit agreement of ``model`` on ``dataset``."""
    require(len(dataset) > 0, "cannot evaluate on an empty dataset")
    alice = model.alice_bits(dataset.alice)
    bob = model.bob_bits(dataset.bob_raw)
    return float(np.mean(alice == bob))


def fine_tune(
    base_model: PredictionQuantizationModel,
    target_splits: DatasetSplits,
    fraction: float = 0.10,
    epochs: int = 20,
    learning_rate: float = 5e-4,
    seed: SeedLike = 0,
) -> TransferResult:
    """Fine-tune a copy of ``base_model`` on a fraction of target data.

    Args:
        base_model: Trained source-scenario model (M1 in the paper).
        target_splits: Target-scenario train/val/test datasets.
        fraction: Fraction of the target train split used (paper: 10%,
            50%, 100%).
        epochs: Fine-tuning epochs (paper: 20).
        learning_rate: Lower than from-scratch training, as usual for
            fine-tuning.
        seed: Subset selection and shuffling randomness.
    """
    require_in_range(fraction, 0.0, 1.0, "fraction")
    require_positive(epochs, "epochs")
    rng = as_generator(seed)
    tuned = base_model.clone_architecture(seed=rng)
    tuned.copy_weights_from(base_model)
    subset = target_splits.train.take_fraction(fraction, seed=rng)
    tuned.fit(
        subset,
        target_splits.validation,
        epochs=epochs,
        learning_rate=learning_rate,
    )
    agreement = evaluate_agreement(tuned, target_splits.test)
    return TransferResult(
        label=f"transfer-{int(round(100 * fraction))}%",
        fraction=fraction,
        epochs=epochs,
        agreement=agreement,
    )


def train_from_scratch(
    reference: PredictionQuantizationModel,
    target_splits: DatasetSplits,
    epochs: int,
    seed: SeedLike = 0,
) -> TransferResult:
    """The traditional-training comparison arm of Fig. 14."""
    require_positive(epochs, "epochs")
    model = reference.clone_architecture(seed=as_generator(seed))
    model.fit(target_splits.train, target_splits.validation, epochs=epochs)
    return TransferResult(
        label="scratch",
        fraction=1.0,
        epochs=epochs,
        agreement=evaluate_agreement(model, target_splits.test),
    )


def transfer_study(
    base_model: PredictionQuantizationModel,
    target_dataset: KeyGenDataset,
    fractions: List[float] = (0.10, 0.50, 1.00),
    fine_tune_epochs: int = 20,
    scratch_epochs: int = 20,
    seed: SeedLike = 0,
) -> Dict[str, TransferResult]:
    """Fig. 14's comparison for one source->target scenario pair.

    Returns results keyed by label, including the ``"scratch"`` arm
    trained for the same (small) epoch budget -- the regime where the
    paper shows transfer winning.
    """
    splits = split_dataset(target_dataset, seed=as_generator(seed))
    results: Dict[str, TransferResult] = {}
    for fraction in fractions:
        result = fine_tune(
            base_model, splits, fraction=fraction, epochs=fine_tune_epochs, seed=seed
        )
        results[result.label] = result
    scratch = train_from_scratch(
        base_model, splits, epochs=scratch_epochs, seed=seed
    )
    results[scratch.label] = scratch
    return results
