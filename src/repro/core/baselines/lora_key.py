"""LoRa-Key baseline (Xu, Jha & Hu, IEEE IoT Journal 2018).

LoRa-Key extracts one *packet RSSI* value per received packet, quantizes
with a two-threshold guard band (the paper tunes the ratio alpha = 0.8
for best performance, Sec. V-F) and reconciles with compressed sensing
over a 20 x 64 random matrix.  Its weakness in IoV, per the paper, is
exactly the pRSSI feature: at LoRa airtimes the whole-packet average is
badly asymmetric between the endpoints, so the bit-disagreement rate
overwhelms the sparse-recovery reconciliation.
"""

from __future__ import annotations

from repro.core.baselines.common import KeyGenSystem, two_sided_quantize
from repro.probing.trace import ProbeTrace
from repro.quantization.guard_band import GuardBandQuantizer
from repro.reconciliation.compressed_sensing import CompressedSensingReconciliation


class LoRaKeySystem(KeyGenSystem):
    """pRSSI + guard-band quantization + CS reconciliation.

    Args:
        alpha: Guard-band-to-data ratio (paper setting: 0.8).
        measurements: CS syndrome length (paper setting: 20).
        window: Samples per quantization window.
        seed: Public randomness of the CS matrix.
    """

    name = "LoRa-Key"

    def __init__(
        self,
        alpha: float = 0.8,
        measurements: int = 20,
        window: int = 32,
        seed: int = 0,
    ):
        self.quantizer = GuardBandQuantizer(alpha=alpha)
        self.reconciler = CompressedSensingReconciliation(
            measurements=measurements, block_bits=64, seed=seed
        )
        self.window = int(window)

    def extract_streams(self, trace: ProbeTrace):
        clean = trace.valid_only()
        alice_series = clean.alice_prssi
        bob_series = clean.bob_prssi
        alice_bits, bob_bits, mask_bytes = two_sided_quantize(
            alice_series, bob_series, self.quantizer, window=self.window
        )
        return alice_bits, bob_bits, mask_bytes, 2
