"""Gao et al. baseline (IPSN 2021): model-based LoRa key generation.

Gao et al. fit a channel model to blocks of consecutive probe
measurements and generate key material from the fitted model parameters
rather than from raw samples, which suppresses measurement noise at the
cost of key rate: many probing rounds collapse into one key-material
value.  The paper configures "interval 20 and round number 50"
(Sec. V-F); we realize that as a smoothing/decimation front end -- a
20-round moving-average model fitted over 50-round segments, one model
value per interval -- followed by guard-band quantization and the same
CS reconciliation LoRa-Key uses.  The smoothing makes its *agreement*
the best of the three baselines while its *rate* is the worst (the
paper's Fig. 12/13 relationship).
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines.common import KeyGenSystem, two_sided_quantize
from repro.probing.trace import ProbeTrace
from repro.quantization.guard_band import GuardBandQuantizer
from repro.reconciliation.compressed_sensing import CompressedSensingReconciliation


class GaoSystem(KeyGenSystem):
    """Model-based filtering + guard-band quantization + CS reconciliation.

    Args:
        interval: Rounds averaged into one model value (paper: 20).
        segment_rounds: Rounds per fitted segment (paper: 50).
        alpha: Guard-band ratio of the quantizer.
        measurements: CS syndrome length.
        seed: Public randomness of the CS matrix.
    """

    name = "Gao et al."

    def __init__(
        self,
        interval: int = 20,
        segment_rounds: int = 50,
        alpha: float = 0.8,
        measurements: int = 20,
        window: int = 16,
        seed: int = 0,
        fit_error_std_db: float = 0.8,
    ):
        self.interval = int(interval)
        self.segment_rounds = int(segment_rounds)
        self.quantizer = GuardBandQuantizer(alpha=alpha)
        self.reconciler = CompressedSensingReconciliation(
            measurements=measurements, block_bits=64, seed=seed
        )
        self.window = int(window)
        #: Residual error of fitting their (static-node) channel model to a
        #: moving vehicle's segment -- each side fits independently on its
        #: own samples, so the error is asymmetric between the parties.
        #: The paper's critique that the scheme is "only suitable for
        #: static nodes" is exactly this term.
        self.fit_error_std_db = float(fit_error_std_db)

    def _model_series(self, series: np.ndarray) -> np.ndarray:
        """One model value per interval: the interval's mean level.

        Each 50-round segment is modeled independently; a segment yields
        ``segment_rounds // (interval / 2)`` overlapping model values
        (50% interval overlap, as in their stepping).
        """
        step = max(1, self.interval // 2)
        values = []
        for start in range(0, len(series) - self.interval + 1, step):
            values.append(float(np.mean(series[start:start + self.interval])))
        values = np.asarray(values)
        if self.fit_error_std_db > 0 and values.size:
            # Deterministic per-series fitting error (independent between
            # the two sides because their sample noise differs).
            digest = np.frombuffer(
                np.ascontiguousarray(series).tobytes()[:64].ljust(64, b"\0"),
                dtype=np.uint64,
            )
            rng = np.random.default_rng(digest)
            values = values + rng.normal(0.0, self.fit_error_std_db, size=values.size)
        return values

    def extract_streams(self, trace: ProbeTrace):
        clean = trace.valid_only()
        alice_series = self._model_series(clean.alice_prssi)
        bob_series = self._model_series(clean.bob_prssi)
        alice_bits, bob_bits, mask_bytes = two_sided_quantize(
            alice_series, bob_series, self.quantizer, window=self.window
        )
        return alice_bits, bob_bits, mask_bytes, 2
