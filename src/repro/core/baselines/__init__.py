"""The three state-of-the-art comparison systems (paper Sec. V-F).

All implement :class:`~repro.core.baselines.common.KeyGenSystem` so the
comparison experiments can run Vehicle-Key and the baselines over the
*same* probing traces:

- :class:`LoRaKeySystem` -- Xu et al., "LoRa-Key": packet RSSI,
  guard-band quantization (alpha = 0.8), compressed-sensing
  reconciliation with a 20 x 64 random matrix.
- :class:`HanSystem` -- Han et al.: packet RSSI, multi-bit quantization,
  Cascade reconciliation (group length 3, 4 iterations).
- :class:`GaoSystem` -- Gao et al.: model-based filtering (interval 20,
  50 probing rounds per segment), guard-band quantization, CS
  reconciliation.
"""

from repro.core.baselines.common import KeyGenSystem, SystemRunResult, VehicleKeySystem
from repro.core.baselines.lora_key import LoRaKeySystem
from repro.core.baselines.han import HanSystem
from repro.core.baselines.gao import GaoSystem

__all__ = [
    "KeyGenSystem",
    "SystemRunResult",
    "VehicleKeySystem",
    "LoRaKeySystem",
    "HanSystem",
    "GaoSystem",
]
