"""Han et al. baseline (Sensors 2020): LoRa key generation for V2V/V2I.

Han et al. apply a multi-bit quantization algorithm directly to packet
RSSI and reconcile with the interactive Cascade protocol (the paper
configures group length k = 3 and 4 iterations, Sec. V-F).  Cascade's
error correction is strong, but every round trip is a LoRa packet --
which is what drags the achievable key rate down -- and at pRSSI
disagreement levels the multi-bit quantizer (no guard bands in their
design) starts Cascade from a deep deficit.
"""

from __future__ import annotations

import numpy as np

from repro.core.baselines.common import KeyGenSystem
from repro.probing.trace import ProbeTrace
from repro.quantization.multibit import MultiBitQuantizer
from repro.reconciliation.cascade import CascadeReconciliation


class HanSystem(KeyGenSystem):
    """pRSSI + multi-bit quantization + Cascade reconciliation.

    Args:
        bits_per_sample: Multi-bit quantizer depth (2 in their design).
        block_size: Cascade group length k (paper setting: 3).
        iterations: Cascade iterations (paper setting: 4).
        window: Samples per quantization window.
        seed: Public randomness of the Cascade shuffles.
    """

    name = "Han et al."

    def __init__(
        self,
        bits_per_sample: int = 2,
        block_size: int = 3,
        iterations: int = 4,
        window: int = 32,
        seed: int = 0,
        max_messages_per_block: int = 60,
    ):
        self.quantizer = MultiBitQuantizer(bits_per_sample=bits_per_sample)
        self.reconciler = CascadeReconciliation(
            block_size=block_size,
            iterations=iterations,
            seed=seed,
            max_messages=max_messages_per_block,
        )
        self.window = int(window)

    def extract_streams(self, trace: ProbeTrace):
        clean = trace.valid_only()
        alice_series = clean.alice_prssi
        bob_series = clean.bob_prssi
        n_windows = len(alice_series) // self.window
        alice_bits, bob_bits = [], []
        for index in range(n_windows):
            lo, hi = index * self.window, (index + 1) * self.window
            alice_bits.append(self.quantizer.quantize(alice_series[lo:hi]).bits)
            bob_bits.append(self.quantizer.quantize(bob_series[lo:hi]).bits)
        alice_all = (
            np.concatenate(alice_bits) if alice_bits else np.zeros(0, np.uint8)
        )
        bob_all = np.concatenate(bob_bits) if bob_bits else np.zeros(0, np.uint8)
        return alice_all, bob_all, 0, 0
