"""Uniform system interface for the comparison experiments.

Every key-generation system consumes a :class:`ProbeTrace` and reports
the same accounting, so Fig. 12 (agreement) and Fig. 13 (key rate) can be
produced from identical probing data.  Key material is processed in
fixed 64-bit blocks; a block counts toward the key only if reconciliation
made it match exactly (all real systems confirm blocks with a hash/CRC
before use), which is what the key-generation rate is computed from.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.lora.airtime import LoRaPHYConfig
from repro.metrics.agreement import AgreementSummary, agreement_statistics
from repro.metrics.generation import key_generation_rate
from repro.probing.trace import ProbeTrace
from repro.quantization.base import Quantizer, consensus_mask
from repro.reconciliation.base import Reconciler
from repro.utils.validation import require


@dataclass
class SystemRunResult:
    """One system's outcome over one probing trace.

    Attributes:
        system: System name as reported in the figures.
        raw_agreement: Block agreement before reconciliation.
        reconciled_agreement: Block agreement after reconciliation.
        matched_blocks: Blocks that reconciled to an exact match.
        n_blocks: Total 64-bit blocks processed.
        block_bits: Bits per block.
        probing_time_s: Probing airtime consumed.
        reconciliation_messages: Public messages the reconciliation needed.
        public_bytes: Total public payload bytes (masks + syndromes).
    """

    system: str
    raw_agreement: AgreementSummary
    reconciled_agreement: AgreementSummary
    matched_blocks: int
    n_blocks: int
    block_bits: int
    probing_time_s: float
    reconciliation_messages: int
    public_bytes: int

    @property
    def agreed_bits(self) -> int:
        """Post-reconciliation agreed key-material bits.

        Computed the way the paper's key generation rate implies: total
        extracted bits scaled by the post-reconciliation agreement.  The
        stricter exact-match block count is available separately as
        ``matched_blocks``.
        """
        total = self.n_blocks * self.block_bits
        return int(round(total * self.reconciled_agreement.mean))

    def reconciliation_airtime_s(self, phy: LoRaPHYConfig) -> float:
        """LoRa airtime of the public reconciliation traffic."""
        if self.reconciliation_messages == 0:
            return 0.0
        per_message = max(
            1, min(255, -(-self.public_bytes // self.reconciliation_messages))
        )
        return self.reconciliation_messages * phy.with_payload(per_message).airtime_s

    def kgr_bps(self, phy: LoRaPHYConfig) -> float:
        """Verified key bits per second of total protocol time."""
        return key_generation_rate(
            self.agreed_bits, self.probing_time_s, self.reconciliation_airtime_s(phy)
        )


def reconcile_streams(
    system: str,
    alice_stream: np.ndarray,
    bob_stream: np.ndarray,
    reconciler: Reconciler,
    trace: ProbeTrace,
    extra_public_bytes: int = 0,
    extra_messages: int = 0,
    block_bits: int = 64,
) -> SystemRunResult:
    """Shared block-wise reconciliation and accounting.

    Args:
        system: Reporting name.
        alice_stream: Alice's post-quantization bit stream.
        bob_stream: Bob's, aligned with Alice's.
        reconciler: Reconciliation method to apply per block.
        trace: The probing trace (for time accounting).
        extra_public_bytes: Mask-exchange or model traffic the system
            already spent before reconciliation.
        extra_messages: Messages corresponding to those bytes.
        block_bits: Block size (64 throughout the evaluation).
    """
    require(alice_stream.shape == bob_stream.shape, "streams must be aligned")
    n_blocks = alice_stream.size // block_bits
    alice_blocks: List[np.ndarray] = []
    bob_blocks: List[np.ndarray] = []
    corrected: List[np.ndarray] = []
    matched = 0
    messages = extra_messages
    public_bytes = extra_public_bytes
    for block in range(n_blocks):
        lo, hi = block * block_bits, (block + 1) * block_bits
        outcome = reconciler.reconcile(alice_stream[lo:hi], bob_stream[lo:hi])
        alice_blocks.append(alice_stream[lo:hi])
        bob_blocks.append(bob_stream[lo:hi])
        corrected.append(outcome.alice_key)
        matched += int(outcome.success)
        messages += outcome.messages
        public_bytes += outcome.bytes_exchanged

    if n_blocks:
        raw = agreement_statistics(alice_blocks, bob_blocks)
        reconciled = agreement_statistics(corrected, bob_blocks)
    else:
        raw = AgreementSummary(0.0, 0.0, 0)
        reconciled = AgreementSummary(0.0, 0.0, 0)
    return SystemRunResult(
        system=system,
        raw_agreement=raw,
        reconciled_agreement=reconciled,
        matched_blocks=matched,
        n_blocks=n_blocks,
        block_bits=block_bits,
        probing_time_s=trace.duration_s,
        reconciliation_messages=messages,
        public_bytes=public_bytes,
    )


def two_sided_quantize(
    alice_series: np.ndarray,
    bob_series: np.ndarray,
    quantizer: Quantizer,
    window: int = 32,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Two-sided guard-banded quantization with public mask consensus.

    Both parties quantize per window, exchange keep-masks, and keep the
    intersection -- the standard index-reconciliation step every
    guard-banded scheme performs.

    Returns:
        ``(alice_bits, bob_bits, mask_bytes)``.
    """
    n_windows = len(alice_series) // window
    alice_bits: List[np.ndarray] = []
    bob_bits: List[np.ndarray] = []
    mask_bytes = 0
    for index in range(n_windows):
        lo, hi = index * window, (index + 1) * window
        result_a = quantizer.quantize(alice_series[lo:hi])
        result_b = quantizer.quantize(bob_series[lo:hi])
        keep = consensus_mask(result_a.kept, result_b.kept)
        mask_bytes += 2 * ((window + 7) // 8)
        if not keep.any():
            continue
        alice_bits.append(quantizer.quantize_with_mask(alice_series[lo:hi], keep))
        bob_bits.append(quantizer.quantize_with_mask(bob_series[lo:hi], keep))
    alice_all = np.concatenate(alice_bits) if alice_bits else np.zeros(0, np.uint8)
    bob_all = np.concatenate(bob_bits) if bob_bits else np.zeros(0, np.uint8)
    return alice_all, bob_all, mask_bytes


class KeyGenSystem(abc.ABC):
    """A complete key-generation system under comparison."""

    #: Reporting name used in the figures.
    name: str = "system"

    #: Reconciler applied to the pooled bit stream (subclasses set this).
    reconciler: Reconciler

    def prepare(self, pipeline) -> None:
        """Train learned components (no-op for the classic baselines)."""

    @abc.abstractmethod
    def extract_streams(
        self, trace: ProbeTrace
    ) -> Tuple[np.ndarray, np.ndarray, int, int]:
        """One trace's quantized bits: ``(alice, bob, public_bytes, messages)``."""

    def run(self, trace) -> SystemRunResult:
        """Process one probing trace -- or pool several -- into key material."""
        traces = [trace] if isinstance(trace, ProbeTrace) else list(trace)
        require(bool(traces), "need at least one probing trace")
        alice_parts, bob_parts = [], []
        public_bytes = 0
        messages = 0
        probing_time = 0.0
        for part in traces:
            alice_bits, bob_bits, part_bytes, part_messages = self.extract_streams(part)
            alice_parts.append(alice_bits)
            bob_parts.append(bob_bits)
            public_bytes += part_bytes
            messages += part_messages
            probing_time += part.duration_s
        alice_all = (
            np.concatenate(alice_parts) if alice_parts else np.zeros(0, np.uint8)
        )
        bob_all = np.concatenate(bob_parts) if bob_parts else np.zeros(0, np.uint8)
        result = reconcile_streams(
            self.name,
            alice_all,
            bob_all,
            self.reconciler,
            traces[0],
            extra_public_bytes=public_bytes,
            extra_messages=messages,
        )
        result.probing_time_s = probing_time
        return result


class VehicleKeySystem(KeyGenSystem):
    """Vehicle-Key wrapped in the comparison interface.

    Args:
        pipeline: A (possibly untrained) :class:`VehicleKeyPipeline`;
            :meth:`prepare` trains it.
    """

    name = "Vehicle-Key"

    def __init__(self, pipeline):
        self.pipeline = pipeline

    def prepare(self, pipeline=None, **train_kwargs) -> None:
        """Train the pipeline's model and reconciler."""
        self.pipeline.train(**train_kwargs)

    def extract_streams(self, trace: ProbeTrace):
        raise NotImplementedError(
            "VehicleKeySystem delegates whole runs to KeyAgreementSession"
        )

    def run(self, trace) -> SystemRunResult:
        traces = [trace] if isinstance(trace, ProbeTrace) else list(trace)
        session = self.pipeline.build_session()
        result = session.run(traces)
        return SystemRunResult(
            system=self.name,
            raw_agreement=result.raw_agreement,
            reconciled_agreement=result.reconciled_agreement,
            matched_blocks=len(result.verified_blocks),
            n_blocks=result.n_blocks,
            block_bits=self.pipeline.config.key_bits,
            probing_time_s=sum(part.duration_s for part in traces),
            reconciliation_messages=result.reconciliation_messages + 2,
            public_bytes=result.total_public_bytes,
        )
