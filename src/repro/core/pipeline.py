"""End-to-end Vehicle-Key pipeline: scenario to final 128-bit key.

Glues the substrates together:

1. **Data collection** -- probing episodes in a scenario; each episode
   realizes fresh trajectories and a fresh channel (the paper collected
   data "on different time of different days").
2. **Training** -- the BiLSTM prediction/quantization model on the
   episode windows, and the autoencoder reconciliation on synthetic
   mismatches matching the observed bit-disagreement rates.
3. **Key establishment** -- a fresh probing episode pushed through the
   authenticated :class:`~repro.core.session.KeyAgreementSession`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.mobility import RelativeMotion
from repro.channel.scenario import ScenarioConfig, ScenarioName, scenario_config
from repro.core.model import PredictionQuantizationModel
from repro.core.session import KeyAgreementSession, SessionResult
from repro.exceptions import (
    InsufficientEntropyError,
    KeyEstablishmentError,
    RetryBudgetExhausted,
    SessionAborted,
)
from repro.faults.adversary import ActiveAdversary, AdversaryPlan, build_adversary
from repro.faults.link import LinkFaultModel
from repro.faults.messages import LossyMessageChannel
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.lora.airtime import LoRaPHYConfig
from repro.lora.radio import DRAGINO_LORA_SHIELD, TransceiverModel
from repro.metrics.generation import key_generation_rate
from repro.probing.dataset import DatasetSplits, KeyGenDataset, build_dataset, split_dataset
from repro.probing.features import FeatureConfig, arrssi_sequences
from repro.probing.protocol import (
    EavesdropperSetup,
    ProbingProtocol,
    run_fastpath_group,
)
from repro.probing.trace import ProbeTrace
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class PipelineConfig:
    """All tunables of a Vehicle-Key deployment.

    Defaults follow the paper where it specifies values; ``hidden_units``
    defaults below the paper's 128 because the numpy BiLSTM is the
    training bottleneck and 64 units reproduce the same accuracy on the
    simulated channel (the paper-scale setting is one argument away).
    """

    scenario: ScenarioConfig = field(
        default_factory=lambda: scenario_config(ScenarioName.V2V_URBAN)
    )
    phy: LoRaPHYConfig = field(default_factory=LoRaPHYConfig)
    alice_device: TransceiverModel = DRAGINO_LORA_SHIELD
    bob_device: TransceiverModel = DRAGINO_LORA_SHIELD
    # values_per_packet=4 doubles the key rate over the probing default of
    # 2; the prediction model plus two-sided guards absorb the extra
    # decorrelation of the deeper arRSSI blocks.
    feature_config: FeatureConfig = field(
        default_factory=lambda: FeatureConfig(window_fraction=0.10, values_per_packet=4)
    )
    seq_len: int = 32
    hidden_units: int = 64
    key_bits: int = 64
    theta: float = 0.9
    code_dim: int = 48
    decoder_units: int = 192
    rounds_per_episode: int = 64
    session_rounds: int = 512
    final_key_bits: int = 128
    alice_confidence_margin: float = 0.20
    bob_guard_fraction: float = 0.35

    def __post_init__(self) -> None:
        require_positive(self.rounds_per_episode, "rounds_per_episode")

    @classmethod
    def paper_scale(cls, **overrides) -> "PipelineConfig":
        """The paper's exact architecture sizes (Sec. V-A2).

        128 BiLSTM hidden units per direction and 200 training epochs are
        the paper's settings; on this numpy substrate they cost several
        times the default profile for an accuracy difference within noise
        on the simulated channel.
        """
        overrides.setdefault("hidden_units", 128)
        return cls(**overrides)


def build_episode_protocol(
    config: PipelineConfig,
    episode_seeds: SeedSequenceFactory,
    interference: Sequence = (),
    fault_plan: Optional[FaultPlan] = None,
    retry_policy: Optional[RetryPolicy] = None,
    adversary: Optional[ActiveAdversary] = None,
    fast_path: bool = True,
) -> Tuple[ProbingProtocol, Tuple[object, object], object]:
    """Fresh trajectories/channel/protocol for one probing episode.

    Module-level (and model-free) so process-pool workers can build an
    episode from just the picklable config and its seed factory; returns
    ``(protocol, (alice, bob), channel)``.
    """
    alice, bob = config.scenario.build_trajectories(episode_seeds)
    motion = RelativeMotion(alice, bob)
    channel = config.scenario.build_channel(episode_seeds, motion)
    # A null plan is the ideal link; skipping the fault model entirely
    # keeps the no-fault path bit-identical to the seed behaviour.
    fault_model = None
    if fault_plan is not None and not fault_plan.is_null:
        fault_model = LinkFaultModel(fault_plan, episode_seeds)
    protocol = ProbingProtocol(
        channel=channel,
        phy=config.phy,
        alice_device=config.alice_device,
        bob_device=config.bob_device,
        interference=interference,
        fault_model=fault_model,
        retry_policy=retry_policy,
        adversary=adversary,
        fast_path=fast_path,
    )
    return protocol, (alice, bob), channel


def _episode_dataset(
    config: PipelineConfig, root_seed: int, episode_label: str
) -> Optional[KeyGenDataset]:
    """One training episode's window dataset (``None`` if it fell short).

    Worker for parallel dataset collection.  Episode seeds are derived by
    *name* from the root seed, so the result is byte-identical no matter
    which process (or how many) runs the episode.
    """
    episode_seeds = SeedSequenceFactory(root_seed).child(f"episode-{episode_label}")
    protocol, _, _ = build_episode_protocol(config, episode_seeds)
    trace = protocol.run(config.rounds_per_episode, episode_seeds)
    bob_seq, alice_seq = arrssi_sequences(trace, config.feature_config)
    if len(alice_seq) < config.seq_len:
        return None  # an episode that lost too many packets
    return build_dataset(alice_seq, bob_seq, seq_len=config.seq_len)


class VehicleKeyPipeline:
    """Train and run Vehicle-Key in a simulated IoV scenario.

    Args:
        config: Pipeline configuration.
        seed: Root seed; every episode, model and noise stream derives
            from it deterministically.
    """

    def __init__(self, config: Optional[PipelineConfig] = None, seed: int = 0):
        self.config = config if config is not None else PipelineConfig()
        self.seeds = SeedSequenceFactory(seed)
        self.model = PredictionQuantizationModel(
            seq_len=self.config.seq_len,
            hidden_units=self.config.hidden_units,
            key_bits=self.config.key_bits,
            theta=self.config.theta,
            seed=self.seeds.generator("model-init"),
        )
        self.reconciler = AutoencoderReconciliation(
            key_bits=self.config.key_bits,
            code_dim=self.config.code_dim,
            decoder_units=self.config.decoder_units,
            seed=self.seeds.generator("reconciler-init"),
        )
        self.splits: Optional[DatasetSplits] = None
        self.training_report = None

    @classmethod
    def for_scenario(
        cls, name: ScenarioName, seed: int = 0, **overrides
    ) -> "VehicleKeyPipeline":
        """Pipeline preconfigured for one of the paper's four scenarios."""
        config = PipelineConfig(scenario=scenario_config(name), **overrides)
        return cls(config=config, seed=seed)

    # -- data collection ------------------------------------------------------
    def build_protocol(
        self,
        episode: str,
        interference: Sequence = (),
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary: Optional[ActiveAdversary] = None,
        fast_path: bool = True,
    ) -> Tuple[ProbingProtocol, SeedSequenceFactory, object, object]:
        """Fresh trajectories/channel/protocol for one probing episode."""
        episode_seeds = self.seeds.child(f"episode-{episode}")
        protocol, (alice, bob), channel = build_episode_protocol(
            self.config,
            episode_seeds,
            interference=interference,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adversary=adversary,
            fast_path=fast_path,
        )
        return protocol, episode_seeds, (alice, bob), channel

    def collect_trace(
        self,
        episode: str,
        n_rounds: int = None,
        eavesdropper_builders: Sequence = (),
        interference: Sequence = (),
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary: Optional[ActiveAdversary] = None,
        fast_path: bool = True,
    ) -> ProbeTrace:
        """Run one probing episode; returns its trace.

        Args:
            episode: Episode label (distinct labels give independent
                channel realizations).
            n_rounds: Rounds to probe (default: config.rounds_per_episode).
            eavesdropper_builders: Callables
                ``(scenario, seeds, channel, alice, bob) -> EavesdropperSetup``.
            interference: Interference sources audible during this episode.
            fault_plan: Optional link-fault injection for this episode;
                the probing layer then runs its ARQ retry loop.
            retry_policy: ARQ budget/backoff used with a fault plan.
            adversary: Optional active attacker whose probing-layer
                attacks (jamming, replay, injection) are woven into the
                episode's ARQ loop.
            fast_path: Allow the protocol's vectorized fault-free path
                (default).  ``False`` forces the per-round loop; traces
                are bit-identical either way.
        """
        protocol, episode_seeds, (alice, bob), channel = self.build_protocol(
            episode,
            interference=interference,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
            adversary=adversary,
            fast_path=fast_path,
        )
        eavesdroppers: List[EavesdropperSetup] = [
            builder(self.config.scenario, episode_seeds, channel, alice, bob)
            for builder in eavesdropper_builders
        ]
        rounds = n_rounds if n_rounds is not None else self.config.rounds_per_episode
        return protocol.run(rounds, episode_seeds, eavesdroppers=eavesdroppers)

    def collect_traces(
        self,
        episodes: Sequence[str],
        n_rounds: int = None,
    ) -> List[ProbeTrace]:
        """Probe several independent episodes in one stacked evaluation.

        The cross-session form of :meth:`collect_trace`: one protocol is
        built per episode label and the whole group runs through
        :func:`~repro.probing.protocol.run_fastpath_group`, which shares
        the round timeline and the trig-heavy fading batch across
        sessions.  Trace ``i`` is bit-identical to
        ``collect_trace(episodes[i], n_rounds=n_rounds)``.
        """
        labels = list(episodes)
        require(bool(labels), "collect_traces needs at least one episode")
        rounds = n_rounds if n_rounds is not None else self.config.rounds_per_episode
        protocols: List[ProbingProtocol] = []
        factories: List[SeedSequenceFactory] = []
        for label in labels:
            protocol, episode_seeds, _, _ = self.build_protocol(label)
            protocols.append(protocol)
            factories.append(episode_seeds)
        return run_fastpath_group(protocols, rounds, factories)

    def collect_dataset(
        self,
        n_episodes: int = 12,
        episode_prefix: str = "train",
        jobs: int = 1,
    ) -> KeyGenDataset:
        """Windows from several independent episodes, concatenated.

        Windows never straddle episode boundaries.

        Args:
            n_episodes: Independent probing episodes to collect.
            episode_prefix: Label prefix; episode ``i`` is seeded from
                ``{prefix}-{i}``.
            jobs: Worker processes.  Episodes are seeded by name, so the
                dataset is byte-identical for any ``jobs`` value; parallel
                collection requires the pipeline to have an integer root
                seed.
        """
        require_positive(n_episodes, "n_episodes")
        labels = [f"{episode_prefix}-{index}" for index in range(n_episodes)]
        if jobs > 1 and n_episodes > 1:
            require(
                self.seeds.root_seed is not None,
                "parallel dataset collection needs an integer root seed",
            )
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = None
            with ProcessPoolExecutor(
                max_workers=min(jobs, n_episodes), mp_context=context
            ) as pool:
                futures = [
                    pool.submit(
                        _episode_dataset, self.config, self.seeds.root_seed, label
                    )
                    for label in labels
                ]
                results = [future.result() for future in futures]
        else:
            results = [
                _episode_dataset(self.config, self.seeds.root_seed, label)
                for label in labels
            ]
        parts: List[KeyGenDataset] = [part for part in results if part is not None]
        require(bool(parts), "no episode produced a full window; check the link budget")
        return KeyGenDataset(
            alice=np.concatenate([p.alice for p in parts]),
            bob=np.concatenate([p.bob for p in parts]),
            alice_raw=np.concatenate([p.alice_raw for p in parts]),
            bob_raw=np.concatenate([p.bob_raw for p in parts]),
        )

    # -- training ---------------------------------------------------------------
    def train(
        self,
        n_episodes: int = 300,
        epochs: int = 200,
        reconciler_epochs: int = 60,
        dataset: KeyGenDataset = None,
        batch_size: int = 64,
        learning_rate: float = 1.5e-3,
        patience: int = 30,
        verbose: bool = False,
        checkpoint_dir=None,
        resume: bool = False,
    ) -> "VehicleKeyPipeline":
        """Collect data (unless given) and train both learned components.

        The defaults reproduce the paper-scale setting (200 epochs with
        validation-based early stopping).  Pass smaller ``n_episodes`` /
        ``epochs`` for quick runs; the model degrades gracefully.

        ``checkpoint_dir`` enables crash-safe model training: the full
        training state is checkpointed every epoch and ``resume=True``
        continues an interrupted run bit-for-bit (see
        :meth:`PredictionQuantizationModel.fit`).  Resuming requires the
        same dataset; pass the one the interrupted run used (or rely on
        the deterministic episode seeding, which regenerates it).
        """
        from repro.nn.callbacks import EarlyStopping

        if dataset is None:
            dataset = self.collect_dataset(n_episodes)
        self.splits = split_dataset(
            dataset, seed=self.seeds.generator("split")
        )
        self.training_report = self.model.fit(
            self.splits.train,
            self.splits.validation,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            early_stopping=EarlyStopping(patience=patience),
            verbose=verbose,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
        )
        # Size the reconciler's training mismatches to what the model
        # actually leaves uncorrected, with headroom for harder sessions.
        observed_bdr = self._observed_disagreement(self.splits.validation)
        self.reconciler.fit(
            n_samples=40000,
            epochs=reconciler_epochs,
            mismatch_rate_range=(0.0, float(min(0.12, max(0.08, 1.5 * observed_bdr)))),
        )
        return self

    def _observed_disagreement(self, dataset: KeyGenDataset) -> float:
        if dataset is None or len(dataset) == 0:
            return 0.04
        alice = self.model.alice_bits(dataset.alice)
        bob = self.model.bob_bits(dataset.bob_raw)
        return float(np.mean(alice != bob))

    # -- key establishment ----------------------------------------------------------
    def build_session(self) -> KeyAgreementSession:
        """The authenticated session runner for this pipeline's models.

        The session carries the model's out-of-distribution inference
        guard (built from the training-window statistics embedded in the
        model); when live windows drift too far from the training
        distribution, key extraction degrades to the conventional
        quantizer path and the outcome reports it.
        """
        return KeyAgreementSession(
            model=self.model,
            reconciler=self.reconciler,
            feature_config=self.config.feature_config,
            final_key_bits=self.config.final_key_bits,
            alice_confidence_margin=self.config.alice_confidence_margin,
            bob_guard_fraction=self.config.bob_guard_fraction,
            inference_guard=self.model.inference_guard(),
        )

    def establish_key(
        self,
        episode: str = "live",
        n_rounds: int = None,
        trace: ProbeTrace = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary_plan: Optional[AdversaryPlan] = None,
        max_attempts: int = 1,
        reprobe_airtime_budget_s: Optional[float] = None,
        raise_on_failure: bool = False,
        probing_fast_path: bool = True,
    ) -> "KeyEstablishmentOutcome":
        """Probe a fresh episode and run the full key agreement.

        Args:
            episode: Episode label for the probing burst.
            n_rounds: Rounds per probing burst (default:
                ``config.session_rounds``).
            trace: Pre-collected trace to use for the first attempt
                instead of probing.
            fault_plan: Optional fault injection: link loss + register
                corruption during probing (absorbed by the ARQ layer) and
                drop/duplication/reorder on the syndrome exchange
                (absorbed by bounded re-requests).
            retry_policy: ARQ budget/backoff under the fault plan.
            adversary_plan: Optional active-attack plan.  A fresh seeded
                :class:`~repro.faults.adversary.ActiveAdversary` is built
                per probing attempt, attacking both the probing layer and
                the syndrome/confirmation exchange; attacks compose with
                ``fault_plan``.  An aborted session discards its suspect
                bits and re-syncs with a fresh probing burst on the next
                attempt (bounded by ``max_attempts``).  A null plan is
                bit-identical to no adversary.
            max_attempts: Probing bursts allowed before giving up.  When a
                session ends without enough verified bits, a fresh episode
                is probed and the surviving bits of all bursts are pooled.
                The default of 1 reproduces the seed's single-shot
                behaviour exactly.
            reprobe_airtime_budget_s: Optional wall-clock cap on the total
                probing time across re-probe attempts; once exceeded no
                further burst is probed and the outcome reports
                ``retry-budget-exhausted``.
            raise_on_failure: Raise :class:`InsufficientEntropyError` /
                :class:`RetryBudgetExhausted` /
                :class:`~repro.exceptions.SessionAborted` instead of
                returning a failed outcome.  A final-key mismatch always
                surfaces as ``success=False`` with
                ``failure_reason="key-mismatch"`` and is never returned
                as a silent pair of different keys.
            probing_fast_path: Allow the vectorized fault-free probing
                path (default).  ``False`` forces the per-round loop --
                traces, and therefore keys, are bit-identical either way.
        """
        require(max_attempts >= 1, "max_attempts must be >= 1")
        plan = fault_plan if fault_plan is not None and not fault_plan.is_null else None
        attack_plan = (
            adversary_plan
            if adversary_plan is not None and not adversary_plan.is_null
            else None
        )
        rounds = n_rounds if n_rounds is not None else self.config.session_rounds
        session = self.build_session()

        all_traces: List[ProbeTrace] = [] if trace is None else [trace]
        # ``pool`` holds the traces feeding the *current* session; an
        # abort empties it (desync recovery: suspect bits are discarded
        # and the next attempt re-syncs from a fresh burst) while
        # ``all_traces`` keeps everything for airtime accounting.
        pool: List[ProbeTrace] = list(all_traces)
        result: SessionResult = None
        budget_stopped = False
        attempts = 0
        aborted_attempts = 0
        adversary_events = None
        for attempt in range(max_attempts):
            attempts = attempt + 1
            label = episode if attempt == 0 else f"{episode}-reprobe-{attempt}"
            adversary = None
            if attack_plan is not None:
                adversary = build_adversary(
                    attack_plan, self.seeds.child(f"episode-{label}")
                )
            if attempt > 0 or not pool:
                collected = self.collect_trace(
                    label,
                    n_rounds=rounds,
                    fault_plan=plan,
                    retry_policy=retry_policy,
                    adversary=adversary,
                    fast_path=probing_fast_path,
                )
                pool.append(collected)
                all_traces.append(collected)
            channel = None
            if plan is not None and plan.messages.active:
                channel = LossyMessageChannel(
                    plan.messages,
                    self.seeds.child(f"episode-{label}").generator(
                        "fault-messages"
                    ),
                )
            run_kwargs = {"channel": channel}
            if adversary is not None:
                run_kwargs["adversary"] = adversary
            result = session.run(
                pool[0] if len(pool) == 1 else pool, **run_kwargs
            )
            if adversary is not None:
                counts = adversary.event_counts()
                if adversary_events is None:
                    adversary_events = counts
                else:
                    adversary_events = {
                        key: adversary_events.get(key, 0) + value
                        for key, value in counts.items()
                    }
            if result.abort is not None:
                aborted_attempts += 1
                pool = []
            if result.final_key_alice is not None:
                break
            probing_so_far = sum(t.duration_s for t in all_traces)
            if (
                reprobe_airtime_budget_s is not None
                and probing_so_far >= reprobe_airtime_budget_s
            ):
                budget_stopped = True
                break

        return self.build_outcome(
            result,
            all_traces,
            attempts=attempts,
            budget_stopped=budget_stopped,
            raise_on_failure=raise_on_failure,
            aborted_attempts=aborted_attempts,
            adversary_events=adversary_events,
        )

    def build_outcome(
        self,
        result: SessionResult,
        traces: Sequence[ProbeTrace],
        attempts: int = 1,
        budget_stopped: bool = False,
        raise_on_failure: bool = False,
        aborted_attempts: int = 0,
        adversary_events=None,
    ) -> "KeyEstablishmentOutcome":
        """Grade a completed session into a :class:`KeyEstablishmentOutcome`.

        Shared by :meth:`establish_key` and the batched multi-session
        engine so both report failures, airtime and key-generation rate
        identically.

        Args:
            result: The session's message-level result.
            traces: The probing traces the session consumed.
            attempts: Probing bursts that were run.
            budget_stopped: Whether a re-probe airtime budget cut the
                attempt loop short.
            raise_on_failure: Raise the typed establishment error instead
                of returning a failed outcome.
            aborted_attempts: Attempts ended by a session abort (desync
                recovery re-probed after each).
            adversary_events: Accumulated attack-event counters from the
                active adversary, when one was configured.
        """
        # A state-machine abort outranks every inferred failure: its slug
        # is the ground truth for why no key exists.
        failure_reason = None
        if result.abort is not None:
            failure_reason = result.abort.reason
        elif result.final_key_alice is None:
            exhausted = budget_stopped or attempts > 1
            failure_reason = (
                RetryBudgetExhausted.reason
                if exhausted
                else InsufficientEntropyError.reason
            )
        elif result.final_key_alice != result.final_key_bob:
            failure_reason = "key-mismatch"
        if raise_on_failure and failure_reason is not None:
            message = (
                f"key establishment failed after {attempts} attempt(s): "
                f"{failure_reason} ({result.agreed_bits} verified bits, "
                f"need {self.config.final_key_bits})"
            )
            if result.abort is not None:
                raise SessionAborted(message, abort=result.abort)
            if failure_reason == RetryBudgetExhausted.reason:
                raise RetryBudgetExhausted(message)
            if failure_reason == InsufficientEntropyError.reason:
                raise InsufficientEntropyError(message)
            raise KeyEstablishmentError(message)

        probing_time = sum(t.duration_s for t in traces)
        # Two batched mask-exchange messages plus the per-block syndromes.
        airtime = self.reconciliation_airtime_s(
            result.reconciliation_messages + 2, result.total_public_bytes
        )
        kgr = key_generation_rate(result.agreed_bits, probing_time, airtime)
        retry_limit = next(
            (t.retry_limit for t in traces if t.retry_limit is not None), None
        )
        max_round_retries = max((t.max_round_retries for t in traces), default=0)
        replays_rejected = sum(t.total_replays_rejected for t in traces)
        detections = (
            replays_rejected
            + result.rejected_messages
            + result.mac_failures
            + (1 if result.confirmed is False else 0)
        )
        return KeyEstablishmentOutcome(
            session=result,
            probing_time_s=probing_time,
            reconciliation_airtime_s=airtime,
            key_generation_rate_bps=kgr,
            failure_reason=failure_reason,
            attempts=attempts,
            total_retries=sum(t.total_retries for t in traces),
            dropped_rounds=sum(t.n_dropped_rounds for t in traces),
            retry_limit_per_round=retry_limit,
            max_round_retries=max_round_retries,
            retry_budget_remaining=(
                None if retry_limit is None else retry_limit - max_round_retries
            ),
            total_backoff_s=sum(t.total_backoff_s for t in traces),
            time_to_abort_s=(
                probing_time + airtime if result.abort is not None else None
            ),
            attack_detections=detections,
            adversary_events=adversary_events,
            aborted_attempts=aborted_attempts,
        )

    def fingerprint(self) -> str:
        """Short stable digest of this pipeline's configuration and seed.

        The secure-channel KDF binds traffic keys to it
        (:class:`repro.secure.kdf.ChannelContext.pipeline_fingerprint`),
        so keys established under one model/config generation never
        verify under another.  Hashes every :class:`PipelineConfig` field
        (recursively) plus the root seed; trained weights are deliberately
        excluded -- a hot-reloaded model of the same generation must not
        orphan live channels.
        """
        import hashlib
        import json
        from dataclasses import asdict

        payload = {"config": asdict(self.config), "seed": self.seeds.root_seed}
        blob = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

    # -- persistence ------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist both trained components into ``directory``.

        Writes ``model.npz`` and ``reconciler.npz``; the configuration is
        code (callers reconstruct the pipeline with the same
        :class:`PipelineConfig` before loading).
        """
        from pathlib import Path

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        self.model.save(target / "model.npz")
        self.reconciler.save(target / "reconciler.npz")

    def load(self, directory) -> "VehicleKeyPipeline":
        """Load components written by :meth:`save` (same config required)."""
        from pathlib import Path

        source = Path(directory)
        self.model.load(source / "model.npz")
        self.reconciler.load(source / "reconciler.npz")
        return self

    def reconciliation_airtime_s(self, messages: int, payload_bytes: int) -> float:
        """LoRa airtime consumed by reconciliation traffic."""
        if messages == 0:
            return 0.0
        per_message = max(1, min(255, -(-payload_bytes // messages)))
        return messages * self.config.phy.with_payload(per_message).airtime_s


@dataclass(frozen=True)
class KeyEstablishmentOutcome:
    """One full key establishment's report card.

    Attributes:
        session: The message-level session result.
        probing_time_s: Airtime spent probing.
        reconciliation_airtime_s: Airtime spent on reconciliation traffic.
        key_generation_rate_bps: Agreed key-material bits per protocol second.
        failure_reason: ``None`` on success; otherwise a machine-readable
            slug (``"insufficient-entropy"``, ``"retry-budget-exhausted"``,
            ``"key-mismatch"``, or one of the state-machine abort reasons
            in :data:`repro.core.statemachine.ABORT_REASONS`).
        attempts: Probing bursts consumed (1 unless re-probing fired).
        total_retries: ARQ retransmissions across all probing bursts.
        dropped_rounds: Probing rounds discarded after exhausting retries.
        retry_limit_per_round: The ARQ policy's per-round retry budget, or
            ``None`` when probing ran without an ARQ layer.
        max_round_retries: The worst single round's retransmission count.
        retry_budget_remaining: Unused retries in the worst round
            (``retry_limit_per_round - max_round_retries``); ``None``
            without ARQ.  Never negative on a budget-respecting run -- the
            chaos harness asserts exactly that.
        total_backoff_s: Wall-clock time spent in ARQ timeouts/backoff.
        time_to_abort_s: Protocol time elapsed when the state machine
            aborted (probing plus reconciliation airtime); ``None`` when
            the session completed.
        attack_detections: Detected attack events -- rejected replays,
            rejected/malformed messages, MAC failures and failed
            confirmations.
        adversary_events: Attack-event counters from the configured
            :class:`~repro.faults.adversary.ActiveAdversary` (``None``
            without one): what was actually *launched*, the denominator
            for detection rates.
        aborted_attempts: Attempts ended by a session abort before the
            final one.
    """

    session: SessionResult
    probing_time_s: float
    reconciliation_airtime_s: float
    key_generation_rate_bps: float
    failure_reason: Optional[str] = None
    attempts: int = 1
    total_retries: int = 0
    dropped_rounds: int = 0
    retry_limit_per_round: Optional[int] = None
    max_round_retries: int = 0
    retry_budget_remaining: Optional[int] = None
    total_backoff_s: float = 0.0
    time_to_abort_s: Optional[float] = None
    attack_detections: int = 0
    adversary_events: Optional[dict] = None
    aborted_attempts: int = 0

    @property
    def agreement_rate(self) -> float:
        """Post-reconciliation agreement in [0, 1]."""
        return self.session.reconciled_agreement.mean

    @property
    def raw_agreement_rate(self) -> float:
        """Pre-reconciliation agreement in [0, 1]."""
        return self.session.raw_agreement.mean

    @property
    def final_key(self) -> Optional[bytes]:
        """Alice's final key (``None`` if the session fell short of bits)."""
        return self.session.final_key_alice

    @property
    def success(self) -> bool:
        """Whether both parties ended with the same *confirmed* final key."""
        return self.failure_reason is None and self.session.keys_match

    @property
    def aborted(self) -> bool:
        """Whether the final session ended in a state-machine abort."""
        return self.session.abort is not None

    @property
    def abort_reason(self) -> Optional[str]:
        """The final session's abort slug, or ``None``."""
        return None if self.session.abort is None else self.session.abort.reason

    @property
    def degraded_mode(self) -> Optional[str]:
        """``None``, or the slug of the fallback mode the session used.

        ``"ood-quantizer-fallback"`` means the inference guard rejected
        live windows as out-of-distribution and Alice's bits came from
        her conventional quantizer instead of the learned model.
        """
        return self.session.degraded_mode

    @property
    def ood_windows(self) -> int:
        """Windows the inference guard flagged out-of-distribution."""
        return self.session.ood_windows
