"""Batched multi-session key-establishment engine.

Serving key establishment at production scale means running many
concurrent sessions against one trained model.  Executed naively, each
session pays for its own probing episode *and* its own model forward
pass; the forward pass in particular leaves most of the batched-GEMM
throughput of :class:`~repro.core.model.PredictionQuantizationModel` on
the table when called with one session's handful of windows at a time.

:class:`BatchedSessionRunner` amortizes the work across ``N`` sessions:

1. every session's probing trace is generated through the vectorized
   fault-free protocol path,
2. all sessions' arRSSI windows are stacked into one matrix and pushed
   through a **single** ``predict_bit_probabilities`` call,
3. each session then completes its own authenticated message exchange
   with its precomputed slice of the predictions.

Per-session outcomes are *bit-identical* to running
:meth:`~repro.core.pipeline.VehicleKeyPipeline.establish_key` once per
episode label (``tests/test_batched_sessions.py`` pins this): the
stacked forward pass computes each window row independently, and the
session layer consumes the precomputed probabilities through the same
guarded extraction path it would otherwise compute itself.

The amortized path assumes the fault-free vectorized protocol.  When a
:class:`~repro.faults.plan.FaultPlan` or
:class:`~repro.faults.adversary.AdversaryPlan` is active, the runner
falls back to one :meth:`establish_key` call per session -- faults and
attacks need the per-round ARQ loop and per-session adversary state, so
they are executed rather than silently ignored, and batched outcomes
stay identical to the sequential loop under faults too (pinned by the
same test module).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.pipeline import KeyEstablishmentOutcome, VehicleKeyPipeline
from repro.faults.adversary import AdversaryPlan
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.probing.dataset import build_dataset
from repro.probing.features import arrssi_sequences
from repro.probing.trace import ProbeTrace
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class BatchReport:
    """What one batched multi-session run produced.

    Attributes:
        outcomes: Per-session establishment outcomes, in session order.
        elapsed_s: Wall-clock time for the whole batch (probing through
            privacy amplification).
    """

    outcomes: List[KeyEstablishmentOutcome]
    elapsed_s: float

    @property
    def n_sessions(self) -> int:
        """Sessions the batch ran."""
        return len(self.outcomes)

    @property
    def n_successful(self) -> int:
        """Sessions that ended with both parties holding the same key."""
        return sum(1 for outcome in self.outcomes if outcome.success)

    @property
    def sessions_per_sec(self) -> float:
        """Batch throughput in completed sessions per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.n_sessions / self.elapsed_s


class BatchedSessionRunner:
    """Run many key-establishment sessions against one trained pipeline.

    Args:
        pipeline: A trained :class:`~repro.core.pipeline.VehicleKeyPipeline`.
        n_rounds: Probing rounds per session (default:
            ``config.session_rounds``).
        episode_prefix: Label prefix; session ``i`` probes episode
            ``{prefix}-{i}``, so a batch covers the same independent
            channel realizations the sequential loop would.
        fault_plan: Optional fault injection applied to every session.
            Any active plan disables the amortized fast path (see
            :attr:`amortized`).
        retry_policy: ARQ budget/backoff used with an active fault or
            adversary plan.
        adversary_plan: Optional active-attack plan applied to every
            session; also disables the amortized fast path.
    """

    def __init__(
        self,
        pipeline: VehicleKeyPipeline,
        n_rounds: Optional[int] = None,
        episode_prefix: str = "batch",
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary_plan: Optional[AdversaryPlan] = None,
    ):
        self.pipeline = pipeline
        self.n_rounds = (
            int(n_rounds)
            if n_rounds is not None
            else pipeline.config.session_rounds
        )
        require_positive(self.n_rounds, "n_rounds")
        self.episode_prefix = episode_prefix
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.adversary_plan = adversary_plan

    @property
    def amortized(self) -> bool:
        """Whether the batch may take the stacked-inference fast path.

        Faults and active attacks require the per-round ARQ loop and
        per-session adversary/channel state, so any active plan forces
        per-session execution.
        """
        if self.fault_plan is not None and not self.fault_plan.is_null:
            return False
        if self.adversary_plan is not None and not self.adversary_plan.is_null:
            return False
        return True

    def session_labels(self, n_sessions: int) -> List[str]:
        """The episode labels a batch of ``n_sessions`` probes."""
        return [f"{self.episode_prefix}-{i}" for i in range(n_sessions)]

    def run(self, n_sessions: int) -> BatchReport:
        """Execute ``n_sessions`` sessions with amortized model inference.

        Returns a :class:`BatchReport`; its per-session outcomes match a
        sequential ``establish_key`` loop over the same episode labels
        bit-for-bit.  With an active fault or adversary plan the batch
        *is* that sequential loop (see :attr:`amortized`).
        """
        require_positive(n_sessions, "n_sessions")
        if not self.amortized:
            return self._run_per_session(n_sessions)
        start = time.perf_counter()
        session = self.pipeline.build_session()
        model = self.pipeline.model
        feature_config = self.pipeline.config.feature_config

        # 1. Bulk trace generation: one vectorized probing episode per
        # session, each with its own channel realization.
        traces: List[ProbeTrace] = [
            self.pipeline.collect_trace(label, n_rounds=self.n_rounds)
            for label in self.session_labels(n_sessions)
        ]

        # 2. Stacked feature extraction, mirroring the session layer's
        # own windowing (including its too-short-trace filter) so the
        # prediction slices line up with what each session will rebuild.
        datasets: List[Optional[object]] = []
        for trace in traces:
            bob_seq, alice_seq = arrssi_sequences(trace, feature_config)
            if len(alice_seq) < model.seq_len:
                datasets.append(None)
                continue
            datasets.append(build_dataset(alice_seq, bob_seq, seq_len=model.seq_len))

        # 3. One forward pass over every session's windows.
        stacked = [dataset.alice for dataset in datasets if dataset is not None]
        predictions: Dict[int, np.ndarray] = {}
        if stacked:
            all_probs = model.predict_bit_probabilities(np.concatenate(stacked))
            cursor = 0
            for index, dataset in enumerate(datasets):
                if dataset is None:
                    continue
                predictions[index] = all_probs[cursor : cursor + len(dataset)]
                cursor += len(dataset)

        # 4. Per-session authenticated message exchange, reusing the
        # precomputed prediction slice instead of re-running the model.
        outcomes: List[KeyEstablishmentOutcome] = []
        for index, trace in enumerate(traces):
            probs = [predictions[index]] if index in predictions else None
            result = session.run(trace, alice_probabilities=probs)
            outcomes.append(self.pipeline.build_outcome(result, [trace]))

        elapsed = time.perf_counter() - start
        return BatchReport(outcomes=outcomes, elapsed_s=elapsed)

    def _run_per_session(self, n_sessions: int) -> BatchReport:
        """Fault/adversary fallback: one ``establish_key`` per session.

        Exactly the sequential loop a caller would write, so fault and
        attack semantics (ARQ, lossy syndrome channels, per-session
        adversary state, structured aborts) apply unchanged.
        """
        start = time.perf_counter()
        outcomes = [
            self.pipeline.establish_key(
                episode=label,
                n_rounds=self.n_rounds,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy,
                adversary_plan=self.adversary_plan,
            )
            for label in self.session_labels(n_sessions)
        ]
        elapsed = time.perf_counter() - start
        return BatchReport(outcomes=outcomes, elapsed_s=elapsed)
