"""Batched multi-session key-establishment engine.

Serving key establishment at production scale means running many
concurrent sessions against one trained model.  Executed naively, each
session pays for its own probing episode *and* its own model forward
pass; the forward pass in particular leaves most of the batched-GEMM
throughput of :class:`~repro.core.model.PredictionQuantizationModel` on
the table when called with one session's handful of windows at a time.

:class:`BatchedSessionRunner` amortizes the work across ``N`` sessions:

1. every session's probing trace is generated through the vectorized
   fault-free protocol path,
2. all sessions' arRSSI windows are stacked into one matrix and pushed
   through a **single** ``predict_bit_probabilities`` call,
3. each session then completes its own authenticated message exchange
   with its precomputed slice of the predictions.

Per-session outcomes are *bit-identical* to running
:meth:`~repro.core.pipeline.VehicleKeyPipeline.establish_key` once per
episode label (``tests/test_batched_sessions.py`` pins this): the
stacked forward pass computes each window row independently, and the
session layer consumes the precomputed probabilities through the same
guarded extraction path it would otherwise compute itself.

The amortized path assumes the fault-free vectorized protocol.  When a
:class:`~repro.faults.plan.FaultPlan` or
:class:`~repro.faults.adversary.AdversaryPlan` is active, the runner
falls back to one :meth:`establish_key` call per session -- faults and
attacks need the per-round ARQ loop and per-session adversary state, so
they are executed rather than silently ignored, and batched outcomes
stay identical to the sequential loop under faults too (pinned by the
same test module).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.pipeline import KeyEstablishmentOutcome, VehicleKeyPipeline
from repro.faults.adversary import AdversaryPlan
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.probing.dataset import build_dataset
from repro.probing.features import arrssi_sequences
from repro.probing.trace import ProbeTrace
from repro.utils.validation import require, require_positive

#: The runner a forked shard worker executes.  Set by the parent
#: immediately before its worker pool forks, so children inherit the
#: whole runner (trained model weights included) as copy-on-write pages
#: instead of a per-worker pickle.
_SHARD_RUNNER: Optional["BatchedSessionRunner"] = None


def _run_shard_chunk(labels: List[str]) -> "BatchReport":
    """Fork-pool worker: run one contiguous chunk of the batch's labels."""
    return _SHARD_RUNNER._run_episodes_local(labels)


def _contiguous_chunks(labels: List[str], n_chunks: int) -> List[List[str]]:
    """Split ``labels`` into up to ``n_chunks`` contiguous, near-even runs.

    Earlier chunks absorb the remainder, sizes differ by at most one, and
    concatenating the chunks reproduces ``labels`` exactly -- the merge
    side relies on that for deterministic session order.
    """
    n_chunks = min(n_chunks, len(labels))
    base, remainder = divmod(len(labels), n_chunks)
    chunks: List[List[str]] = []
    cursor = 0
    for index in range(n_chunks):
        size = base + (1 if index < remainder else 0)
        chunks.append(labels[cursor : cursor + size])
        cursor += size
    return chunks


@dataclass(frozen=True)
class BatchReport:
    """What one batched multi-session run produced.

    Attributes:
        outcomes: Per-session establishment outcomes, in session order.
        elapsed_s: Wall-clock time for the whole batch (probing through
            privacy amplification).
        phase_s: Wall-clock seconds per batch phase -- ``probe`` (trace
            generation), ``window`` (stacked feature extraction),
            ``predict`` (the single batched forward pass), ``reconcile``
            and ``amplify`` (summed from each session's own phase
            timings) and ``orchestrate`` (everything else: outcome
            grading, Python dispatch, and on a sharded run the fork /
            merge overhead).  Populated on the amortized fast path; empty
            on the fault/adversary fallback, whose per-session
            ``establish_key`` calls do not decompose.  On a sharded run
            each named phase is the *maximum* across shards (the
            wall-clock view of phases running in parallel).
        shards: Worker processes the batch actually ran across (1 for an
            in-process run, including any fallback from an unavailable
            fork context).
    """

    outcomes: List[KeyEstablishmentOutcome]
    elapsed_s: float
    phase_s: Dict[str, float] = field(default_factory=dict)
    shards: int = 1

    @property
    def n_sessions(self) -> int:
        """Sessions the batch ran."""
        return len(self.outcomes)

    @property
    def n_successful(self) -> int:
        """Sessions that ended with both parties holding the same key."""
        return sum(1 for outcome in self.outcomes if outcome.success)

    @property
    def sessions_per_sec(self) -> float:
        """Batch throughput in completed sessions per wall-clock second."""
        if self.elapsed_s <= 0.0:
            return float("inf")
        return self.n_sessions / self.elapsed_s


class BatchedSessionRunner:
    """Run many key-establishment sessions against one trained pipeline.

    Args:
        pipeline: A trained :class:`~repro.core.pipeline.VehicleKeyPipeline`.
        n_rounds: Probing rounds per session (default:
            ``config.session_rounds``).
        episode_prefix: Label prefix; session ``i`` probes episode
            ``{prefix}-{i}``, so a batch covers the same independent
            channel realizations the sequential loop would.
        fault_plan: Optional fault injection applied to every session.
            Any active plan disables the amortized fast path (see
            :attr:`amortized`).
        retry_policy: ARQ budget/backoff used with an active fault or
            adversary plan.
        adversary_plan: Optional active-attack plan applied to every
            session; also disables the amortized fast path.
        shards: Worker processes to split a batch across (default 1 =
            in-process).  Shards are forked, so the trained model weights
            are shared copy-on-write rather than pickled per worker; the
            batch's labels are split into contiguous chunks and the
            merged outcomes keep session order, bit-identical to
            ``shards=1`` (episodes are seeded by name, the same argument
            that makes ``collect_dataset`` process-count invariant).  On
            platforms without a ``fork`` start method the batch silently
            runs in-process.
    """

    def __init__(
        self,
        pipeline: VehicleKeyPipeline,
        n_rounds: Optional[int] = None,
        episode_prefix: str = "batch",
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        adversary_plan: Optional[AdversaryPlan] = None,
        shards: int = 1,
    ):
        self.pipeline = pipeline
        self.n_rounds = (
            int(n_rounds)
            if n_rounds is not None
            else pipeline.config.session_rounds
        )
        require_positive(self.n_rounds, "n_rounds")
        require_positive(int(shards), "shards")
        self.episode_prefix = episode_prefix
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.adversary_plan = adversary_plan
        self.shards = int(shards)

    @property
    def amortized(self) -> bool:
        """Whether the batch may take the stacked-inference fast path.

        Faults and active attacks require the per-round ARQ loop and
        per-session adversary/channel state, so any active plan forces
        per-session execution.
        """
        if self.fault_plan is not None and not self.fault_plan.is_null:
            return False
        if self.adversary_plan is not None and not self.adversary_plan.is_null:
            return False
        return True

    def session_labels(self, n_sessions: int) -> List[str]:
        """The episode labels a batch of ``n_sessions`` probes."""
        return [f"{self.episode_prefix}-{i}" for i in range(n_sessions)]

    def run(self, n_sessions: int) -> BatchReport:
        """Execute ``n_sessions`` sessions with amortized model inference.

        Returns a :class:`BatchReport`; its per-session outcomes match a
        sequential ``establish_key`` loop over the same episode labels
        bit-for-bit.  With an active fault or adversary plan the batch
        *is* that sequential loop (see :attr:`amortized`).
        """
        require_positive(n_sessions, "n_sessions")
        return self.run_episodes(self.session_labels(n_sessions))

    def run_episodes(self, labels: Sequence[str]) -> BatchReport:
        """Execute one session per episode label, coalesced into a batch.

        The session server's tick loop uses this entry point directly:
        whatever sessions are ready when a tick fires are coalesced under
        their own episode labels, so outcomes stay bit-identical to
        per-session ``establish_key`` calls regardless of how arrivals
        were grouped into ticks -- or across how many shards the batch
        was split.
        """
        require(bool(labels), "need at least one episode label")
        n_shards = min(self.shards, len(labels))
        if n_shards > 1:
            report = self._run_sharded(list(labels), n_shards)
            if report is not None:
                return report
        return self._run_episodes_local(labels)

    def _run_episodes_local(self, labels: Sequence[str]) -> BatchReport:
        """One in-process batch (a whole batch, or one shard's chunk)."""
        if not self.amortized:
            return self._run_per_session(labels)
        start = time.perf_counter()
        phase_s = {}
        session = self.pipeline.build_session()
        model = self.pipeline.model
        feature_config = self.pipeline.config.feature_config

        # 1. Bulk trace generation: every session's probing episode in
        # one cross-session stacked evaluation (each with its own channel
        # realization and noise streams).
        phase_start = time.perf_counter()
        traces: List[ProbeTrace] = self.pipeline.collect_traces(
            labels, n_rounds=self.n_rounds
        )
        phase_s["probe"] = time.perf_counter() - phase_start

        # 2. Stacked feature extraction, mirroring the session layer's
        # own windowing (including its too-short-trace filter) so the
        # prediction slices line up with what each session will rebuild.
        phase_start = time.perf_counter()
        datasets: List[Optional[object]] = []
        for trace in traces:
            bob_seq, alice_seq = arrssi_sequences(trace, feature_config)
            if len(alice_seq) < model.seq_len:
                datasets.append(None)
                continue
            datasets.append(build_dataset(alice_seq, bob_seq, seq_len=model.seq_len))
        phase_s["window"] = time.perf_counter() - phase_start

        # 3. One forward pass over every session's windows.
        phase_start = time.perf_counter()
        stacked = [dataset.alice for dataset in datasets if dataset is not None]
        predictions: Dict[int, np.ndarray] = {}
        if stacked:
            all_probs = model.predict_bit_probabilities(np.concatenate(stacked))
            cursor = 0
            for index, dataset in enumerate(datasets):
                if dataset is None:
                    continue
                predictions[index] = all_probs[cursor : cursor + len(dataset)]
                cursor += len(dataset)
        phase_s["predict"] = time.perf_counter() - phase_start

        # 4. Per-session authenticated message exchange, reusing both the
        # precomputed prediction slice and the already-built window
        # dataset instead of recomputing either inside the session layer.
        outcomes: List[KeyEstablishmentOutcome] = []
        phase_s["reconcile"] = phase_s["amplify"] = 0.0
        for index, trace in enumerate(traces):
            probs = [predictions[index]] if index in predictions else None
            result = session.run(
                trace, alice_probabilities=probs, datasets=[datasets[index]]
            )
            phase_s["reconcile"] += result.phase_s.get("reconcile", 0.0)
            phase_s["amplify"] += result.phase_s.get("amplify", 0.0)
            outcomes.append(self.pipeline.build_outcome(result, [trace]))

        elapsed = time.perf_counter() - start
        phase_s["orchestrate"] = max(0.0, elapsed - sum(phase_s.values()))
        return BatchReport(outcomes=outcomes, elapsed_s=elapsed, phase_s=phase_s)

    def _run_sharded(
        self, labels: List[str], n_shards: int
    ) -> Optional[BatchReport]:
        """Fork the batch across ``n_shards`` workers and merge in order.

        Returns ``None`` when no ``fork`` start method exists (the caller
        then runs in-process).  The runner is handed to workers through a
        module global set *before* the pool forks, so the pipeline's
        trained weights travel by copy-on-write page sharing -- nothing
        is pickled per worker except each chunk's label list and its
        returned outcomes.
        """
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        global _SHARD_RUNNER
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platform
            return None
        start = time.perf_counter()
        chunks = _contiguous_chunks(labels, n_shards)
        previous = _SHARD_RUNNER
        _SHARD_RUNNER = self
        try:
            with ProcessPoolExecutor(
                max_workers=len(chunks), mp_context=context
            ) as pool:
                futures = [pool.submit(_run_shard_chunk, chunk) for chunk in chunks]
                reports = [future.result() for future in futures]
        finally:
            _SHARD_RUNNER = previous
        outcomes = [outcome for report in reports for outcome in report.outcomes]
        elapsed = time.perf_counter() - start
        # Named phases ran in parallel, so the batch-level view of each is
        # the slowest shard; orchestrate absorbs the fork/merge overhead.
        phase_s: Dict[str, float] = {}
        for report in reports:
            for key, value in report.phase_s.items():
                if key != "orchestrate":
                    phase_s[key] = max(phase_s.get(key, 0.0), value)
        if any(report.phase_s for report in reports):
            phase_s["orchestrate"] = max(0.0, elapsed - sum(phase_s.values()))
        return BatchReport(
            outcomes=outcomes,
            elapsed_s=elapsed,
            phase_s=phase_s,
            shards=len(chunks),
        )

    def _run_per_session(self, labels: Sequence[str]) -> BatchReport:
        """Fault/adversary fallback: one ``establish_key`` per session.

        Exactly the sequential loop a caller would write, so fault and
        attack semantics (ARQ, lossy syndrome channels, per-session
        adversary state, structured aborts) apply unchanged.
        """
        start = time.perf_counter()
        outcomes = [
            self.pipeline.establish_key(
                episode=label,
                n_rounds=self.n_rounds,
                fault_plan=self.fault_plan,
                retry_policy=self.retry_policy,
                adversary_plan=self.adversary_plan,
            )
            for label in labels
        ]
        elapsed = time.perf_counter() - start
        return BatchReport(outcomes=outcomes, elapsed_s=elapsed)
