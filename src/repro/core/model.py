"""The BiLSTM prediction + quantization model (paper Sec. IV-B, Fig. 6).

One network with two heads:

- **Prediction head**: BiLSTM over Alice's arRSSI window, flattened, then
  a fully connected layer producing the *predicted* arRSSI sequence on
  Bob's side (regression, MSE).
- **Quantization head**: a second fully connected layer with sigmoid
  activation mapping the predicted sequence to the key-bit space
  (classification against Bob's multi-bit-quantized key, BCE).

The paper's configuration -- one BiLSTM layer (32 time steps, 128 hidden
units), FC-32 and FC-64-sigmoid, joint loss weight theta = 0.9 -- is the
default.  Bob does not run the network: his bits come from a conventional
multi-bit quantizer over his own measurements, which is also how the
training targets are produced.

The model's lifecycle is crash-safe: :meth:`fit` can periodically persist
its full training state (weights, optimizer moments, RNG, early-stopping
and history) to a checksummed atomic checkpoint and resume bit-for-bit
after a crash; a divergence watchdog rolls NaN/exploding epochs back to
the last good state with a reduced learning rate; and saved model
artifacts embed architecture metadata plus training-window statistics
that power the out-of-distribution :class:`~repro.core.guard.InferenceGuard`.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.guard import InferenceGuard, WindowStatistics
from repro.exceptions import NotTrainedError, TrainingDivergedError
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.layers.bilstm import BiLSTM
from repro.nn.layers.dense import Dense
from repro.nn.losses import JointPredictionQuantizationLoss
from repro.nn.optimizers import Adam, Optimizer
from repro.nn.serialization import assign_weights, save_weights
from repro.probing.dataset import KeyGenDataset
from repro.quantization.multibit import MultiBitQuantizer
from repro.utils.artifact import (
    load_artifact,
    require_matching_architecture,
    save_artifact,
)
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive

#: Artifact kind of a saved model.
MODEL_ARTIFACT_KIND = "prediction-quantization-model"

#: Artifact kind of a resumable training checkpoint.
CHECKPOINT_ARTIFACT_KIND = "training-checkpoint"

#: File name of the rolling training checkpoint inside ``checkpoint_dir``.
CHECKPOINT_FILENAME = "training-state.npz"


@dataclass
class TrainingReport:
    """What :meth:`PredictionQuantizationModel.fit` returns.

    Attributes:
        history: Per-epoch joint-loss values (train and validation).
        epochs_run: Actual epochs executed (early stopping may cut short).
        divergence_rollbacks: Times the watchdog rolled training back to
            the last good checkpoint after a NaN/Inf or exploding loss.
        resumed_from_epoch: First epoch executed by this call when it
            resumed a checkpoint (``None`` for a fresh run).
    """

    history: History
    epochs_run: int
    divergence_rollbacks: int = 0
    resumed_from_epoch: Optional[int] = None


class PredictionQuantizationModel:
    """Simultaneous channel prediction and quantization.

    Args:
        seq_len: arRSSI window length (BiLSTM steps; paper: 32).
        hidden_units: BiLSTM hidden width per direction (paper: 128).
        key_bits: Quantization-head width (paper: 64 = 2 bits/step).
        theta: Joint loss weight (paper: 0.9).
        bob_quantizer: Quantizer producing Bob's bits/training targets;
            defaults to the 2-bit multi-bit quantizer of [Jana et al.].
        recurrent_cell: Sequence encoder: ``"bilstm"`` (the paper's
            choice), ``"lstm"`` or ``"gru"`` (ablation arms).
        seed: Weight-initialization and shuffling randomness.
    """

    def __init__(
        self,
        seq_len: int = 32,
        hidden_units: int = 128,
        key_bits: int = 64,
        theta: float = 0.9,
        bob_quantizer: Optional[MultiBitQuantizer] = None,
        recurrent_cell: str = "bilstm",
        seed: SeedLike = 0,
    ):
        require_positive(seq_len, "seq_len")
        require_positive(hidden_units, "hidden_units")
        require_positive(key_bits, "key_bits")
        self.seq_len = int(seq_len)
        self.hidden_units = int(hidden_units)
        self.key_bits = int(key_bits)
        self.bob_quantizer = (
            bob_quantizer
            if bob_quantizer is not None
            else MultiBitQuantizer(2, fixed_thresholds=True)
        )
        require(
            self.key_bits
            == self.seq_len * self.bob_quantizer.bits_per_sample,
            "key_bits must equal seq_len * bob_quantizer.bits_per_sample so the "
            "quantization head aligns with Bob's bit layout",
        )
        self._rng = as_generator(seed)
        require(
            recurrent_cell in ("bilstm", "lstm", "gru"),
            f"recurrent_cell must be bilstm/lstm/gru, got {recurrent_cell!r}",
        )
        self.recurrent_cell = recurrent_cell
        if recurrent_cell == "bilstm":
            self.encoder = BiLSTM(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        elif recurrent_cell == "lstm":
            from repro.nn.layers.lstm import LSTM

            self.encoder = LSTM(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        else:
            from repro.nn.layers.gru import GRU

            self.encoder = GRU(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        # Both heads are time-distributed over the BiLSTM's feature matrix:
        # the prediction head maps each step's features to that step's
        # predicted arRSSI value, and the quantization head maps the same
        # features to that step's bits ("the output matrix of the
        # prediction layer" in the paper's wording).  Weight sharing across
        # steps is what a sequence output implies, and the rich per-step
        # features are what makes the Gray-coded middle-band bits linearly
        # separable -- a scalar input could not express them.
        self.prediction_head = Dense(1, seed=self._rng, name="predict")
        self.quantization_head = Dense(
            self.bob_quantizer.bits_per_sample,
            activation="sigmoid",
            seed=self._rng,
            name="quantize",
        )
        self.loss = JointPredictionQuantizationLoss(theta=theta)
        self.training_stats: Optional[WindowStatistics] = None
        self._trained = False

    # -- plumbing -------------------------------------------------------------
    @property
    def layers(self):
        """All layers in forward order (for serialization)."""
        return [self.encoder, self.prediction_head, self.quantization_head]

    def _forward(
        self, windows: np.ndarray, training: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(predicted arRSSI ``y_hat``, bit probabilities ``z_hat``)."""
        batch = windows.shape[0]
        x = windows[..., np.newaxis]  # [batch, seq, 1]
        features = self.encoder.forward(x, training=training)
        y_hat = self.prediction_head.forward(features, training=training)[..., 0]
        z_steps = self.quantization_head.forward(features, training=training)
        z_hat = z_steps.reshape(batch, self.key_bits)
        return y_hat, z_hat

    def _backward(self, grad_y: np.ndarray, grad_z: np.ndarray) -> None:
        batch = grad_y.shape[0]
        grad_z_steps = grad_z.reshape(
            batch, self.seq_len, self.bob_quantizer.bits_per_sample
        )
        grad_features = self.quantization_head.backward(grad_z_steps)
        grad_features = grad_features + self.prediction_head.backward(
            grad_y[..., np.newaxis]
        )
        self.encoder.backward(grad_features)

    def _parameter_list(self):
        pairs = []
        for layer in self.layers:
            if layer.parameters:
                pairs.extend(layer.parameter_list())
        return pairs

    def _ordered_parameters(self) -> List[np.ndarray]:
        """Parameter arrays in the stable order used by the optimizer."""
        return [
            layer.parameters[key]
            for layer in self.layers
            for key in sorted(layer.parameters)
        ]

    def _architecture(self) -> Dict:
        """Hyperparameters that a weight file must match to be loadable."""
        return {
            "seq_len": self.seq_len,
            "hidden_units": self.hidden_units,
            "key_bits": self.key_bits,
            "theta": float(self.loss.theta),
            "recurrent_cell": self.recurrent_cell,
            "bits_per_sample": self.bob_quantizer.bits_per_sample,
        }

    # -- targets ---------------------------------------------------------------
    def bob_bits(self, bob_raw_windows: np.ndarray) -> np.ndarray:
        """Bob's key bits: multi-bit quantization of his own raw windows.

        This is both the training target and Bob's runtime key derivation
        (Bob never runs the network).
        """
        windows = np.atleast_2d(np.asarray(bob_raw_windows, dtype=float))
        require(windows.shape[1] == self.seq_len, "window length must equal seq_len")
        return np.stack(
            [self.bob_quantizer.quantize(row).bits for row in windows]
        ).astype(np.uint8)

    # -- training-state snapshots -------------------------------------------------
    def _capture_snapshot(
        self,
        optimizer: Optimizer,
        early_stopping: Optional[EarlyStopping],
        history: History,
        epoch: int,
        best_weights: Optional[List[dict]],
        rollbacks: int,
    ) -> Dict:
        """Deep-copy everything needed to replay training from ``epoch`` + 1."""
        return {
            "epoch": int(epoch),
            "rollbacks": int(rollbacks),
            "weights": [layer.get_weights() for layer in self.layers],
            "best_weights": (
                None
                if best_weights is None
                else [{k: v.copy() for k, v in lw.items()} for lw in best_weights]
            ),
            "optimizer": optimizer.get_state(self._ordered_parameters()),
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
            "early_stopping": (
                None if early_stopping is None else early_stopping.state_dict()
            ),
            "history": history.state_dict(),
        }

    def _restore_snapshot(
        self,
        snapshot: Dict,
        optimizer: Optimizer,
        early_stopping: Optional[EarlyStopping],
        history: History,
    ) -> Optional[List[dict]]:
        """Roll model/optimizer/RNG/history back to a snapshot; returns best weights."""
        for layer, layer_weights in zip(self.layers, snapshot["weights"]):
            if layer.parameters:
                layer.set_weights(layer_weights)
        optimizer.set_state(self._ordered_parameters(), snapshot["optimizer"])
        self._rng.bit_generator.state = copy.deepcopy(snapshot["rng_state"])
        if early_stopping is not None and snapshot["early_stopping"] is not None:
            early_stopping.load_state_dict(snapshot["early_stopping"])
        history.load_state_dict(snapshot["history"])
        best = snapshot["best_weights"]
        if best is None:
            return None
        return [{k: v.copy() for k, v in lw.items()} for lw in best]

    def _write_checkpoint(self, path: Path, snapshot: Dict) -> None:
        """Persist a snapshot atomically as a checksummed artifact."""
        arrays: Dict[str, np.ndarray] = {}
        for index, layer_weights in enumerate(snapshot["weights"]):
            for key, value in layer_weights.items():
                arrays[f"w/{index}/{key}"] = value
        if snapshot["best_weights"] is not None:
            for index, layer_weights in enumerate(snapshot["best_weights"]):
                for key, value in layer_weights.items():
                    arrays[f"b/{index}/{key}"] = value
        slot_kinds = {}
        for name, values in snapshot["optimizer"]["slots"].items():
            if values and isinstance(values[0], np.ndarray):
                slot_kinds[name] = "arrays"
                for j, value in enumerate(values):
                    arrays[f"opt/{name}/{j}"] = value
            else:
                slot_kinds[name] = "scalars"
                arrays[f"opt/{name}"] = np.asarray(values)
        metadata = {
            "architecture": self._architecture(),
            "epoch": snapshot["epoch"],
            "rollbacks": snapshot["rollbacks"],
            "rng_state": snapshot["rng_state"],
            "early_stopping": snapshot["early_stopping"],
            "history": snapshot["history"],
            "has_best_weights": snapshot["best_weights"] is not None,
            "optimizer": {
                "learning_rate": snapshot["optimizer"]["learning_rate"],
                "iterations": snapshot["optimizer"]["iterations"],
                "slot_kinds": slot_kinds,
                "n_params": len(self._ordered_parameters()),
            },
        }
        save_artifact(path, arrays, kind=CHECKPOINT_ARTIFACT_KIND, metadata=metadata)

    def _load_checkpoint(
        self,
        path: Path,
        optimizer: Optimizer,
        early_stopping: Optional[EarlyStopping],
        history: History,
    ) -> Dict:
        """Restore a persisted checkpoint; returns resume bookkeeping."""
        artifact = load_artifact(path, kind=CHECKPOINT_ARTIFACT_KIND, allow_legacy=False)
        require_matching_architecture(artifact, self._architecture(), path)
        meta = artifact.metadata
        # Build the layers, then overwrite weights and the RNG state; the
        # build-time draws are erased by the restored generator state, so
        # resumed training replays exactly what an uninterrupted run does.
        self._forward(np.zeros((1, self.seq_len)))
        weights: List[Dict[str, np.ndarray]] = [{} for _ in self.layers]
        best: List[Dict[str, np.ndarray]] = [{} for _ in self.layers]
        for key, value in artifact.arrays.items():
            prefix, _, rest = key.partition("/")
            if prefix in ("w", "b"):
                index_text, _, param = rest.partition("/")
                target = weights if prefix == "w" else best
                target[int(index_text)][param] = value
        for layer, layer_weights in zip(self.layers, weights):
            if layer.parameters:
                layer.set_weights(layer_weights)
        params = self._ordered_parameters()
        opt_meta = meta["optimizer"]
        slots = {}
        for name, kind in opt_meta["slot_kinds"].items():
            if kind == "arrays":
                slots[name] = [
                    artifact.arrays[f"opt/{name}/{j}"]
                    for j in range(int(opt_meta["n_params"]))
                ]
            else:
                slots[name] = [v for v in artifact.arrays[f"opt/{name}"].tolist()]
        optimizer.set_state(
            params,
            {
                "learning_rate": opt_meta["learning_rate"],
                "iterations": opt_meta["iterations"],
                "slots": slots,
            },
        )
        self._rng.bit_generator.state = meta["rng_state"]
        history.load_state_dict(meta["history"])
        if early_stopping is not None and meta["early_stopping"] is not None:
            early_stopping.load_state_dict(meta["early_stopping"])
        return {
            "epoch": int(meta["epoch"]),
            "rollbacks": int(meta["rollbacks"]),
            "best_weights": (
                [lw for lw in best] if meta.get("has_best_weights") else None
            ),
        }

    # -- training ----------------------------------------------------------------
    def fit(
        self,
        train: KeyGenDataset,
        validation: Optional[KeyGenDataset] = None,
        epochs: int = 200,
        batch_size: int = 32,
        learning_rate: float = 2e-3,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        resume: bool = False,
        clip_grad_norm: Optional[float] = None,
        max_divergence_retries: int = 2,
        divergence_factor: float = 1e3,
        lr_backoff: float = 0.5,
    ) -> TrainingReport:
        """Train on Alice->Bob window pairs with the joint loss (Eq. 3).

        Crash safety:

        - With ``checkpoint_dir`` set, the full training state (weights,
          Adam moments, RNG, early-stopping counters, history) is written
          every ``checkpoint_every`` epochs as an atomic, checksummed
          artifact; ``resume=True`` continues from it and reproduces the
          uninterrupted run bit-for-bit (a missing checkpoint starts fresh).
        - A divergence watchdog detects NaN/Inf batch losses and epoch
          losses exceeding ``divergence_factor`` times the best epoch so
          far; it rolls back to the last good state, multiplies the
          learning rate by ``lr_backoff``, and retries, raising
          :class:`~repro.exceptions.TrainingDivergedError` after
          ``max_divergence_retries`` rollbacks.
        - ``clip_grad_norm`` optionally rescales each batch's global
          gradient norm to at most that value before the optimizer step.
        """
        require(train.seq_len == self.seq_len, "dataset seq_len mismatch")
        require_positive(epochs, "epochs")
        require_positive(checkpoint_every, "checkpoint_every")
        require(
            not resume or checkpoint_dir is not None,
            "resume=True requires checkpoint_dir",
        )
        if clip_grad_norm is not None:
            require_positive(clip_grad_norm, "clip_grad_norm")
        require(max_divergence_retries >= 0, "max_divergence_retries must be >= 0")
        require(0.0 < lr_backoff < 1.0, "lr_backoff must be in (0, 1)")
        optimizer = Adam(learning_rate=learning_rate)
        history = History()
        z_train = self.bob_bits(train.bob_raw).astype(float)
        if validation is not None and len(validation):
            z_val = self.bob_bits(validation.bob_raw).astype(float)
        best_weights = None
        self.training_stats = WindowStatistics.from_windows(train.alice_raw)

        checkpoint_path: Optional[Path] = None
        if checkpoint_dir is not None:
            checkpoint_path = Path(checkpoint_dir) / CHECKPOINT_FILENAME

        start_epoch = 0
        rollbacks = 0
        resumed_from: Optional[int] = None
        if resume and checkpoint_path is not None and checkpoint_path.exists():
            state = self._load_checkpoint(
                checkpoint_path, optimizer, early_stopping, history
            )
            start_epoch = state["epoch"] + 1
            rollbacks = state["rollbacks"]
            best_weights = state["best_weights"]
            resumed_from = start_epoch
        elif early_stopping is not None:
            early_stopping.reset()

        snapshot: Optional[Dict] = None
        if resumed_from is not None:
            snapshot = self._capture_snapshot(
                optimizer, early_stopping, history, start_epoch - 1,
                best_weights, rollbacks,
            )

        epochs_run = start_epoch
        stop = False
        epoch = start_epoch
        while epoch < epochs:
            epochs_run = epoch + 1
            order = self._rng.permutation(len(train))
            losses = []
            diverged = False
            for start in range(0, len(train), batch_size):
                idx = order[start:start + batch_size]
                y_true = train.bob[idx]
                z_true = z_train[idx]
                y_hat, z_hat = self._forward(train.alice[idx], training=True)
                if snapshot is None:
                    # First forward pass ever: the layers are now built, so
                    # a pre-update safety net can be captured for the
                    # watchdog (divergence in the very first epoch rolls
                    # back to the initialization).
                    snapshot = self._capture_snapshot(
                        optimizer, early_stopping, history, epoch - 1,
                        best_weights, rollbacks,
                    )
                batch_loss = self.loss.value(y_true, y_hat, z_true, z_hat)
                if not np.isfinite(batch_loss):
                    diverged = True
                    break
                grad_y, grad_z = self.loss.gradients(y_true, y_hat, z_true, z_hat)
                self._backward(grad_y, grad_z)
                pairs = self._parameter_list()
                if clip_grad_norm is not None:
                    norm = math.sqrt(
                        sum(float(np.sum(grad * grad)) for _, grad in pairs)
                    )
                    if not np.isfinite(norm):
                        diverged = True
                        break
                    if norm > clip_grad_norm:
                        scale = clip_grad_norm / norm
                        for _, grad in pairs:
                            grad *= scale
                losses.append(batch_loss)
                optimizer.apply(pairs)

            if not diverged and losses:
                epoch_loss = float(np.mean(losses))
                past = [
                    value
                    for value in history.metrics.get("loss", [])
                    if np.isfinite(value)
                ]
                if not np.isfinite(epoch_loss):
                    diverged = True
                elif past and epoch_loss > divergence_factor * max(min(past), 1e-12):
                    diverged = True

            if diverged:
                rollbacks += 1
                if rollbacks > max_divergence_retries:
                    raise TrainingDivergedError(
                        f"training diverged at epoch {epoch} and the retry "
                        f"budget ({max_divergence_retries}) is exhausted"
                    )
                reduced_lr = optimizer.learning_rate * lr_backoff
                best_weights = self._restore_snapshot(
                    snapshot, optimizer, early_stopping, history
                )
                optimizer.learning_rate = reduced_lr
                if verbose:  # pragma: no cover - console output
                    print(
                        f"epoch {epoch}: diverged; rolled back to epoch "
                        f"{snapshot['epoch']}, lr -> {reduced_lr:.2e}"
                    )
                epoch = snapshot["epoch"] + 1
                continue

            record = {"loss": float(np.mean(losses))}
            monitored = record["loss"]
            if validation is not None and len(validation):
                y_hat, z_hat = self._forward(validation.alice)
                record["val_loss"] = self.loss.value(
                    validation.bob, y_hat, z_val, z_hat
                )
                monitored = record["val_loss"]
            history.record(epoch, **record)
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch}: " + ", ".join(f"{k}={v:.5f}" for k, v in record.items()))
            if early_stopping is not None:
                stop = early_stopping.update(epoch, monitored)
                if early_stopping.best_epoch == epoch and early_stopping.restore_best:
                    best_weights = [layer.get_weights() for layer in self.layers]
            snapshot = self._capture_snapshot(
                optimizer, early_stopping, history, epoch, best_weights, rollbacks
            )
            if checkpoint_path is not None and (
                (epoch + 1) % checkpoint_every == 0 or stop or epoch == epochs - 1
            ):
                self._write_checkpoint(checkpoint_path, snapshot)
            if stop:
                break
            epoch += 1
        if best_weights is not None:
            for layer, weights in zip(self.layers, best_weights):
                if layer.parameters:
                    layer.set_weights(weights)
        self._trained = True
        return TrainingReport(
            history=history,
            epochs_run=epochs_run,
            divergence_rollbacks=rollbacks,
            resumed_from_epoch=resumed_from,
        )

    # -- inference ------------------------------------------------------------------
    def _require_trained(self) -> None:
        if not self._trained:
            raise NotTrainedError("PredictionQuantizationModel must be fit() first")

    def inference_guard(self, **overrides) -> Optional[InferenceGuard]:
        """An OOD guard built from this model's training statistics.

        Returns ``None`` when no statistics are available (untrained model
        or legacy weight file without embedded metadata); keyword
        arguments override :class:`~repro.core.guard.InferenceGuard`
        thresholds.
        """
        if self.training_stats is None:
            return None
        return InferenceGuard(self.training_stats, **overrides)

    def predict_sequences(self, alice_windows: np.ndarray) -> np.ndarray:
        """Predicted (normalized) Bob arRSSI sequences for Alice's windows."""
        self._require_trained()
        windows = np.atleast_2d(np.asarray(alice_windows, dtype=float))
        y_hat, _ = self._forward(windows)
        return y_hat

    def predict_bit_probabilities(self, alice_windows: np.ndarray) -> np.ndarray:
        """Quantization-head sigmoid outputs in [0, 1]."""
        self._require_trained()
        windows = np.atleast_2d(np.asarray(alice_windows, dtype=float))
        _, z_hat = self._forward(windows)
        return z_hat

    def alice_bits(self, alice_windows: np.ndarray) -> np.ndarray:
        """Alice's key bits: thresholded quantization-head outputs."""
        return (self.predict_bit_probabilities(alice_windows) > 0.5).astype(np.uint8)

    # -- persistence -------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the model as a checksummed artifact with metadata.

        The artifact embeds the architecture hyperparameters (verified at
        load time) and, when available, the training-window statistics
        that power the inference guard.  The write is atomic.
        """
        self._require_trained()
        metadata: Dict = {"architecture": self._architecture()}
        if self.training_stats is not None:
            metadata["training_stats"] = self.training_stats.to_dict()
        save_weights(self.layers, path, kind=MODEL_ARTIFACT_KIND, metadata=metadata)

    def load(self, path: Union[str, Path]) -> None:
        """Load weights saved by :meth:`save` into a same-shape model.

        Raises :class:`~repro.exceptions.CorruptArtifactError` on a
        truncated or tampered file and
        :class:`~repro.exceptions.ArtifactMismatchError` when the stored
        architecture or artifact kind differs from this model.  Legacy
        plain ``.npz`` files load with a warning and no statistics.
        """
        artifact = load_artifact(Path(path), kind=MODEL_ARTIFACT_KIND)
        require_matching_architecture(artifact, self._architecture(), path)
        # Build layers with a dummy pass before loading.
        self._forward(np.zeros((1, self.seq_len)))
        assign_weights(self.layers, artifact.arrays)
        stats = artifact.metadata.get("training_stats")
        self.training_stats = (
            WindowStatistics.from_dict(stats) if stats is not None else None
        )
        self._trained = True

    def clone_architecture(self, seed: SeedLike = None) -> "PredictionQuantizationModel":
        """A fresh untrained model with identical hyperparameters."""
        return PredictionQuantizationModel(
            seq_len=self.seq_len,
            hidden_units=self.hidden_units,
            key_bits=self.key_bits,
            theta=self.loss.theta,
            bob_quantizer=self.bob_quantizer,
            recurrent_cell=self.recurrent_cell,
            seed=seed if seed is not None else self._rng,
        )

    def copy_weights_from(self, other: "PredictionQuantizationModel") -> None:
        """Initialize from another trained model (transfer learning)."""
        other._require_trained()
        self._forward(np.zeros((1, self.seq_len)))
        for mine, theirs in zip(self.layers, other.layers):
            if theirs.parameters:
                mine.set_weights(theirs.get_weights())
        self.training_stats = other.training_stats
        self._trained = True
