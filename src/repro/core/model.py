"""The BiLSTM prediction + quantization model (paper Sec. IV-B, Fig. 6).

One network with two heads:

- **Prediction head**: BiLSTM over Alice's arRSSI window, flattened, then
  a fully connected layer producing the *predicted* arRSSI sequence on
  Bob's side (regression, MSE).
- **Quantization head**: a second fully connected layer with sigmoid
  activation mapping the predicted sequence to the key-bit space
  (classification against Bob's multi-bit-quantized key, BCE).

The paper's configuration -- one BiLSTM layer (32 time steps, 128 hidden
units), FC-32 and FC-64-sigmoid, joint loss weight theta = 0.9 -- is the
default.  Bob does not run the network: his bits come from a conventional
multi-bit quantizer over his own measurements, which is also how the
training targets are produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.exceptions import NotTrainedError
from repro.nn.callbacks import EarlyStopping, History
from repro.nn.layers.bilstm import BiLSTM
from repro.nn.layers.dense import Dense
from repro.nn.losses import JointPredictionQuantizationLoss
from repro.nn.optimizers import Adam
from repro.nn.serialization import load_weights, save_weights
from repro.probing.dataset import KeyGenDataset
from repro.quantization.multibit import MultiBitQuantizer
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


@dataclass
class TrainingReport:
    """What :meth:`PredictionQuantizationModel.fit` returns.

    Attributes:
        history: Per-epoch joint-loss values (train and validation).
        epochs_run: Actual epochs executed (early stopping may cut short).
    """

    history: History
    epochs_run: int


class PredictionQuantizationModel:
    """Simultaneous channel prediction and quantization.

    Args:
        seq_len: arRSSI window length (BiLSTM steps; paper: 32).
        hidden_units: BiLSTM hidden width per direction (paper: 128).
        key_bits: Quantization-head width (paper: 64 = 2 bits/step).
        theta: Joint loss weight (paper: 0.9).
        bob_quantizer: Quantizer producing Bob's bits/training targets;
            defaults to the 2-bit multi-bit quantizer of [Jana et al.].
        recurrent_cell: Sequence encoder: ``"bilstm"`` (the paper's
            choice), ``"lstm"`` or ``"gru"`` (ablation arms).
        seed: Weight-initialization and shuffling randomness.
    """

    def __init__(
        self,
        seq_len: int = 32,
        hidden_units: int = 128,
        key_bits: int = 64,
        theta: float = 0.9,
        bob_quantizer: Optional[MultiBitQuantizer] = None,
        recurrent_cell: str = "bilstm",
        seed: SeedLike = 0,
    ):
        require_positive(seq_len, "seq_len")
        require_positive(hidden_units, "hidden_units")
        require_positive(key_bits, "key_bits")
        self.seq_len = int(seq_len)
        self.hidden_units = int(hidden_units)
        self.key_bits = int(key_bits)
        self.bob_quantizer = (
            bob_quantizer
            if bob_quantizer is not None
            else MultiBitQuantizer(2, fixed_thresholds=True)
        )
        require(
            self.key_bits
            == self.seq_len * self.bob_quantizer.bits_per_sample,
            "key_bits must equal seq_len * bob_quantizer.bits_per_sample so the "
            "quantization head aligns with Bob's bit layout",
        )
        self._rng = as_generator(seed)
        require(
            recurrent_cell in ("bilstm", "lstm", "gru"),
            f"recurrent_cell must be bilstm/lstm/gru, got {recurrent_cell!r}",
        )
        self.recurrent_cell = recurrent_cell
        if recurrent_cell == "bilstm":
            self.encoder = BiLSTM(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        elif recurrent_cell == "lstm":
            from repro.nn.layers.lstm import LSTM

            self.encoder = LSTM(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        else:
            from repro.nn.layers.gru import GRU

            self.encoder = GRU(
                self.hidden_units, return_sequences=True, seed=self._rng
            )
        # Both heads are time-distributed over the BiLSTM's feature matrix:
        # the prediction head maps each step's features to that step's
        # predicted arRSSI value, and the quantization head maps the same
        # features to that step's bits ("the output matrix of the
        # prediction layer" in the paper's wording).  Weight sharing across
        # steps is what a sequence output implies, and the rich per-step
        # features are what makes the Gray-coded middle-band bits linearly
        # separable -- a scalar input could not express them.
        self.prediction_head = Dense(1, seed=self._rng, name="predict")
        self.quantization_head = Dense(
            self.bob_quantizer.bits_per_sample,
            activation="sigmoid",
            seed=self._rng,
            name="quantize",
        )
        self.loss = JointPredictionQuantizationLoss(theta=theta)
        self._trained = False

    # -- plumbing -------------------------------------------------------------
    @property
    def layers(self):
        """All layers in forward order (for serialization)."""
        return [self.encoder, self.prediction_head, self.quantization_head]

    def _forward(
        self, windows: np.ndarray, training: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(predicted arRSSI ``y_hat``, bit probabilities ``z_hat``)."""
        batch = windows.shape[0]
        x = windows[..., np.newaxis]  # [batch, seq, 1]
        features = self.encoder.forward(x, training=training)
        y_hat = self.prediction_head.forward(features, training=training)[..., 0]
        z_steps = self.quantization_head.forward(features, training=training)
        z_hat = z_steps.reshape(batch, self.key_bits)
        return y_hat, z_hat

    def _backward(self, grad_y: np.ndarray, grad_z: np.ndarray) -> None:
        batch = grad_y.shape[0]
        grad_z_steps = grad_z.reshape(
            batch, self.seq_len, self.bob_quantizer.bits_per_sample
        )
        grad_features = self.quantization_head.backward(grad_z_steps)
        grad_features = grad_features + self.prediction_head.backward(
            grad_y[..., np.newaxis]
        )
        self.encoder.backward(grad_features)

    def _parameter_list(self):
        pairs = []
        for layer in self.layers:
            if layer.parameters:
                pairs.extend(layer.parameter_list())
        return pairs

    # -- targets ---------------------------------------------------------------
    def bob_bits(self, bob_raw_windows: np.ndarray) -> np.ndarray:
        """Bob's key bits: multi-bit quantization of his own raw windows.

        This is both the training target and Bob's runtime key derivation
        (Bob never runs the network).
        """
        windows = np.atleast_2d(np.asarray(bob_raw_windows, dtype=float))
        require(windows.shape[1] == self.seq_len, "window length must equal seq_len")
        return np.stack(
            [self.bob_quantizer.quantize(row).bits for row in windows]
        ).astype(np.uint8)

    # -- training ----------------------------------------------------------------
    def fit(
        self,
        train: KeyGenDataset,
        validation: Optional[KeyGenDataset] = None,
        epochs: int = 200,
        batch_size: int = 32,
        learning_rate: float = 2e-3,
        early_stopping: Optional[EarlyStopping] = None,
        verbose: bool = False,
    ) -> TrainingReport:
        """Train on Alice->Bob window pairs with the joint loss (Eq. 3)."""
        require(train.seq_len == self.seq_len, "dataset seq_len mismatch")
        require_positive(epochs, "epochs")
        optimizer = Adam(learning_rate=learning_rate)
        history = History()
        z_train = self.bob_bits(train.bob_raw).astype(float)
        if validation is not None and len(validation):
            z_val = self.bob_bits(validation.bob_raw).astype(float)
        best_weights = None

        epochs_run = 0
        for epoch in range(epochs):
            epochs_run = epoch + 1
            order = self._rng.permutation(len(train))
            losses = []
            for start in range(0, len(train), batch_size):
                idx = order[start:start + batch_size]
                y_true = train.bob[idx]
                z_true = z_train[idx]
                y_hat, z_hat = self._forward(train.alice[idx], training=True)
                losses.append(self.loss.value(y_true, y_hat, z_true, z_hat))
                grad_y, grad_z = self.loss.gradients(y_true, y_hat, z_true, z_hat)
                self._backward(grad_y, grad_z)
                optimizer.apply(self._parameter_list())
            record = {"loss": float(np.mean(losses))}
            monitored = record["loss"]
            if validation is not None and len(validation):
                y_hat, z_hat = self._forward(validation.alice)
                record["val_loss"] = self.loss.value(
                    validation.bob, y_hat, z_val, z_hat
                )
                monitored = record["val_loss"]
            history.record(epoch, **record)
            if verbose:  # pragma: no cover - console output
                print(f"epoch {epoch}: " + ", ".join(f"{k}={v:.5f}" for k, v in record.items()))
            if early_stopping is not None:
                stop = early_stopping.update(epoch, monitored)
                if early_stopping.best_epoch == epoch and early_stopping.restore_best:
                    best_weights = [layer.get_weights() for layer in self.layers]
                if stop:
                    break
        if best_weights is not None:
            for layer, weights in zip(self.layers, best_weights):
                if layer.parameters:
                    layer.set_weights(weights)
        self._trained = True
        return TrainingReport(history=history, epochs_run=epochs_run)

    # -- inference ------------------------------------------------------------------
    def _require_trained(self) -> None:
        if not self._trained:
            raise NotTrainedError("PredictionQuantizationModel must be fit() first")

    def predict_sequences(self, alice_windows: np.ndarray) -> np.ndarray:
        """Predicted (normalized) Bob arRSSI sequences for Alice's windows."""
        self._require_trained()
        windows = np.atleast_2d(np.asarray(alice_windows, dtype=float))
        y_hat, _ = self._forward(windows)
        return y_hat

    def predict_bit_probabilities(self, alice_windows: np.ndarray) -> np.ndarray:
        """Quantization-head sigmoid outputs in [0, 1]."""
        self._require_trained()
        windows = np.atleast_2d(np.asarray(alice_windows, dtype=float))
        _, z_hat = self._forward(windows)
        return z_hat

    def alice_bits(self, alice_windows: np.ndarray) -> np.ndarray:
        """Alice's key bits: thresholded quantization-head outputs."""
        return (self.predict_bit_probabilities(alice_windows) > 0.5).astype(np.uint8)

    # -- persistence -------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Persist the model weights (architecture is caller-owned)."""
        self._require_trained()
        save_weights(self.layers, path)

    def load(self, path: Union[str, Path]) -> None:
        """Load weights saved by :meth:`save` into a same-shape model."""
        # Build layers with a dummy pass before loading.
        self._forward(np.zeros((1, self.seq_len)))
        load_weights(self.layers, path)
        self._trained = True

    def clone_architecture(self, seed: SeedLike = None) -> "PredictionQuantizationModel":
        """A fresh untrained model with identical hyperparameters."""
        return PredictionQuantizationModel(
            seq_len=self.seq_len,
            hidden_units=self.hidden_units,
            key_bits=self.key_bits,
            theta=self.loss.theta,
            bob_quantizer=self.bob_quantizer,
            recurrent_cell=self.recurrent_cell,
            seed=seed if seed is not None else self._rng,
        )

    def copy_weights_from(self, other: "PredictionQuantizationModel") -> None:
        """Initialize from another trained model (transfer learning)."""
        other._require_trained()
        self._forward(np.zeros((1, self.seq_len)))
        for mine, theirs in zip(self.layers, other.layers):
            if theirs.parameters:
                mine.set_weights(theirs.get_weights())
        self._trained = True
