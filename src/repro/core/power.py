"""Execution timing and energy model (paper Sec. V-J, Table III, Fig. 17).

The paper measures per-phase computation time and energy on a Raspberry
Pi 4 with a power monitor.  We time the same phases on the current host
with ``time.perf_counter`` and convert to energy through a documented
RPi4 power model (active CPU power draw per phase).  Absolute numbers
depend on the host; the *structure* -- Alice's prediction dominating,
reconciliation being orders of magnitude cheaper, Bob's side being far
cheaper than Alice's -- is architectural and reproduces.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.model import PredictionQuantizationModel
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_positive

#: Raspberry Pi 4 active CPU power draw in watts (quad A72 @1.5 GHz under
#: single-core numerical load, above idle).  Used to convert measured
#: compute time to the energy figures of Table III.
RPI4_ACTIVE_POWER_W = 3.8


@dataclass(frozen=True)
class PhaseCost:
    """One phase's measured cost for one party.

    Attributes:
        phase: Phase name (Table III row).
        party: "alice" or "bob".
        time_ms: Mean wall-clock time per execution, milliseconds.
        energy_mj: Modeled energy at RPi4 active power, millijoules.
    """

    phase: str
    party: str
    time_ms: float
    energy_mj: float


def _timed(callable_, repeats: int) -> float:
    """Mean seconds per call over ``repeats`` (after one warm-up call)."""
    callable_()
    start = time.perf_counter()
    for _ in range(repeats):
        callable_()
    return (time.perf_counter() - start) / repeats


def measure_power_profile(
    model: PredictionQuantizationModel,
    reconciler: AutoencoderReconciliation,
    repeats: int = 20,
    seed: SeedLike = 0,
) -> Dict[str, PhaseCost]:
    """Table III: per-phase time and modeled energy for both parties.

    Phases match the paper's rows:

    - *Prediction and quantization*: Alice runs the BiLSTM model on one
      window; Bob runs his multi-bit quantizer on his own window.
    - *Reconciliation*: Alice runs her encoder + decoder + correction;
      Bob runs only his encoder (he just sends the syndrome).

    Privacy amplification is microseconds (one hash) and is omitted from
    the table, as in the paper.
    """
    require_positive(repeats, "repeats")
    rng = as_generator(seed)
    window = rng.standard_normal((1, model.seq_len))
    raw_window = rng.normal(-90.0, 4.0, size=model.seq_len)
    alice_key = rng.integers(0, 2, model.key_bits).astype(np.uint8)
    bob_key = alice_key.copy()
    bob_key[[3, 17]] ^= 1
    syndrome = reconciler.bob_syndrome(bob_key)

    costs: Dict[str, PhaseCost] = {}

    def add(phase: str, party: str, seconds: float) -> None:
        costs[f"{phase}/{party}"] = PhaseCost(
            phase=phase,
            party=party,
            time_ms=1e3 * seconds,
            energy_mj=1e3 * seconds * RPI4_ACTIVE_POWER_W,
        )

    add(
        "prediction-quantization",
        "alice",
        _timed(lambda: model.alice_bits(window), repeats),
    )
    add(
        "prediction-quantization",
        "bob",
        _timed(lambda: model.bob_quantizer.quantize(raw_window), repeats),
    )
    add(
        "reconciliation",
        "alice",
        _timed(lambda: reconciler.alice_correct(alice_key, syndrome), repeats),
    )
    add(
        "reconciliation",
        "bob",
        _timed(lambda: reconciler.bob_syndrome(bob_key), repeats),
    )
    return costs


def totals(costs: Dict[str, PhaseCost]) -> Dict[str, PhaseCost]:
    """Per-party totals (the paper's "Total" row)."""
    result = {}
    for party in ("alice", "bob"):
        party_costs = [c for c in costs.values() if c.party == party]
        result[party] = PhaseCost(
            phase="total",
            party=party,
            time_ms=sum(c.time_ms for c in party_costs),
            energy_mj=sum(c.energy_mj for c in party_costs),
        )
    return result
