"""Out-of-distribution guard for model-powered inference.

The prediction/quantization model is only trustworthy on inputs that look
like its training data.  :class:`InferenceGuard` compares incoming raw
arRSSI windows against :class:`WindowStatistics` captured at training time
(and persisted in the model artifact's metadata): non-finite values,
per-window mean/scale shifts beyond a z-score threshold, and values far
outside the observed dBm range all mark a window out-of-distribution.
When too many windows are OOD, the key-agreement session falls back to
Alice's conventional multi-bit quantizer path -- a degraded but sound mode
(adaptive-quantization LPWAN keygen works without any model at all) that
is always reported, never a silent success.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class WindowStatistics:
    """Training-set statistics of raw arRSSI windows.

    Captured by :meth:`PredictionQuantizationModel.fit` from the training
    split's raw (un-normalized, dBm) Alice windows and embedded in the
    model artifact, so a deployed model carries its own notion of
    "in-distribution".

    Attributes:
        seq_len: Window length the model was trained on.
        n_windows: Training windows the statistics were computed from.
        mean_of_means: Mean of per-window means (dBm).
        std_of_means: Standard deviation of per-window means (dBm).
        mean_of_stds: Mean of per-window standard deviations (dB).
        std_of_stds: Standard deviation of per-window standard deviations.
        min_value: Smallest raw value seen in training (dBm).
        max_value: Largest raw value seen in training (dBm).
    """

    seq_len: int
    n_windows: int
    mean_of_means: float
    std_of_means: float
    mean_of_stds: float
    std_of_stds: float
    min_value: float
    max_value: float

    @classmethod
    def from_windows(cls, raw_windows: np.ndarray) -> "WindowStatistics":
        """Compute statistics from a ``[window, seq_len]`` raw-window matrix."""
        windows = np.asarray(raw_windows, dtype=float)
        require(windows.ndim == 2, "raw windows must be [window, seq_len]")
        require(windows.shape[0] >= 1, "need at least one window for statistics")
        means = windows.mean(axis=1)
        stds = windows.std(axis=1)
        return cls(
            seq_len=int(windows.shape[1]),
            n_windows=int(windows.shape[0]),
            mean_of_means=float(means.mean()),
            std_of_means=float(means.std()),
            mean_of_stds=float(stds.mean()),
            std_of_stds=float(stds.std()),
            min_value=float(windows.min()),
            max_value=float(windows.max()),
        )

    def to_dict(self) -> Dict:
        """JSON-serializable form (for artifact metadata)."""
        return {
            "seq_len": self.seq_len,
            "n_windows": self.n_windows,
            "mean_of_means": self.mean_of_means,
            "std_of_means": self.std_of_means,
            "mean_of_stds": self.mean_of_stds,
            "std_of_stds": self.std_of_stds,
            "min_value": self.min_value,
            "max_value": self.max_value,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "WindowStatistics":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            seq_len=int(data["seq_len"]),
            n_windows=int(data["n_windows"]),
            mean_of_means=float(data["mean_of_means"]),
            std_of_means=float(data["std_of_means"]),
            mean_of_stds=float(data["mean_of_stds"]),
            std_of_stds=float(data["std_of_stds"]),
            min_value=float(data["min_value"]),
            max_value=float(data["max_value"]),
        )


@dataclass(frozen=True)
class GuardVerdict:
    """What :meth:`InferenceGuard.check` concluded about a window batch.

    Attributes:
        ok: ``True`` when the batch is safe to feed the model.
        n_windows: Windows inspected.
        n_ood: Windows flagged out-of-distribution (or non-finite).
        window_ok: Per-window boolean; ``False`` where flagged.
        reasons: Distinct flag reasons observed (``"non-finite"``,
            ``"mean-shift"``, ``"scale-shift"``, ``"range"``).
    """

    ok: bool
    n_windows: int
    n_ood: int
    window_ok: np.ndarray
    reasons: Tuple[str, ...]

    @property
    def ood_fraction(self) -> float:
        """Fraction of inspected windows flagged OOD."""
        return self.n_ood / self.n_windows if self.n_windows else 0.0


class InferenceGuard:
    """Validates arRSSI windows before they reach the learned model.

    Args:
        stats: Training-set window statistics to compare against.
        z_threshold: Per-window mean/std may sit at most this many
            training-set standard deviations from the training center.
        range_slack_db: Values may exceed the training min/max by at most
            this margin (dB) before the window is flagged.
        min_scale_db: Floor on the training spread estimates, so a
            low-diversity training set does not flag every live window.
        max_ood_fraction: Batch verdict is ``ok`` while the flagged
            fraction stays at or below this.
    """

    def __init__(
        self,
        stats: WindowStatistics,
        z_threshold: float = 6.0,
        range_slack_db: float = 15.0,
        min_scale_db: float = 1.0,
        max_ood_fraction: float = 0.25,
    ):
        require_positive(z_threshold, "z_threshold")
        require_positive(min_scale_db, "min_scale_db")
        require(range_slack_db >= 0.0, "range_slack_db must be >= 0")
        require(
            0.0 <= max_ood_fraction < 1.0,
            "max_ood_fraction must be in [0, 1)",
        )
        self.stats = stats
        self.z_threshold = float(z_threshold)
        self.range_slack_db = float(range_slack_db)
        self.min_scale_db = float(min_scale_db)
        self.max_ood_fraction = float(max_ood_fraction)

    def check(self, raw_windows: np.ndarray) -> GuardVerdict:
        """Inspect a ``[window, seq_len]`` batch of raw arRSSI windows.

        Shape errors (wrong rank or window length) raise
        :class:`ValueError`-family validation errors -- they are caller
        bugs, not channel conditions.  Distribution problems come back as
        a verdict so the caller can degrade gracefully.
        """
        windows = np.atleast_2d(np.asarray(raw_windows, dtype=float))
        require(windows.ndim == 2, "windows must be [window, seq_len]")
        require(
            windows.shape[1] == self.stats.seq_len,
            f"window length {windows.shape[1]} != model seq_len {self.stats.seq_len}",
        )
        n = windows.shape[0]
        reasons = []

        finite = np.isfinite(windows).all(axis=1)
        if not finite.all():
            reasons.append("non-finite")

        # Non-finite rows would poison the statistics below; compute the
        # distribution checks on a sanitized copy and mask them back in.
        safe = np.where(finite[:, None], windows, 0.0)
        means = safe.mean(axis=1)
        stds = safe.std(axis=1)
        mean_scale = max(self.stats.std_of_means, self.min_scale_db)
        std_scale = max(self.stats.std_of_stds, self.min_scale_db)
        mean_ok = np.abs(means - self.stats.mean_of_means) <= self.z_threshold * mean_scale
        std_ok = np.abs(stds - self.stats.mean_of_stds) <= self.z_threshold * std_scale
        low = self.stats.min_value - self.range_slack_db
        high = self.stats.max_value + self.range_slack_db
        range_ok = ((safe >= low) & (safe <= high)).all(axis=1)
        if not (mean_ok | ~finite).all():
            reasons.append("mean-shift")
        if not (std_ok | ~finite).all():
            reasons.append("scale-shift")
        if not (range_ok | ~finite).all():
            reasons.append("range")

        window_ok = finite & mean_ok & std_ok & range_ok
        n_ood = int(n - window_ok.sum())
        ok = (n_ood / n if n else 0.0) <= self.max_ood_fraction
        return GuardVerdict(
            ok=ok,
            n_windows=n,
            n_ood=n_ood,
            window_ok=window_ok,
            reasons=tuple(reasons),
        )
