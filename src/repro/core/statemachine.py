"""Explicit authenticated state machine for the key-agreement session.

The session layer used to track its progress implicitly (local variables
inside ``KeyAgreementSession.run``); under an *active* adversary that is
not enough -- a replayed syndrome or a failed key-confirmation must drive
the whole session into a terminal, machine-readable abort state rather
than leaking a partially-derived key.  This module provides that skeleton:

- :class:`SessionState` -- the five phases plus the two terminal states;
- :class:`SessionStateMachine` -- transition validation (an illegal
  transition is a programming error and raises immediately);
- :class:`SessionAbort` -- the structured record of *why* a session
  aborted, carried on :class:`~repro.core.session.SessionResult` and
  surfaced as ``KeyEstablishmentOutcome.failure_reason``.

The abort taxonomy (every slug an attacker-triggered abort can carry).
Message-level reasons (the original four):

========================= ====================================================
``replay-detected``       A message carried a stale session nonce.
``malformed-message``     Structurally invalid message (bad block index,
                          empty nonce, unknown block).
``mac-verification-failed`` Every received syndrome failed its MAC -- the
                          exchange was tampered with wholesale.
``confirmation-failed``   The final key-confirmation hash exchange did not
                          verify; no key is released.
========================= ====================================================

Server-level reasons (the session server's liveness/transport taxonomy;
a misbehaving, slow or disconnecting peer must end in one of these, never
in an exception):

========================= ====================================================
``protocol-desync``       A progress event arrived in a state that cannot
                          accept it (out-of-order peer).
``deadline-exceeded``     The session overran its end-to-end deadline.
``idle-timeout``          The peer went quiet past the idle budget and was
                          reaped.
``client-disconnected``   The transport dropped mid-session.
``malformed-frame``       A wire frame was truncated, oversized or not
                          decodable.
``duplicate-session``     A second live session claimed the same session id.
``server-overloaded``     The ingress queue was full; the session was shed
                          with a structured retry-after.
``server-draining``       The server is draining (SIGTERM); no new work is
                          admitted.
``internal-error``        A server-side failure was isolated to this
                          session instead of poisoning its batch tick.
``secure-channel-failed`` The post-establishment secure data phase was
                          misused (a secure record before establishment
                          completed, or with no channel negotiated).
``recovered-after-crash`` The server crashed while this session was live;
                          recovery replayed the journal and aborted the
                          orphan (the client resumes with its token and
                          receives this structured outcome, never a
                          recomputed key).
========================= ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set, Tuple

from repro.exceptions import ProtocolError

#: Abort reason slugs (the complete taxonomy; see the module docstring).
ABORT_REPLAY = "replay-detected"
ABORT_MALFORMED = "malformed-message"
ABORT_MAC = "mac-verification-failed"
ABORT_CONFIRMATION = "confirmation-failed"

#: Server-level abort slugs (liveness, transport and load management).
ABORT_DESYNC = "protocol-desync"
ABORT_DEADLINE = "deadline-exceeded"
ABORT_IDLE = "idle-timeout"
ABORT_DISCONNECT = "client-disconnected"
ABORT_FRAME = "malformed-frame"
ABORT_DUPLICATE = "duplicate-session"
ABORT_OVERLOAD = "server-overloaded"
ABORT_DRAINING = "server-draining"
ABORT_INTERNAL = "internal-error"
ABORT_SECURE = "secure-channel-failed"
ABORT_RECOVERED = "recovered-after-crash"

#: All valid abort reasons, for validation and reporting.
ABORT_REASONS = (
    ABORT_REPLAY,
    ABORT_MALFORMED,
    ABORT_MAC,
    ABORT_CONFIRMATION,
    ABORT_DESYNC,
    ABORT_DEADLINE,
    ABORT_IDLE,
    ABORT_DISCONNECT,
    ABORT_FRAME,
    ABORT_DUPLICATE,
    ABORT_OVERLOAD,
    ABORT_DRAINING,
    ABORT_INTERNAL,
    ABORT_SECURE,
    ABORT_RECOVERED,
)


class SessionState(Enum):
    """Phases of one authenticated key-agreement session."""

    #: Session constructed, nothing exchanged yet.
    INIT = "init"
    #: Windowing, bit extraction and consensus masking.
    EXTRACTING = "extracting"
    #: Syndrome exchange and MAC verification.
    RECONCILING = "reconciling"
    #: Key-confirmation hash exchange over the amplified key.
    CONFIRMING = "confirming"
    #: Terminal: both parties hold the confirmed key (or cleanly hold none).
    COMPLETE = "complete"
    #: Terminal: the session was aborted; no key material is released.
    ABORTED = "aborted"


class SessionEvent(Enum):
    """Everything that can happen to a session, as a closed event set.

    The session server drives each peer's state machine through
    :meth:`SessionStateMachine.on_event` with these events.  Progress
    events are legal in exactly one state; abort events carry their
    taxonomized reason from any live state.  The set is closed so the
    exhaustive transition-matrix test can prove that *no* (state, event)
    pair raises.
    """

    #: Probing finished; windowing and bit extraction begin.
    START = "start"
    #: Extraction pooled at least one reconciliation block.
    BLOCKS_READY = "blocks-ready"
    #: Extraction yielded no block (short trace); complete without a key.
    NO_BLOCKS = "no-blocks"
    #: At least one syndrome verified; key confirmation begins.
    SYNDROMES_VERIFIED = "syndromes-verified"
    #: Reconciliation ended without enough verified bits for a key.
    RECONCILE_EXHAUSTED = "reconcile-exhausted"
    #: The key-confirmation exchange verified on both sides.
    CONFIRM_OK = "confirm-ok"
    #: A message carried a stale session nonce.
    REPLAY = "replay"
    #: A structurally invalid protocol message arrived.
    MALFORMED = "malformed"
    #: Every received syndrome failed MAC verification.
    MAC_FAILURE = "mac-failure"
    #: The key-confirmation exchange failed to verify.
    CONFIRM_FAIL = "confirm-fail"
    #: The session overran its end-to-end deadline.
    DEADLINE_EXPIRED = "deadline-expired"
    #: The peer went quiet past its idle budget.
    IDLE_EXPIRED = "idle-expired"
    #: The transport dropped mid-session.
    PEER_DISCONNECTED = "peer-disconnected"
    #: A wire frame was truncated, oversized or undecodable.
    FRAME_CORRUPT = "frame-corrupt"
    #: Another live session already owns this session id.
    DUPLICATE_SESSION = "duplicate-session"
    #: The ingress queue is full; the session is being shed.
    OVERLOADED = "overloaded"
    #: The server is draining and admits no new work.
    DRAINING = "draining"
    #: An isolated server-side failure ended this session.
    INTERNAL_ERROR = "internal-error"
    #: The secure data phase was misused before a channel existed.
    SECURE_FAILURE = "secure-failure"
    #: The server crashed mid-session; recovery orphan-aborted it.
    RECOVERED = "recovered"


#: Progress events: the one state each is legal in, and its successor.
_PROGRESS_EVENTS: Dict[SessionEvent, Tuple[SessionState, SessionState]] = {
    SessionEvent.START: (SessionState.INIT, SessionState.EXTRACTING),
    SessionEvent.BLOCKS_READY: (SessionState.EXTRACTING, SessionState.RECONCILING),
    SessionEvent.NO_BLOCKS: (SessionState.EXTRACTING, SessionState.COMPLETE),
    SessionEvent.SYNDROMES_VERIFIED: (
        SessionState.RECONCILING,
        SessionState.CONFIRMING,
    ),
    SessionEvent.RECONCILE_EXHAUSTED: (
        SessionState.RECONCILING,
        SessionState.COMPLETE,
    ),
    SessionEvent.CONFIRM_OK: (SessionState.CONFIRMING, SessionState.COMPLETE),
}

#: Abort events and the taxonomy slug each carries.
_ABORT_EVENTS: Dict[SessionEvent, str] = {
    SessionEvent.REPLAY: ABORT_REPLAY,
    SessionEvent.MALFORMED: ABORT_MALFORMED,
    SessionEvent.MAC_FAILURE: ABORT_MAC,
    SessionEvent.CONFIRM_FAIL: ABORT_CONFIRMATION,
    SessionEvent.DEADLINE_EXPIRED: ABORT_DEADLINE,
    SessionEvent.IDLE_EXPIRED: ABORT_IDLE,
    SessionEvent.PEER_DISCONNECTED: ABORT_DISCONNECT,
    SessionEvent.FRAME_CORRUPT: ABORT_FRAME,
    SessionEvent.DUPLICATE_SESSION: ABORT_DUPLICATE,
    SessionEvent.OVERLOADED: ABORT_OVERLOAD,
    SessionEvent.DRAINING: ABORT_DRAINING,
    SessionEvent.INTERNAL_ERROR: ABORT_INTERNAL,
    SessionEvent.SECURE_FAILURE: ABORT_SECURE,
    SessionEvent.RECOVERED: ABORT_RECOVERED,
}


#: Legal transitions.  EXTRACTING may complete directly (a trace too short
#: to yield a block skips reconciliation), and every non-terminal state may
#: abort.
_TRANSITIONS: Dict[SessionState, Set[SessionState]] = {
    SessionState.INIT: {SessionState.EXTRACTING, SessionState.ABORTED},
    SessionState.EXTRACTING: {
        SessionState.RECONCILING,
        SessionState.COMPLETE,
        SessionState.ABORTED,
    },
    SessionState.RECONCILING: {
        SessionState.CONFIRMING,
        SessionState.COMPLETE,
        SessionState.ABORTED,
    },
    SessionState.CONFIRMING: {SessionState.COMPLETE, SessionState.ABORTED},
    SessionState.COMPLETE: set(),
    SessionState.ABORTED: set(),
}


@dataclass(frozen=True)
class SessionAbort:
    """Why (and where) a session was aborted.

    Attributes:
        reason: One of :data:`ABORT_REASONS` -- the machine-readable slug
            mirrored into ``KeyEstablishmentOutcome.failure_reason``.
        detail: Human-readable description of the triggering event.
        state: Name of the :class:`SessionState` the session was in when
            the abort fired.
    """

    reason: str
    detail: str
    state: str

    def __post_init__(self) -> None:
        if self.reason not in ABORT_REASONS:
            raise ProtocolError(
                f"unknown abort reason {self.reason!r}; valid: {ABORT_REASONS}"
            )


class SessionStateMachine:
    """Tracks and validates one session's progression.

    The machine protects against *programming* errors (an illegal
    transition raises :class:`~repro.exceptions.ProtocolError`
    immediately), while :meth:`abort` records *protocol* failures as
    structured :class:`SessionAbort` data -- attacker-controlled input
    must never raise out of the session, only abort it.
    """

    def __init__(self) -> None:
        self.state = SessionState.INIT
        #: Every state visited, in order (diagnostics / tests).
        self.history: List[SessionState] = [SessionState.INIT]
        self.abort_record: Optional[SessionAbort] = None

    def advance(self, new_state: SessionState) -> None:
        """Move to ``new_state``; raises on an illegal transition."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ProtocolError(
                f"illegal session transition {self.state.value} -> "
                f"{new_state.value}"
            )
        self.state = new_state
        self.history.append(new_state)

    def abort(self, reason: str, detail: str) -> SessionAbort:
        """Abort the session from its current state; returns the record.

        Idempotent: a second abort keeps the first record (the first
        detected violation is the one reported).
        """
        if self.abort_record is not None:
            return self.abort_record
        record = SessionAbort(reason=reason, detail=detail, state=self.state.value)
        self.advance(SessionState.ABORTED)
        self.abort_record = record
        return record

    def on_event(
        self, event: SessionEvent, detail: str = ""
    ) -> Optional[SessionAbort]:
        """Apply one :class:`SessionEvent`; never raises on any pair.

        This is the session server's driver: events come from the wire,
        from timers and from the batch executor, so *every*
        (state, event) pair must resolve without an exception
        (``tests/test_statemachine_matrix.py`` proves the full matrix):

        - a progress event in its one legal state advances the machine;
        - a progress event in any other live state is a peer desync and
          aborts with ``protocol-desync``;
        - an abort event in any live state aborts with its taxonomized
          reason;
        - any event in a terminal state is absorbed (a reaped or
          completed session cannot be re-aborted or resurrected).

        Returns the :class:`SessionAbort` recorded for this session, or
        ``None`` when it is live or completed cleanly.
        """
        if self.terminal:
            return self.abort_record
        if event in _PROGRESS_EVENTS:
            legal_state, successor = _PROGRESS_EVENTS[event]
            if self.state is legal_state:
                self.advance(successor)
                return None
            return self.abort(
                ABORT_DESYNC,
                detail
                or (
                    f"event {event.value!r} is illegal in state "
                    f"{self.state.value!r}"
                ),
            )
        return self.abort(_ABORT_EVENTS[event], detail or f"event {event.value!r}")

    @property
    def terminal(self) -> bool:
        """Whether the session has reached COMPLETE or ABORTED."""
        return not _TRANSITIONS[self.state]

    @property
    def aborted(self) -> bool:
        """Whether the session ended in the ABORTED state."""
        return self.state is SessionState.ABORTED
