"""Explicit authenticated state machine for the key-agreement session.

The session layer used to track its progress implicitly (local variables
inside ``KeyAgreementSession.run``); under an *active* adversary that is
not enough -- a replayed syndrome or a failed key-confirmation must drive
the whole session into a terminal, machine-readable abort state rather
than leaking a partially-derived key.  This module provides that skeleton:

- :class:`SessionState` -- the five phases plus the two terminal states;
- :class:`SessionStateMachine` -- transition validation (an illegal
  transition is a programming error and raises immediately);
- :class:`SessionAbort` -- the structured record of *why* a session
  aborted, carried on :class:`~repro.core.session.SessionResult` and
  surfaced as ``KeyEstablishmentOutcome.failure_reason``.

The abort taxonomy (every slug an attacker-triggered abort can carry):

========================= ====================================================
``replay-detected``       A message carried a stale session nonce.
``malformed-message``     Structurally invalid message (bad block index,
                          empty nonce, unknown block).
``mac-verification-failed`` Every received syndrome failed its MAC -- the
                          exchange was tampered with wholesale.
``confirmation-failed``   The final key-confirmation hash exchange did not
                          verify; no key is released.
========================= ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.exceptions import ProtocolError

#: Abort reason slugs (the complete taxonomy; see the module docstring).
ABORT_REPLAY = "replay-detected"
ABORT_MALFORMED = "malformed-message"
ABORT_MAC = "mac-verification-failed"
ABORT_CONFIRMATION = "confirmation-failed"

#: All valid abort reasons, for validation and reporting.
ABORT_REASONS = (ABORT_REPLAY, ABORT_MALFORMED, ABORT_MAC, ABORT_CONFIRMATION)


class SessionState(Enum):
    """Phases of one authenticated key-agreement session."""

    #: Session constructed, nothing exchanged yet.
    INIT = "init"
    #: Windowing, bit extraction and consensus masking.
    EXTRACTING = "extracting"
    #: Syndrome exchange and MAC verification.
    RECONCILING = "reconciling"
    #: Key-confirmation hash exchange over the amplified key.
    CONFIRMING = "confirming"
    #: Terminal: both parties hold the confirmed key (or cleanly hold none).
    COMPLETE = "complete"
    #: Terminal: the session was aborted; no key material is released.
    ABORTED = "aborted"


#: Legal transitions.  EXTRACTING may complete directly (a trace too short
#: to yield a block skips reconciliation), and every non-terminal state may
#: abort.
_TRANSITIONS: Dict[SessionState, Set[SessionState]] = {
    SessionState.INIT: {SessionState.EXTRACTING, SessionState.ABORTED},
    SessionState.EXTRACTING: {
        SessionState.RECONCILING,
        SessionState.COMPLETE,
        SessionState.ABORTED,
    },
    SessionState.RECONCILING: {
        SessionState.CONFIRMING,
        SessionState.COMPLETE,
        SessionState.ABORTED,
    },
    SessionState.CONFIRMING: {SessionState.COMPLETE, SessionState.ABORTED},
    SessionState.COMPLETE: set(),
    SessionState.ABORTED: set(),
}


@dataclass(frozen=True)
class SessionAbort:
    """Why (and where) a session was aborted.

    Attributes:
        reason: One of :data:`ABORT_REASONS` -- the machine-readable slug
            mirrored into ``KeyEstablishmentOutcome.failure_reason``.
        detail: Human-readable description of the triggering event.
        state: Name of the :class:`SessionState` the session was in when
            the abort fired.
    """

    reason: str
    detail: str
    state: str

    def __post_init__(self) -> None:
        if self.reason not in ABORT_REASONS:
            raise ProtocolError(
                f"unknown abort reason {self.reason!r}; valid: {ABORT_REASONS}"
            )


class SessionStateMachine:
    """Tracks and validates one session's progression.

    The machine protects against *programming* errors (an illegal
    transition raises :class:`~repro.exceptions.ProtocolError`
    immediately), while :meth:`abort` records *protocol* failures as
    structured :class:`SessionAbort` data -- attacker-controlled input
    must never raise out of the session, only abort it.
    """

    def __init__(self) -> None:
        self.state = SessionState.INIT
        #: Every state visited, in order (diagnostics / tests).
        self.history: List[SessionState] = [SessionState.INIT]
        self.abort_record: Optional[SessionAbort] = None

    def advance(self, new_state: SessionState) -> None:
        """Move to ``new_state``; raises on an illegal transition."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ProtocolError(
                f"illegal session transition {self.state.value} -> "
                f"{new_state.value}"
            )
        self.state = new_state
        self.history.append(new_state)

    def abort(self, reason: str, detail: str) -> SessionAbort:
        """Abort the session from its current state; returns the record.

        Idempotent: a second abort keeps the first record (the first
        detected violation is the one reported).
        """
        if self.abort_record is not None:
            return self.abort_record
        record = SessionAbort(reason=reason, detail=detail, state=self.state.value)
        self.advance(SessionState.ABORTED)
        self.abort_record = record
        return record

    @property
    def terminal(self) -> bool:
        """Whether the session has reached COMPLETE or ABORTED."""
        return not _TRANSITIONS[self.state]

    @property
    def aborted(self) -> bool:
        """Whether the session ended in the ABORTED state."""
        return self.state is SessionState.ABORTED
