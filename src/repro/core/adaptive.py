"""Adaptive key establishment: probe only as long as needed.

The fixed-length session (:meth:`VehicleKeyPipeline.establish_key`) picks
a round count up front; on a good channel it over-probes, on a bad one it
falls short.  The adaptive controller instead probes in bursts, runs the
agreement after each burst over the pooled traces, and stops as soon as
the final key's bit budget is verified (or a burst limit is hit).  This
is the natural deployment loop for an IoV node that wants a key as soon
as possible and the channel's key-rate is unknown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.session import SessionResult
from repro.utils.validation import require_positive


@dataclass
class AdaptiveOutcome:
    """Result of an adaptive establishment run.

    Attributes:
        session: Final (pooled) session result.
        bursts_used: Probing bursts consumed.
        rounds_used: Total probing rounds consumed.
        probing_time_s: Total probing airtime.
        key_generation_rate_bps: Verified bits per total protocol second.
        burst_history: Verified-bit count after each burst.
    """

    session: SessionResult
    bursts_used: int
    rounds_used: int
    probing_time_s: float
    key_generation_rate_bps: float
    burst_history: List[int]

    @property
    def success(self) -> bool:
        """Whether a full final key was established."""
        return self.session.keys_match

    @property
    def final_key(self) -> Optional[bytes]:
        """The established key, if any."""
        return self.session.final_key_alice


def establish_key_adaptive(
    pipeline,
    burst_rounds: int = 96,
    max_bursts: int = 8,
    episode: str = "adaptive",
) -> AdaptiveOutcome:
    """Probe in bursts until the final key's bit budget is verified.

    Args:
        pipeline: A trained :class:`VehicleKeyPipeline`.
        burst_rounds: Probing rounds per burst.
        max_bursts: Upper bound on bursts before giving up.
        episode: Episode label prefix (each burst gets a fresh channel
            segment, like repeated encounters with the same peer).

    Returns:
        The :class:`AdaptiveOutcome`; ``success`` is ``False`` when even
        ``max_bursts`` bursts could not verify enough bits.
    """
    require_positive(burst_rounds, "burst_rounds")
    require_positive(max_bursts, "max_bursts")
    session = pipeline.build_session()
    target_bits = pipeline.config.final_key_bits

    traces = []
    history: List[int] = []
    result = None
    for burst in range(max_bursts):
        traces.append(
            pipeline.collect_trace(f"{episode}-{burst}", n_rounds=burst_rounds)
        )
        result = session.run(traces)
        history.append(result.agreed_bits)
        if result.agreed_bits >= target_bits and result.keys_match:
            break

    probing_time = sum(trace.duration_s for trace in traces)
    airtime = pipeline.reconciliation_airtime_s(
        result.reconciliation_messages + 2 * len(traces), result.total_public_bytes
    )
    kgr = (
        result.agreed_bits / (probing_time + airtime)
        if probing_time + airtime > 0
        else 0.0
    )
    return AdaptiveOutcome(
        session=result,
        bursts_used=len(traces),
        rounds_used=burst_rounds * len(traces),
        probing_time_s=probing_time,
        key_generation_rate_bps=kgr,
        burst_history=history,
    )
