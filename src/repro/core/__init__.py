"""The paper's primary contribution: the Vehicle-Key system.

- :mod:`repro.core.model` -- the BiLSTM prediction + quantization network.
- :mod:`repro.core.pipeline` -- end-to-end key establishment.
- :mod:`repro.core.session` -- the authenticated two-party message protocol.
- :mod:`repro.core.batch` -- batched multi-session establishment engine.
- :mod:`repro.core.baselines` -- LoRa-Key, Han et al. and Gao et al.
- :mod:`repro.core.transfer` -- cross-scenario fine-tuning (Fig. 14).
- :mod:`repro.core.power` -- execution timing and the RPi4 energy model.
"""

from repro.core.model import PredictionQuantizationModel
from repro.core.adaptive import AdaptiveOutcome, establish_key_adaptive

__all__ = [
    "AdaptiveOutcome",
    "establish_key_adaptive",
    "PredictionQuantizationModel",
    "VehicleKeyPipeline",
    "KeyEstablishmentOutcome",
    "BatchedSessionRunner",
    "BatchReport",
]

_LAZY_EXPORTS = {
    "VehicleKeyPipeline": ("repro.core.pipeline", "VehicleKeyPipeline"),
    "KeyEstablishmentOutcome": ("repro.core.pipeline", "KeyEstablishmentOutcome"),
    "BatchedSessionRunner": ("repro.core.batch", "BatchedSessionRunner"),
    "BatchReport": ("repro.core.batch", "BatchReport"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
