"""Counters the key-establishment server exposes for health monitoring.

Every robustness behaviour the server promises -- shedding instead of
hanging, reaping instead of leaking, degrading instead of silently
failing -- increments a counter here, so the chaos harness (and an
operator's health endpoint) can verify the behaviour actually happened.
In particular ``degraded_sessions`` makes the InferenceGuard's
quantizer-fallback mode a *counted* observation: a session that served a
key in degraded mode is never silent in server metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class ServerMetrics:
    """Monotonic counters over one server's lifetime.

    Attributes:
        accepted: Sessions admitted past the hello handshake.
        rejected_overload: Sessions shed with a structured retry-after
            because the ingress queue (or session table) was full.
        rejected_draining: Sessions refused because the server was
            draining.
        rejected_duplicate: Sessions refused because a live session
            already owned the claimed session id.
        completed: Sessions that received a key-establishment outcome.
        succeeded: Completed sessions whose outcome was a confirmed key.
        failed: Completed sessions whose outcome carried a failure.
        degraded_sessions: Completed sessions served in a degraded mode
            (InferenceGuard quantizer fallback); counted so degradation
            is never silent.
        aborted: Sessions ended by a server-side abort, by reason slug.
        reaped_idle: Sessions aborted by the idle reaper.
        reaped_deadline: Sessions aborted by the end-to-end deadline.
        disconnects: Peers that dropped the transport mid-session.
        malformed_frames: Frames rejected by the framing layer.
        ticks: Batch ticks executed.
        tick_sessions_max: Largest number of sessions coalesced into one
            tick.
        batch_fallbacks: Ticks whose batched run failed and fell back to
            supervised per-session execution (failure isolation).
        sharded_batches: Tick batches that actually ran across more than
            one fork worker (``ServerConfig.shards`` > 1 and enough
            sessions to split).
        shards_used_max: Largest worker count any single batch ran
            across.
        model_reloads: Successful hot-reloads of the model registry.
        model_reload_failures: Rejected (corrupt/mismatched) reloads that
            rolled back to the serving generation.
        channels_opened: Secure data-phase channels established after a
            successful key exchange.
        secure_records: AEAD records received on data-phase channels.
        secure_batches: Data-phase drain passes executed; every burst of
            consecutive already-arrived ``secure`` frames (even a burst
            of one) is opened and echoed through the channel's batched
            APIs as one pass.
        secure_batch_records_max: Largest number of records any single
            drain pass coalesced -- > 1 proves the batched path actually
            engaged under load.
        secure_echoed: Records that opened successfully and were echoed
            back under the server's send keys.
        secure_open_failures: Failed record opens, by failure slug from
            the channel's closed taxonomy.
        channels_closed: Data-phase channels the server closed with a
            structured ``channel-closed`` frame (decrypt budget
            exhausted, send nonce space exhausted), by reason.
        recoveries: Journal recovery passes this server performed at
            startup (0 on a fresh journal, 1 after surviving a crash).
        recovered_orphans: Sessions found non-terminal in the journal at
            recovery and aborted with ``recovered-after-crash``.
        resumed_sessions: Reconnecting clients whose resumption token
            was honoured (live re-attach or idempotent redelivery of a
            journaled outcome).
        journal_records: Records appended to the write-ahead journal
            over this server's lifetime.
    """

    accepted: int = 0
    rejected_overload: int = 0
    rejected_draining: int = 0
    rejected_duplicate: int = 0
    completed: int = 0
    succeeded: int = 0
    failed: int = 0
    degraded_sessions: int = 0
    aborted: Dict[str, int] = field(default_factory=dict)
    reaped_idle: int = 0
    reaped_deadline: int = 0
    disconnects: int = 0
    malformed_frames: int = 0
    ticks: int = 0
    tick_sessions_max: int = 0
    batch_fallbacks: int = 0
    sharded_batches: int = 0
    shards_used_max: int = 0
    model_reloads: int = 0
    model_reload_failures: int = 0
    channels_opened: int = 0
    secure_records: int = 0
    secure_batches: int = 0
    secure_batch_records_max: int = 0
    secure_echoed: int = 0
    secure_open_failures: Dict[str, int] = field(default_factory=dict)
    channels_closed: Dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    recovered_orphans: int = 0
    resumed_sessions: int = 0
    journal_records: int = 0

    def record_abort(self, reason: str) -> None:
        """Count one server-side session abort by its taxonomy slug."""
        self.aborted[reason] = self.aborted.get(reason, 0) + 1

    def record_open_failure(self, failure: str) -> None:
        """Count one failed data-phase record open by its failure slug."""
        self.secure_open_failures[failure] = (
            self.secure_open_failures.get(failure, 0) + 1
        )

    def record_channel_close(self, reason: str) -> None:
        """Count one structured data-phase channel close by its reason."""
        self.channels_closed[reason] = self.channels_closed.get(reason, 0) + 1

    @property
    def total_aborted(self) -> int:
        """Sessions ended by any server-side abort."""
        return sum(self.aborted.values())

    @property
    def total_rejected(self) -> int:
        """Sessions shed at admission (overload, draining, duplicate)."""
        return (
            self.rejected_overload + self.rejected_draining + self.rejected_duplicate
        )

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy for the health frame / logs."""
        return {
            "accepted": self.accepted,
            "rejected_overload": self.rejected_overload,
            "rejected_draining": self.rejected_draining,
            "rejected_duplicate": self.rejected_duplicate,
            "completed": self.completed,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "degraded_sessions": self.degraded_sessions,
            "aborted": dict(self.aborted),
            "reaped_idle": self.reaped_idle,
            "reaped_deadline": self.reaped_deadline,
            "disconnects": self.disconnects,
            "malformed_frames": self.malformed_frames,
            "ticks": self.ticks,
            "tick_sessions_max": self.tick_sessions_max,
            "batch_fallbacks": self.batch_fallbacks,
            "sharded_batches": self.sharded_batches,
            "shards_used_max": self.shards_used_max,
            "model_reloads": self.model_reloads,
            "model_reload_failures": self.model_reload_failures,
            "channels_opened": self.channels_opened,
            "secure_records": self.secure_records,
            "secure_batches": self.secure_batches,
            "secure_batch_records_max": self.secure_batch_records_max,
            "secure_echoed": self.secure_echoed,
            "secure_open_failures": dict(self.secure_open_failures),
            "channels_closed": dict(self.channels_closed),
            "recoveries": self.recoveries,
            "recovered_orphans": self.recovered_orphans,
            "resumed_sessions": self.resumed_sessions,
            "journal_records": self.journal_records,
        }
