"""Fault-tolerant async key-establishment session server.

The server subsystem turns the in-process Vehicle-Key pipeline into a
long-running service: a framed transport (:mod:`~repro.server.framing`),
per-device session records with liveness budgets
(:mod:`~repro.server.session`), a checksummed hot-reloading model
registry (:mod:`~repro.server.registry`), health counters
(:mod:`~repro.server.metrics`), the asyncio server itself
(:mod:`~repro.server.server`) and a device client / misbehavior driver
(:mod:`~repro.server.client`).  See ``docs/SERVER.md`` for the
architecture and the robustness contract.
"""

from repro.server.client import (
    BEHAVIORS,
    ClientOutcome,
    DeviceClient,
    Endpoint,
    run_behavior,
)
from repro.server.framing import (
    FRAME_CORRUPT,
    FRAME_OVERSIZED,
    FRAME_TRUNCATED,
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    decode_body,
    read_frame,
    write_frame,
)
from repro.server.metrics import ServerMetrics
from repro.server.registry import ARTIFACT_NAMES, ModelRegistry
from repro.server.server import DrainReport, KeyEstablishmentServer, ServerConfig
from repro.server.session import DeviceSession

__all__ = [
    "ARTIFACT_NAMES",
    "BEHAVIORS",
    "ClientOutcome",
    "DeviceClient",
    "DeviceSession",
    "DrainReport",
    "Endpoint",
    "FrameError",
    "FRAME_CORRUPT",
    "FRAME_OVERSIZED",
    "FRAME_TRUNCATED",
    "KeyEstablishmentServer",
    "MAX_FRAME_BYTES",
    "ModelRegistry",
    "ServerConfig",
    "ServerMetrics",
    "decode_body",
    "encode_frame",
    "read_frame",
    "run_behavior",
    "write_frame",
]
