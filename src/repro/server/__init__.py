"""Fault-tolerant async key-establishment session server.

The server subsystem turns the in-process Vehicle-Key pipeline into a
long-running service: a framed transport (:mod:`~repro.server.framing`),
per-device session records with liveness budgets
(:mod:`~repro.server.session`), a checksummed hot-reloading model
registry (:mod:`~repro.server.registry`), health counters
(:mod:`~repro.server.metrics`), the asyncio server itself
(:mod:`~repro.server.server`), a device client / misbehavior driver
(:mod:`~repro.server.client`), a crash-durability write-ahead journal
(:mod:`~repro.server.journal`) and seeded crash-point fault injection
(:mod:`~repro.server.crashpoints`).  See ``docs/SERVER.md`` for the
architecture and the robustness contract.
"""

from repro.server.client import (
    BEHAVIORS,
    ClientOutcome,
    DeviceClient,
    Endpoint,
    channel_from_frame,
    fetch_status,
    run_behavior,
)
from repro.server.crashpoints import CRASHPOINTS, SITES, CrashpointRegistry
from repro.server.framing import (
    FRAME_CORRUPT,
    FRAME_OVERSIZED,
    FRAME_TRUNCATED,
    MAX_FRAME_BYTES,
    FrameError,
    encode_frame,
    decode_body,
    read_frame,
    write_frame,
)
from repro.server.journal import (
    JOURNAL_FILENAME,
    JournalReplay,
    RecoveredSession,
    RecoveryState,
    SessionJournal,
    build_recovery_state,
    recover_journal,
    replay_journal,
)
from repro.server.metrics import ServerMetrics
from repro.server.registry import ARTIFACT_NAMES, ModelRegistry
from repro.server.server import DrainReport, KeyEstablishmentServer, ServerConfig
from repro.server.session import DeviceSession

__all__ = [
    "ARTIFACT_NAMES",
    "BEHAVIORS",
    "CRASHPOINTS",
    "ClientOutcome",
    "CrashpointRegistry",
    "DeviceClient",
    "DeviceSession",
    "DrainReport",
    "Endpoint",
    "FrameError",
    "FRAME_CORRUPT",
    "FRAME_OVERSIZED",
    "FRAME_TRUNCATED",
    "JOURNAL_FILENAME",
    "JournalReplay",
    "KeyEstablishmentServer",
    "MAX_FRAME_BYTES",
    "ModelRegistry",
    "RecoveredSession",
    "RecoveryState",
    "SITES",
    "ServerConfig",
    "ServerMetrics",
    "SessionJournal",
    "build_recovery_state",
    "channel_from_frame",
    "decode_body",
    "encode_frame",
    "fetch_status",
    "read_frame",
    "recover_journal",
    "replay_journal",
    "run_behavior",
    "write_frame",
]
