"""Model registry: checksummed hot-reload with atomic rollback.

A long-running key-establishment server cannot restart to pick up a
newly trained model, and it must *never* start serving a half-written or
tampered artifact.  The registry solves both:

- the serving :class:`~repro.core.pipeline.VehicleKeyPipeline` is one
  attribute swap away from its successor, so readers (the tick loop)
  always see a complete generation;
- a candidate generation is loaded into a *fresh* pipeline object first,
  which routes through :mod:`repro.utils.artifact` -- SHA-256 checksum,
  kind and architecture verification -- before the swap.  Any failure
  (truncated file, bad checksum, wrong architecture) leaves the serving
  generation untouched and is only counted, never raised into the serve
  loop.

Reload checks are cheap (file size + mtime fingerprint), so the server
can poll between batch ticks without touching artifact bytes until
something actually changed.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.core.pipeline import PipelineConfig, VehicleKeyPipeline

#: Artifact filenames a pipeline generation consists of.
ARTIFACT_NAMES = ("model.npz", "reconciler.npz")


class ModelRegistry:
    """Serve one pipeline generation; swap in verified successors.

    Args:
        pipeline: The generation to start serving (already trained or
            loaded).
        directory: Optional artifact directory to watch for hot-reloads
            (the layout :meth:`VehicleKeyPipeline.save` writes).  ``None``
            pins the registry to its initial generation.
        config: Pipeline configuration used to construct candidate
            generations; defaults to ``pipeline.config``.
        seed: Root seed for candidate pipeline construction (weights are
            overwritten by the loaded artifacts).
    """

    def __init__(
        self,
        pipeline: VehicleKeyPipeline,
        directory: Optional[Union[str, Path]] = None,
        config: Optional[PipelineConfig] = None,
        seed: int = 0,
    ):
        self._pipeline = pipeline
        self.directory = Path(directory) if directory is not None else None
        self.config = config if config is not None else pipeline.config
        self.seed = seed
        self.generation = 1
        self.reloads = 0
        self.reload_failures = 0
        self.last_error: Optional[str] = None
        self._served_fingerprint = self._fingerprint()

    @property
    def pipeline(self) -> VehicleKeyPipeline:
        """The currently serving pipeline generation."""
        return self._pipeline

    def _fingerprint(self) -> Optional[Tuple]:
        """(size, mtime_ns) per artifact file; ``None`` when unwatched
        or incomplete (a generation mid-write is never a candidate)."""
        if self.directory is None:
            return None
        parts = []
        for name in ARTIFACT_NAMES:
            path = self.directory / name
            try:
                stat = os.stat(path)
            except OSError:
                return None
            parts.append((name, stat.st_size, stat.st_mtime_ns))
        return tuple(parts)

    def maybe_reload(self) -> bool:
        """Swap in the on-disk generation if it changed and verifies.

        Returns ``True`` only when a new generation was swapped in.  A
        corrupt, truncated or architecture-mismatched artifact set is
        counted in :attr:`reload_failures` (with :attr:`last_error`) and
        the serving generation keeps serving -- the rollback is atomic
        because the swap happens only after *both* artifacts loaded and
        verified into a fresh pipeline.
        """
        if self.directory is None:
            return False
        fingerprint = self._fingerprint()
        if fingerprint is None or fingerprint == self._served_fingerprint:
            return False
        candidate = VehicleKeyPipeline(self.config, seed=self.seed)
        try:
            candidate.load(self.directory)
        except Exception as error:  # noqa: BLE001 - a bad artifact must never kill serving
            self.reload_failures += 1
            self.last_error = f"{type(error).__name__}: {error}"
            # Remember the rejected fingerprint so an unchanged corrupt
            # set is not re-verified every tick.
            self._served_fingerprint = fingerprint
            return False
        self._pipeline = candidate
        self._served_fingerprint = fingerprint
        self.generation += 1
        self.reloads += 1
        self.last_error = None
        return True
