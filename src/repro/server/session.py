"""Per-device session state for the key-establishment server.

Each connected device owns one :class:`DeviceSession`: its authenticated
state machine (the same :class:`~repro.core.statemachine.SessionStateMachine`
the library path uses, driven through the never-raising
:meth:`~repro.core.statemachine.SessionStateMachine.on_event`), its
liveness budgets (end-to-end deadline and idle timeout), and the future
its connection handler awaits for the batch tick's outcome.  The session
is the unit of failure isolation: everything that can go wrong with one
device -- stalls, disconnects, poisoned frames, batch-side errors --
terminates *this* record with a taxonomized abort and never another
session's.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.pipeline import KeyEstablishmentOutcome
from repro.core.statemachine import (
    SessionAbort,
    SessionEvent,
    SessionStateMachine,
)
from repro.secure import SecureChannel


@dataclass
class DeviceSession:
    """One device's server-side session record.

    Attributes:
        session_id: The device-chosen id (unique among live sessions).
        episode: Episode label the session's probing burst uses.
        rounds: Probing rounds requested (``None``: the server default).
        machine: The authenticated session state machine; all server
            events go through its never-raising ``on_event`` driver.
        created_s: Monotonic admission time.
        last_activity_s: Monotonic time of the last frame from the peer.
        deadline_s: Absolute monotonic end-to-end deadline.
        idle_timeout_s: Budget between peer frames before reaping.
        outcome: The establishment outcome once a tick produced one.
        started: Whether the peer requested establishment (``start``).
        wants_data: Whether the hello frame requested an encrypted data
            phase after establishment (``"data": true``).
        channel: The server-side (responder) secure channel, built once
            a successful outcome is delivered to a ``wants_data`` peer.
        resume_token: Resumption token minted at admission when the
            server journals (empty otherwise).  The client presents it
            on reconnect; the journal keys all durable records by it.
        detached: The transport dropped but the session is being kept
            for a resumption window instead of being aborted (journaled
            servers only).
        delivered: The terminal verdict frame was written to a peer (and
            journaled); a resumed client is re-sent the identical frame.
        verdict_frame: The terminal frame as sent, cached for idempotent
            redelivery on re-attach (the channel object is *not* in it).
        channel_frame: The wire description of the last data-phase
            channel opened for this session; a resumed client gets a
            fresh channel derived at this epoch + 1, so pre-crash
            records can never verify on the resumed channel.
        outcome_journaled: The terminal outcome record reached the
            journal (guards against double-journaling on re-attach).
    """

    session_id: str
    episode: str
    rounds: Optional[int] = None
    machine: SessionStateMachine = field(default_factory=SessionStateMachine)
    created_s: float = field(default_factory=time.monotonic)
    last_activity_s: float = field(default_factory=time.monotonic)
    deadline_s: float = 0.0
    idle_timeout_s: float = 30.0
    outcome: Optional[KeyEstablishmentOutcome] = None
    started: bool = False
    wants_data: bool = False
    channel: Optional[SecureChannel] = None
    resume_token: str = ""
    detached: bool = False
    delivered: bool = False
    verdict_frame: Optional[dict] = None
    channel_frame: Optional[dict] = None
    outcome_journaled: bool = False

    def __post_init__(self) -> None:
        self._result: asyncio.Future = asyncio.get_running_loop().create_future()

    @property
    def result(self) -> asyncio.Future:
        """Resolves to the session's terminal verdict.

        The value is the :class:`KeyEstablishmentOutcome` on completion
        or the :class:`SessionAbort` record on a server-side abort; the
        future is never resolved with an exception, so awaiting it
        cannot raise attacker-controlled errors into the handler.
        """
        return self._result

    def touch(self) -> None:
        """Record peer activity (resets the idle budget)."""
        self.last_activity_s = time.monotonic()

    def idle_expired(self, now: Optional[float] = None) -> bool:
        """Whether the peer has been quiet past its idle budget."""
        now = time.monotonic() if now is None else now
        return now - self.last_activity_s > self.idle_timeout_s

    def deadline_expired(self, now: Optional[float] = None) -> bool:
        """Whether the session overran its end-to-end deadline."""
        now = time.monotonic() if now is None else now
        return self.deadline_s > 0.0 and now > self.deadline_s

    @property
    def terminal(self) -> bool:
        """Whether the state machine reached COMPLETE or ABORTED."""
        return self.machine.terminal

    @property
    def abort_record(self) -> Optional[SessionAbort]:
        """The abort that ended this session, if any."""
        return self.machine.abort_record

    def abort(self, event: SessionEvent, detail: str = "") -> Optional[SessionAbort]:
        """Drive an abort event through the machine and resolve the future.

        Idempotent and never raises: a session that is already terminal
        keeps its first verdict, and the result future is only resolved
        once.
        """
        record = self.machine.on_event(event, detail)
        if record is not None and not self._result.done():
            self._result.set_result(record)
        return record

    def complete(self, outcome: KeyEstablishmentOutcome) -> None:
        """Deliver a tick's outcome and mirror it onto the state machine.

        The server-side machine walks the same phases the in-process
        session walked, so ``final_state``/abort taxonomy agree between
        the library path and the served path.  A session that aborted
        server-side first (reaped, disconnected) keeps its abort; the
        late outcome is dropped -- it carried no key to the peer.
        """
        if self.machine.terminal:
            return
        self.outcome = outcome
        result = outcome.session
        self.machine.on_event(SessionEvent.START)
        if result.abort is not None:
            # Replay the in-session abort onto the server machine.
            self.machine.abort(result.abort.reason, result.abort.detail)
        elif result.n_blocks == 0:
            self.machine.on_event(SessionEvent.NO_BLOCKS)
        else:
            self.machine.on_event(SessionEvent.BLOCKS_READY)
            if result.verified_blocks and result.final_key_alice is not None:
                self.machine.on_event(SessionEvent.SYNDROMES_VERIFIED)
                self.machine.on_event(SessionEvent.CONFIRM_OK)
            else:
                self.machine.on_event(SessionEvent.RECONCILE_EXHAUSTED)
        if not self._result.done():
            self._result.set_result(outcome)
