"""Fault-tolerant asyncio key-establishment session server.

Accepts concurrent device sessions over the framed transport
(:mod:`repro.server.framing`), drives each through the authenticated
state machine (:mod:`repro.core.statemachine`), and coalesces ready
sessions into :class:`~repro.core.batch.BatchedSessionRunner` ticks so
the batched-inference fast path is amortized across whatever arrives
together.

The robustness contract, in order of importance:

- **Never hang, never raise.**  Misbehaving peers -- slow-loris frames,
  corrupt payloads, mid-phase disconnects, duplicate ids -- end in a
  taxonomized :class:`~repro.core.statemachine.SessionAbort`, reported
  on the wire when the peer is still there to hear it.
- **Backpressure with structured shedding.**  The ingress queue is
  bounded; a session that cannot be admitted receives a ``rejected``
  frame carrying ``retry_after_s`` and a clean close, never an
  unanswered socket.
- **Failure isolation.**  One poisoned session cannot take down its
  batch tick: a failed batched run falls back to supervised per-session
  execution, and a session that still fails aborts alone with
  ``internal-error``.
- **Liveness.**  A reaper task enforces per-session idle budgets and
  end-to-end deadlines, so wedged peers are reclaimed (no session leak)
  and the tick loop never waits on a client.
- **Graceful drain.**  On SIGTERM (or :meth:`KeyEstablishmentServer.drain`)
  in-flight sessions complete and deliver their results; unstarted
  sessions abort with ``server-draining`` and a retry-after; nothing is
  silently dropped.
- **Verified hot-reload.**  Between ticks the
  :class:`~repro.server.registry.ModelRegistry` may swap in a new model
  generation; corrupt artifacts roll back atomically and are counted.
- **Encrypted data phase.**  A peer whose hello carries ``"data": true``
  continues past a successful result frame into an AEAD-record echo
  phase (:mod:`repro.secure`): every record it sends is opened under the
  established key and the plaintext echoed back sealed under the
  server's send direction.  Failed opens answer a structured
  ``secure-error`` carrying the channel's closed failure taxonomy, a
  channel that exhausts its decrypt budget or send-nonce space ends with
  a ``channel-closed`` frame -- plaintext is never released, nonces are
  never reused, and nothing a peer sends to the channel can raise.
"""

from __future__ import annotations

import asyncio
import hashlib
import secrets
import signal
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.batch import BatchedSessionRunner
from repro.core.pipeline import KeyEstablishmentOutcome
from repro.core.statemachine import ABORT_RECOVERED, SessionEvent
from repro.server.framing import (
    MAX_FRAME_BYTES,
    FrameError,
    read_frame,
    write_frame,
)
from repro.secure import (
    ChannelContext,
    NonceExhaustedError,
    NonceLedger,
    SecureChannel,
    derive_channel_keys,
    master_secret_from_result,
)
from repro.server.crashpoints import CRASHPOINTS
from repro.server.journal import (
    RecoveredSession,
    SessionJournal,
    build_recovery_state,
)
from repro.server.metrics import ServerMetrics
from repro.server.registry import ModelRegistry
from repro.server.session import DeviceSession
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class ServerConfig:
    """Liveness, backpressure and batching knobs of the session server.

    Attributes:
        host: TCP bind host (ignored when ``unix_path`` is set).
        port: TCP bind port (0 picks a free port; see ``bound_port``).
        unix_path: Bind to a unix socket instead of TCP when set.
        hello_timeout_s: Budget for the peer's first (``hello``) frame.
        idle_timeout_s: Budget between peer frames before the reaper
            aborts the session with ``idle-timeout``.
        session_deadline_s: End-to-end budget per session before the
            reaper aborts it with ``deadline-exceeded``.
        tick_interval_s: Coalescing window: how long a tick waits for
            more ready sessions after the first arrival.
        max_batch: Most sessions one tick may coalesce.
        shards: Fork workers each batch tick splits its sessions across
            (1 = in-process).  Outcomes are bit-identical for any value
            (see :class:`~repro.core.batch.BatchedSessionRunner`); raise
            it to scale ``repro serve`` past one core.
        queue_limit: Bounded ingress queue; a full queue sheds new
            sessions with ``server-overloaded`` + retry-after.
        max_sessions: Most live sessions the server admits at once.
        retry_after_s: The retry hint carried by shed/draining rejections.
        reap_interval_s: Period of the idle/deadline reaper sweep.
        send_timeout_s: Budget for writing one frame to a peer (a wedged
            receive buffer counts as a disconnect, not a stall).
        drain_timeout_s: Default budget for a graceful drain.
        max_frame_bytes: Framing layer's per-frame payload ceiling.
        default_rounds: Probing rounds when a session does not ask for a
            specific count (``None``: the pipeline's ``session_rounds``).
        secure_decrypt_budget: Failed record opens one data-phase channel
            tolerates before the server answers ``channel-closed``
            (``decrypt-budget-exceeded``) and ends the session.
        secure_max_records: Send-nonce space per data-phase channel;
            exhausting it closes the channel with a structured
            ``nonce-exhausted`` reason rather than ever reusing a nonce.
        secure_replay_window: Sliding replay-window size of the server's
            data-phase channels.
        secure_batch_max: Most already-arrived ``secure`` frames one
            data-phase drain pass coalesces into a single batched
            open/echo round; the cap keeps one flooding peer from
            starving the event loop between frame writes.
        journal_dir: Directory of the crash-durability write-ahead
            journal (:mod:`repro.server.journal`).  ``None`` (the
            default) serves purely in memory with the pre-journal
            behaviour: no tokens, no detach-on-disconnect, no recovery.
        journal_fsync: Journal fsync policy: ``"always"``, ``"batch"``
            or ``"off"``; critical records (outcomes, deliveries,
            channel context) are fsync'd immediately in both non-off
            modes.
        journal_batch_records: In ``"batch"`` mode, fsync after this
            many unsynced non-critical appends.
    """

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None
    hello_timeout_s: float = 5.0
    idle_timeout_s: float = 30.0
    session_deadline_s: float = 120.0
    tick_interval_s: float = 0.05
    max_batch: int = 32
    shards: int = 1
    queue_limit: int = 64
    max_sessions: int = 1024
    retry_after_s: float = 1.0
    reap_interval_s: float = 0.5
    send_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    max_frame_bytes: int = MAX_FRAME_BYTES
    default_rounds: Optional[int] = None
    secure_decrypt_budget: int = 8
    secure_max_records: int = 2**20
    secure_replay_window: int = 64
    secure_batch_max: int = 64
    journal_dir: Optional[str] = None
    journal_fsync: str = "batch"
    journal_batch_records: int = 16

    def __post_init__(self) -> None:
        require_positive(self.max_batch, "max_batch")
        require_positive(self.shards, "shards")
        require_positive(self.queue_limit, "queue_limit")
        require_positive(self.max_sessions, "max_sessions")
        require_positive(self.secure_decrypt_budget, "secure_decrypt_budget")
        require_positive(self.secure_max_records, "secure_max_records")
        require_positive(self.secure_batch_max, "secure_batch_max")
        require_positive(self.journal_batch_records, "journal_batch_records")


@dataclass
class DrainReport:
    """What a graceful drain delivered and reclaimed.

    Attributes:
        delivered: Started sessions whose outcome was delivered (or was
            already terminal) during the drain.
        aborted_draining: Unstarted sessions aborted with
            ``server-draining`` (they may retry later).
        leaked: Sessions still registered after the drain -- the chaos
            harness asserts this is zero.
    """

    delivered: int = 0
    aborted_draining: int = 0
    leaked: int = 0


class KeyEstablishmentServer:
    """The asyncio session server around one :class:`ModelRegistry`.

    Args:
        registry: The model registry whose serving pipeline executes the
            coalesced session batches (hot-reload checks run between
            ticks).
        config: Liveness/backpressure/batching knobs.
        on_outcome: Optional observer called with every
            ``(DeviceSession, KeyEstablishmentOutcome)`` a tick produces;
            the chaos harness uses it to check the library-path safety
            invariants on the served path.
        nonce_ledger: Optional global nonce ledger shared by every
            data-phase channel the server opens; the chaos harness
            passes one to prove no ``(key, direction, sequence)`` triple
            is ever sealed or accepted twice across the whole sweep.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServerConfig] = None,
        on_outcome: Optional[
            Callable[[DeviceSession, KeyEstablishmentOutcome], None]
        ] = None,
        nonce_ledger: Optional[NonceLedger] = None,
    ):
        self.registry = registry
        self.config = config if config is not None else ServerConfig()
        self.metrics = ServerMetrics()
        self.on_outcome = on_outcome
        self.nonce_ledger = nonce_ledger
        if self.config.journal_dir is not None and self.nonce_ledger is None:
            # A journaling server always witnesses its own nonces: the
            # ledger's high-water marks are what recovery restores.
            self.nonce_ledger = NonceLedger()
        self.sessions: Dict[str, DeviceSession] = {}
        self.journal: Optional[SessionJournal] = None
        self._resumable: Dict[str, RecoveredSession] = {}
        self._live_tokens: Dict[str, DeviceSession] = {}
        self._pending: Optional[asyncio.Queue] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._reaper_task: Optional[asyncio.Task] = None
        self._draining = False
        self._stopping = False
        self._closed = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------
    def journal_append(self, record: dict, critical: bool = False) -> None:
        """Append one record to the journal, if one is configured."""
        if self.journal is None:
            return
        self.journal.append(record, critical=critical)
        self.metrics.journal_records = self.journal.records_written

    def _recover_from_journal(self) -> None:
        """Open the journal; replay, truncate and restore on a restart.

        Orphans -- sessions the journal admitted but never saw a
        terminal outcome for -- are aborted *into the journal* with
        ``recovered-after-crash``, so a client resuming one receives a
        structured terminal outcome rather than silence, and the
        ``no-orphan-session-after-recovery`` invariant can be checked
        from the journal alone.  Nonce high-water marks are restored as
        ledger floors; channel context records keep their journaled
        epoch, and every resumption derives fresh keys at epoch + 1 --
        so even where a ``batch``-mode fsync lost the newest high-water
        record, the uncertain sequences sit under keys the resumed
        channel no longer uses.
        """
        self.journal = SessionJournal(
            self.config.journal_dir,
            fsync=self.config.journal_fsync,
            batch_records=self.config.journal_batch_records,
        )
        replay = self.journal.recover()
        state = build_recovery_state(replay)
        self._resumable = state.resumable
        for key, high in state.nonce_floors.items():
            self.nonce_ledger.restore_floor(key[0], key[1], high)
        for token in state.orphans:
            session_id = state.orphan_sessions.get(token, "")
            detail = "server crashed while this session was live"
            self.journal_append(
                {
                    "t": "outcome",
                    "token": token,
                    "sid": session_id,
                    "kind": "abort",
                    "reason": ABORT_RECOVERED,
                    "detail": detail,
                },
                critical=True,
            )
            self._resumable[token] = RecoveredSession(
                session_id=session_id,
                kind="abort",
                reason=ABORT_RECOVERED,
                detail=detail,
            )
            self.metrics.record_abort(ABORT_RECOVERED)
        self.metrics.recovered_orphans = len(state.orphans)
        if replay.records:
            self.metrics.recoveries = 1
            self.journal_append(
                {
                    "t": "recovery",
                    "replayed": state.replayed_records,
                    "orphans": len(state.orphans),
                    "torn": replay.torn,
                },
                critical=True,
            )
        self.nonce_ledger.on_seal_advance = self._journal_nonce_floor
        self.metrics.journal_records = self.journal.records_written

    def _journal_nonce_floor(self, key_id: str, direction: int, high: int) -> None:
        """Ledger durability hook: persist a seal high-water advance."""
        self.journal_append(
            {"t": "nonce", "key": key_id, "dir": direction, "high": high}
        )

    async def start(self) -> None:
        """Bind the listening socket and start the tick/reaper tasks.

        When a journal directory is configured, recovery runs first:
        the journal's torn tail is truncated, orphaned sessions are
        aborted with ``recovered-after-crash``, and nonce floors are
        restored -- all before the first connection can be accepted.
        """
        if self.config.journal_dir is not None:
            self._recover_from_journal()
        self._pending = asyncio.Queue(maxsize=self.config.queue_limit)
        if self.config.unix_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.unix_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host, port=self.config.port
            )
        self._tick_task = asyncio.create_task(self._tick_loop())
        self._reaper_task = asyncio.create_task(self._reaper_loop())

    @property
    def bound_port(self) -> Optional[int]:
        """The TCP port actually bound (``None`` on a unix socket)."""
        if self._server is None or self.config.unix_path is not None:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new work."""
        return self._draining

    @property
    def closed(self) -> bool:
        """Whether the server has fully shut down (post-drain)."""
        return self._closed.is_set()

    @property
    def active_sessions(self) -> int:
        """Live (registered, not yet closed) sessions."""
        return len(self.sessions)

    def health(self) -> Dict[str, object]:
        """A JSON-serializable liveness/metrics snapshot."""
        return {
            "active_sessions": self.active_sessions,
            "queue_depth": 0 if self._pending is None else self._pending.qsize(),
            "draining": self._draining,
            "model_generation": self.registry.generation,
            "metrics": self.metrics.snapshot(),
        }

    async def drain(self, timeout: Optional[float] = None) -> DrainReport:
        """Gracefully drain: finish in-flight work, refuse new work, stop.

        Started sessions run to completion and their results are
        delivered; sessions that never started abort with
        ``server-draining`` (a structured signal to retry elsewhere or
        later).  Returns a :class:`DrainReport`; ``leaked`` is the
        number of sessions still registered when the budget ran out and
        must be zero on a healthy drain.
        """
        timeout = self.config.drain_timeout_s if timeout is None else timeout
        self._draining = True
        report = DrainReport()
        # Unstarted sessions cannot make progress once draining: abort
        # them now so their handlers answer and release the connection.
        for session in list(self.sessions.values()):
            if not session.started and not session.terminal:
                self._abort_session(
                    session, SessionEvent.DRAINING, "server is draining"
                )
                report.aborted_draining += 1
        # Detached sessions have no handler to unregister them; end the
        # resumption window now (the journaled outcome stays resumable
        # on the next generation of the server).
        for session in list(self.sessions.values()):
            if session.detached:
                if not session.terminal:
                    self._abort_session(
                        session, SessionEvent.DRAINING, "server is draining"
                    )
                    report.aborted_draining += 1
                self._unregister(session)
        pending_results = [
            session.result
            for session in self.sessions.values()
            if not session.result.done()
        ]
        if pending_results:
            await asyncio.wait(pending_results, timeout=timeout)
        report.delivered = sum(
            1
            for session in self.sessions.values()
            if session.outcome is not None or session.terminal
        )
        # Give handlers one reap interval to flush frames and unregister.
        deadline = asyncio.get_running_loop().time() + max(
            1.0, self.config.reap_interval_s
        )
        while self.sessions and asyncio.get_running_loop().time() < deadline:
            await asyncio.sleep(0.01)
        report.leaked = len(self.sessions)
        self.journal_append(
            {
                "t": "drain",
                "delivered": report.delivered,
                "aborted_draining": report.aborted_draining,
                "leaked": report.leaked,
                "ledger_reuses": (
                    0 if self.nonce_ledger is None else len(self.nonce_ledger.reuses)
                ),
                "metrics": self.metrics.snapshot(),
            },
            critical=True,
        )
        await self._shutdown()
        return report

    async def _shutdown(self) -> None:
        """Stop the loops and close the listener (drain's final step)."""
        self._stopping = True
        if self._tick_task is not None:
            await self._tick_task
        if self._reaper_task is not None:
            self._reaper_task.cancel()
            try:
                await self._reaper_task
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.journal is not None:
            self.journal.close()
        self._closed.set()

    async def stop(self) -> None:
        """Hard-stop without draining (a cooperative crash, for tests).

        Nothing is flushed or delivered: the loops are cancelled, the
        listener closes, and the journal descriptor is *abandoned*
        (closed without a final fsync) -- the closest an in-process test
        can get to SIGKILL while sharing the event loop.  What recovery
        restores afterwards is exactly what the durability contract
        promised, nothing more.
        """
        self._stopping = True
        for task in (self._tick_task, self._reaper_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._tick_task = None
        self._reaper_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.journal is not None:
            self.journal.abandon()
        self._closed.set()

    async def serve_forever(self) -> DrainReport:
        """Serve until SIGTERM/SIGINT, then drain gracefully."""
        await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        return await self.drain()

    # -- admission + per-connection protocol ---------------------------------
    async def _reject(
        self, writer: asyncio.StreamWriter, reason: str, detail: str
    ) -> None:
        """Send a structured rejection (with retry-after) and close."""
        try:
            await asyncio.wait_for(
                write_frame(
                    writer,
                    {
                        "type": "rejected",
                        "reason": reason,
                        "detail": detail,
                        "retry_after_s": self.config.retry_after_s,
                    },
                ),
                timeout=self.config.send_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One device connection, hello through result/abort/close.

        Every exit path unregisters the session and closes the
        transport; nothing a peer sends can raise out of this handler.
        """
        session: Optional[DeviceSession] = None
        try:
            session = await self._admit(reader, writer)
            if session is not None:
                await self._serve_session(session, reader, writer)
        except (OSError, asyncio.TimeoutError, ConnectionError):
            if session is not None and not session.terminal:
                self.metrics.disconnects += 1
                if self.journal is not None and session.resume_token:
                    # Journaled server: keep the session for a resumption
                    # window instead of aborting -- the client reconnects
                    # with its token and is re-attached.
                    session.detached = True
                else:
                    self._abort_session(
                        session, SessionEvent.PEER_DISCONNECTED, "transport error"
                    )
        finally:
            if session is not None and not session.detached:
                self._unregister(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionError):
                pass

    def _unregister(self, session: DeviceSession) -> None:
        """Drop a session from the live tables; keep its verdict resumable.

        On a journaled server a terminal session's verdict (and channel
        context) moves into the in-memory resumable map, mirroring what
        a post-crash recovery would rebuild from the journal -- so a
        client that disconnected mid-data-phase can resume against the
        same process, not only against a restarted one.
        """
        self.sessions.pop(session.session_id, None)
        if not session.resume_token:
            return
        self._live_tokens.pop(session.resume_token, None)
        if self.journal is None or not session.outcome_journaled:
            return
        channel = None
        if session.channel_frame is not None:
            frame = session.channel_frame
            channel = {
                "master": frame["device_key"],
                "nonce": frame["nonce"],
                "fingerprint": frame["fingerprint"],
                "epoch": frame["epoch"],
                "max_records": frame["max_records"],
                "replay_window": frame["replay_window"],
            }
        abort = session.machine.abort_record
        if session.verdict_frame is not None:
            entry = RecoveredSession(
                session_id=session.session_id,
                kind="result",
                frame=session.verdict_frame,
                channel=channel,
                delivered=session.delivered,
            )
        elif abort is not None:
            entry = RecoveredSession(
                session_id=session.session_id,
                kind="abort",
                reason=abort.reason,
                detail=abort.detail,
                delivered=session.delivered,
            )
        else:
            return
        self._resumable[session.resume_token] = entry

    async def _admit(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[DeviceSession]:
        """Run the hello handshake; returns the admitted session or None."""
        try:
            hello = await asyncio.wait_for(
                read_frame(reader, self.config.max_frame_bytes),
                timeout=self.config.hello_timeout_s,
            )
        except asyncio.TimeoutError:
            return None  # silent peer; nothing to reject
        except FrameError:
            self.metrics.malformed_frames += 1
            return None
        if hello is None or hello.get("type") != "hello":
            self.metrics.malformed_frames += 1
            return None
        session_id = str(hello.get("session_id", ""))
        if not session_id:
            self.metrics.malformed_frames += 1
            return None
        resume = str(hello.get("resume") or "")
        if resume and self.journal is not None:
            # Resumption is answered even while draining: it only ever
            # re-delivers an existing verdict, never admits new work.
            return await self._resume(resume, reader, writer)
        if self._draining:
            self.metrics.rejected_draining += 1
            await self._reject(writer, "server-draining", "server is draining")
            return None
        if (
            len(self.sessions) >= self.config.max_sessions
            or self._pending.qsize() >= self.config.queue_limit
        ):
            self.metrics.rejected_overload += 1
            await self._reject(
                writer, "server-overloaded", "session table or ingress queue full"
            )
            return None
        if session_id in self.sessions:
            self.metrics.rejected_duplicate += 1
            await self._reject(
                writer,
                "duplicate-session",
                f"session id {session_id!r} is already live",
            )
            return None
        rounds = hello.get("rounds")
        session = DeviceSession(
            session_id=session_id,
            episode=str(hello.get("episode") or f"serve-{session_id}"),
            rounds=int(rounds) if rounds is not None else None,
            idle_timeout_s=self.config.idle_timeout_s,
            wants_data=bool(hello.get("data", False)),
        )
        session.deadline_s = session.created_s + self.config.session_deadline_s
        self.sessions[session_id] = session
        self.metrics.accepted += 1
        welcome = {
            "type": "welcome",
            "session_id": session_id,
            "idle_timeout_s": self.config.idle_timeout_s,
            "deadline_s": self.config.session_deadline_s,
        }
        if self.journal is not None:
            session.resume_token = secrets.token_hex(16)
            self._live_tokens[session.resume_token] = session
            welcome["resume_token"] = session.resume_token
            self.journal_append(
                {
                    "t": "admit",
                    "token": session.resume_token,
                    "sid": session_id,
                    "episode": session.episode,
                    "rounds": session.rounds,
                    "data": session.wants_data,
                }
            )
            CRASHPOINTS.hit("admit")
        await asyncio.wait_for(
            write_frame(
                writer,
                welcome,
            ),
            timeout=self.config.send_timeout_s,
        )
        return session

    async def _resume(
        self,
        token: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> Optional[DeviceSession]:
        """Answer a reconnecting client presenting a resumption token.

        Three cases, none of which ever recomputes or duplicates a key:

        - the token names a *detached* live session: re-attach this
          connection to it (the pending verdict is delivered when the
          tick settles it, exactly once);
        - the token names a journaled terminal verdict: re-deliver it
          idempotently (a fresh data-phase channel is derived at the
          journaled epoch + 1, so pre-crash records cannot verify);
        - the token is unknown (never journaled, or its admit record
          was lost to a crash before the batched fsync): a structured
          rejection tells the client to establish a fresh session.
        """
        live = self._live_tokens.get(token)
        if live is not None:
            if not live.detached:
                self.metrics.rejected_duplicate += 1
                await self._reject(
                    writer,
                    "duplicate-session",
                    "resumption token is attached to a live connection",
                )
                return None
            live.detached = False
            live.touch()
            self.metrics.resumed_sessions += 1
            if not live.started and not live.terminal:
                # The disconnect may have eaten the peer's ``start``
                # frame; a resumed client only awaits its verdict, so
                # queue the session for the batch tick now.
                live.started = True
                try:
                    self._pending.put_nowait(live)
                except asyncio.QueueFull:
                    self.metrics.rejected_overload += 1
                    self._abort_session(
                        live, SessionEvent.OVERLOADED, "ingress queue full"
                    )
            await asyncio.wait_for(
                write_frame(
                    writer,
                    {
                        "type": "welcome",
                        "session_id": live.session_id,
                        "resumed": True,
                        "resume_token": token,
                        "idle_timeout_s": self.config.idle_timeout_s,
                        "deadline_s": self.config.session_deadline_s,
                    },
                ),
                timeout=self.config.send_timeout_s,
            )
            return live
        recovered = self._resumable.get(token)
        if recovered is None or (
            recovered.kind == "result" and recovered.frame is None
        ):
            await self._reject(
                writer,
                "unknown-resumption-token",
                "no journaled session matches this resumption token",
            )
            return None
        self.metrics.resumed_sessions += 1
        await self._redeliver(token, recovered, reader, writer)
        return None

    async def _redeliver(
        self,
        token: str,
        recovered: RecoveredSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Idempotently re-deliver a journaled terminal verdict.

        The result/abort frame is byte-for-byte the journaled one (same
        ``key_digest``) -- only the ``channel`` description is fresh,
        re-derived at the last journaled epoch + 1 and journaled again,
        so repeated crashes keep bumping the epoch and no pre-crash
        ``(epoch, direction, sequence)`` tuple ever verifies again.
        """
        send_timeout = self.config.send_timeout_s
        await asyncio.wait_for(
            write_frame(
                writer,
                {
                    "type": "welcome",
                    "session_id": recovered.session_id,
                    "resumed": True,
                    "resume_token": token,
                    "idle_timeout_s": self.config.idle_timeout_s,
                    "deadline_s": self.config.session_deadline_s,
                },
            ),
            timeout=send_timeout,
        )
        if recovered.kind == "abort":
            frame = {
                "type": "abort",
                "session_id": recovered.session_id,
                "reason": recovered.reason,
                "detail": recovered.detail,
                "resumed": True,
            }
            await asyncio.wait_for(write_frame(writer, frame), timeout=send_timeout)
            recovered.delivered = True
            self.journal_append({"t": "deliver", "token": token}, critical=True)
            return
        frame = dict(recovered.frame)
        frame["resumed"] = True
        session = DeviceSession(
            session_id=recovered.session_id,
            episode=f"resume-{recovered.session_id}",
            idle_timeout_s=self.config.idle_timeout_s,
            resume_token=token,
        )
        if recovered.channel is not None and frame.get("success"):
            epoch = int(recovered.channel["epoch"]) + 1
            frame["channel"] = self._build_channel(
                session,
                master=bytes.fromhex(recovered.channel["master"]),
                nonce=bytes.fromhex(recovered.channel["nonce"]),
                fingerprint=str(recovered.channel["fingerprint"]),
                epoch=epoch,
            )
            recovered.channel["epoch"] = epoch
        await asyncio.wait_for(write_frame(writer, frame), timeout=send_timeout)
        recovered.delivered = True
        self.journal_append({"t": "deliver", "token": token}, critical=True)
        if session.channel is not None:
            read_task = asyncio.create_task(
                read_frame(reader, self.config.max_frame_bytes)
            )
            await self._data_phase(session, reader, writer, read_task)

    async def _serve_session(
        self,
        session: DeviceSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Drive one admitted session until a terminal frame is sent.

        The handler watches the peer's frames and the session's result
        future *concurrently*: a reaped or tick-completed session is
        answered even while the peer is quiet, and a peer disconnect is
        noticed even while the session waits in the ingress queue.
        """
        read_task = asyncio.create_task(
            read_frame(reader, self.config.max_frame_bytes)
        )
        try:
            while True:
                done, _ = await asyncio.wait(
                    {read_task, session.result},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if session.result in done:
                    await self._send_verdict(session, writer)
                    if session.channel is not None:
                        await self._data_phase(session, reader, writer, read_task)
                    return
                frame_or_error = read_task
                try:
                    frame = frame_or_error.result()
                except FrameError as error:
                    self.metrics.malformed_frames += 1
                    self._abort_session(
                        session, SessionEvent.FRAME_CORRUPT, str(error)
                    )
                    await self._send_verdict(session, writer)
                    return
                if frame is None:  # peer closed the stream
                    if not session.terminal:
                        self.metrics.disconnects += 1
                        if self.journal is not None and session.resume_token:
                            session.detached = True
                        else:
                            self._abort_session(
                                session,
                                SessionEvent.PEER_DISCONNECTED,
                                "peer closed mid-session",
                            )
                    return
                session.touch()
                read_task = asyncio.create_task(
                    read_frame(reader, self.config.max_frame_bytes)
                )
                await self._handle_frame(session, writer, frame)
                if frame.get("type") == "bye":
                    return
        finally:
            read_task.cancel()

    async def _handle_frame(
        self, session: DeviceSession, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        """Dispatch one in-session frame from the peer."""
        kind = frame.get("type")
        if kind == "start":
            if session.started or session.terminal:
                return  # idempotent: a duplicate start is absorbed
            session.started = True
            try:
                self._pending.put_nowait(session)
            except asyncio.QueueFull:
                self.metrics.rejected_overload += 1
                self._abort_session(
                    session, SessionEvent.OVERLOADED, "ingress queue full"
                )
        elif kind == "ping":
            await asyncio.wait_for(
                write_frame(writer, {"type": "pong"}),
                timeout=self.config.send_timeout_s,
            )
        elif kind == "health":
            await asyncio.wait_for(
                write_frame(writer, {"type": "health", **self.health()}),
                timeout=self.config.send_timeout_s,
            )
        elif kind == "status":
            await asyncio.wait_for(
                write_frame(
                    writer,
                    {
                        "type": "status",
                        "session_id": session.session_id,
                        "metrics": self.metrics.snapshot(),
                    },
                ),
                timeout=self.config.send_timeout_s,
            )
        elif kind == "bye":
            return
        elif kind == "secure":
            # A record arrived before any channel exists: the peer is
            # trying to use a key that was never established.
            self.metrics.malformed_frames += 1
            self._abort_session(
                session,
                SessionEvent.SECURE_FAILURE,
                "secure record before establishment completed",
            )
        else:
            self.metrics.malformed_frames += 1
            self._abort_session(
                session,
                SessionEvent.MALFORMED,
                f"unknown frame type {kind!r}",
            )

    async def _send_verdict(
        self, session: DeviceSession, writer: asyncio.StreamWriter
    ) -> None:
        """Send the terminal result/abort frame for a resolved session."""
        verdict = session.result.result()
        if isinstance(verdict, KeyEstablishmentOutcome):
            if session.verdict_frame is not None:
                frame = dict(session.verdict_frame)  # journaled by _settle
            else:
                frame = self._result_frame(session, verdict)
            if verdict.success and session.wants_data:
                if session.channel_frame is not None:
                    # Re-attach after the channel was already opened:
                    # never re-derive the same epoch -- bump it so no
                    # pre-disconnect record can verify and no nonce is
                    # ever sealed twice under the same keys.
                    prior = session.channel_frame
                    frame["channel"] = self._build_channel(
                        session,
                        master=bytes.fromhex(prior["device_key"]),
                        nonce=bytes.fromhex(prior["nonce"]),
                        fingerprint=str(prior["fingerprint"]),
                        epoch=int(prior["epoch"]) + 1,
                    )
                else:
                    frame["channel"] = self._open_channel(session, verdict)
        else:  # SessionAbort record
            frame = {
                "type": "abort",
                "session_id": session.session_id,
                "reason": verdict.reason,
                "detail": verdict.detail,
            }
            if verdict.reason in ("server-overloaded", "server-draining"):
                frame["retry_after_s"] = self.config.retry_after_s
        CRASHPOINTS.hit("deliver")
        try:
            await asyncio.wait_for(
                write_frame(writer, frame), timeout=self.config.send_timeout_s
            )
            session.delivered = True
            if session.resume_token:
                self.journal_append(
                    {"t": "deliver", "token": session.resume_token}, critical=True
                )
        except (OSError, asyncio.TimeoutError, ConnectionError):
            self.metrics.disconnects += 1

    @staticmethod
    def _result_frame(
        session: DeviceSession, outcome: KeyEstablishmentOutcome
    ) -> dict:
        """The wire form of one establishment outcome.

        The key itself never crosses this channel -- the device derives
        it from the probing exchange; the server sends a digest so both
        ends can cross-check which key they hold.
        """
        digest = None
        if outcome.final_key is not None:
            digest = hashlib.sha256(outcome.final_key).hexdigest()[:32]
        return {
            "type": "result",
            "session_id": session.session_id,
            "success": outcome.success,
            "failure_reason": outcome.failure_reason,
            "degraded_mode": outcome.degraded_mode,
            "ood_windows": outcome.ood_windows,
            "agreed_bits": outcome.session.agreed_bits,
            "key_generation_rate_bps": outcome.key_generation_rate_bps,
            "key_digest": digest,
            "final_state": session.machine.state.value,
        }

    # -- encrypted data phase ------------------------------------------------
    def _open_channel(
        self, session: DeviceSession, outcome: KeyEstablishmentOutcome
    ) -> dict:
        """Build the responder channel; returns its wire description.

        ``device_key`` hands the device its side of the reconciled
        secret in the clear -- a *simulation affordance*: on real
        hardware the device derives exactly these bytes from the probing
        exchange and nothing crosses the wire, but here the simulated
        device is a separate process with no access to the pipeline's
        internal session state.  Everything else in the frame (nonce,
        ids, fingerprint, epoch) is the public context both ends bind
        into the KDF.
        """
        result = outcome.session
        return self._build_channel(
            session,
            master=master_secret_from_result(result),
            nonce=result.session_nonce,
            fingerprint=self.registry.pipeline.fingerprint(),
            epoch=0,
        )

    def _build_channel(
        self,
        session: DeviceSession,
        master: bytes,
        nonce: bytes,
        fingerprint: str,
        epoch: int,
    ) -> dict:
        """Derive one epoch's responder channel and journal its context.

        The journal record carries everything a restarted server needs
        to re-derive the *next* epoch's keys for a resuming client --
        including the master secret itself (see ``docs/SECURITY.md``:
        the journal holds key material and must be protected like one).
        """
        context = ChannelContext(
            session_nonce=nonce,
            initiator_id=session.session_id,
            responder_id="server",
            pipeline_fingerprint=fingerprint,
            epoch=epoch,
        )
        session.channel = SecureChannel(
            derive_channel_keys(master, context),
            role="responder",
            max_sequence=self.config.secure_max_records,
            replay_window=self.config.secure_replay_window,
            ledger=self.nonce_ledger,
        )
        self.metrics.channels_opened += 1
        frame = {
            "device_key": master.hex(),
            "nonce": nonce.hex(),
            "initiator_id": session.session_id,
            "responder_id": "server",
            "fingerprint": fingerprint,
            "epoch": epoch,
            "max_records": self.config.secure_max_records,
            "replay_window": self.config.secure_replay_window,
        }
        session.channel_frame = frame
        if session.resume_token:
            self.journal_append(
                {
                    "t": "channel",
                    "token": session.resume_token,
                    "sid": session.session_id,
                    "master": master.hex(),
                    "nonce": nonce.hex(),
                    "fingerprint": fingerprint,
                    "epoch": epoch,
                    "max_records": self.config.secure_max_records,
                    "replay_window": self.config.secure_replay_window,
                },
                critical=True,
            )
        return frame

    async def _send_channel_closed(
        self, session: DeviceSession, writer: asyncio.StreamWriter, reason: str
    ) -> None:
        """Answer a structured ``channel-closed`` frame (counted)."""
        self.metrics.record_channel_close(reason)
        try:
            await asyncio.wait_for(
                write_frame(
                    writer,
                    {
                        "type": "channel-closed",
                        "session_id": session.session_id,
                        "reason": reason,
                    },
                ),
                timeout=self.config.send_timeout_s,
            )
        except (OSError, asyncio.TimeoutError, ConnectionError):
            self.metrics.disconnects += 1

    async def _data_phase(
        self,
        session: DeviceSession,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        read_task: "asyncio.Task",
    ) -> None:
        """Serve one peer's encrypted echo phase until bye/close/budget.

        Every well-formed record is opened under the session's channel:
        successes are echoed back sealed under the server's send keys,
        failures answer a ``secure-error`` carrying the failure slug and
        count toward the decrypt budget.  The phase ends with a
        structured ``channel-closed`` frame when the budget or the send
        nonce space is exhausted -- never a silent close, never a reused
        nonce, never released plaintext.

        The phase drains in batches: after one ``secure`` frame arrives,
        every consecutive ``secure`` frame *already* sitting in the
        transport (up to ``secure_batch_max``) joins the same pass, and
        the whole burst goes through :meth:`SecureChannel.open_records`
        and :meth:`SecureChannel.seal_records` -- the channel's MAC keys
        and keystream midstates are looked up once per burst instead of
        once per record.  Replies keep per-record order, and the budget
        and nonce-exhaustion semantics are exactly the one-record-at-a-
        time ones: ``open_records`` stops at the budget-crossing record
        and a mid-burst ``NonceExhaustedError`` carries the echoes
        sealed before the bound.
        """
        channel = session.channel
        config = self.config
        failures = 0
        read = read_task
        pending: Optional[dict] = None  # drained non-secure frame, held in order
        try:
            while True:
                if pending is not None:
                    frame = pending
                    pending = None
                else:
                    try:
                        frame = await asyncio.wait_for(
                            read, timeout=config.idle_timeout_s
                        )
                    except asyncio.TimeoutError:
                        return
                    except FrameError:
                        self.metrics.malformed_frames += 1
                        return
                    if frame is None:  # peer closed after its verdict: legal
                        return
                    session.touch()
                    read = asyncio.create_task(
                        read_frame(reader, config.max_frame_bytes)
                    )
                kind = frame.get("type")
                if kind == "bye":
                    return
                if kind == "ping":
                    await asyncio.wait_for(
                        write_frame(writer, {"type": "pong"}),
                        timeout=config.send_timeout_s,
                    )
                    continue
                if kind != "secure":
                    self.metrics.malformed_frames += 1
                    await self._send_channel_closed(
                        session, writer, "protocol-error"
                    )
                    return
                # Batched drain: pull every consecutive secure frame that
                # has already arrived into this pass.  A completed read
                # whose result is EOF or a framing error is left on
                # ``read`` for the outer loop (awaiting a done task
                # replays its result); a non-secure frame is held in
                # ``pending`` so it is processed after this burst's
                # replies, preserving order.
                frames = [frame]
                while len(frames) < config.secure_batch_max:
                    done, _ = await asyncio.wait({read}, timeout=0)
                    if not done:
                        break
                    try:
                        nxt = read.result()
                    except (FrameError, OSError, ConnectionError):
                        break
                    if nxt is None:
                        break
                    session.touch()
                    read = asyncio.create_task(
                        read_frame(reader, config.max_frame_bytes)
                    )
                    if nxt.get("type") == "secure":
                        frames.append(nxt)
                    else:
                        pending = nxt
                        break
                blobs = []
                for secure_frame in frames:
                    try:
                        blob = bytes.fromhex(str(secure_frame.get("record", "")))
                    except ValueError:
                        blob = b""  # not even hex: opens as record-truncated
                    blobs.append(blob)
                self.metrics.secure_records += len(blobs)
                self.metrics.secure_batches += 1
                if len(blobs) > self.metrics.secure_batch_records_max:
                    self.metrics.secure_batch_records_max = len(blobs)
                outcomes = channel.open_records(
                    blobs,
                    max_failures=config.secure_decrypt_budget - failures,
                )
                ok_plaintexts = [o.plaintext for o in outcomes if o.ok]
                try:
                    echoes = channel.seal_records(ok_plaintexts)
                except NonceExhaustedError as exc:
                    echoes = exc.sealed
                echo_iter = iter(echoes)
                for outcome in outcomes:
                    if outcome.ok:
                        echo = next(echo_iter, None)
                        if echo is None:  # nonce space ran out at this record
                            await self._send_channel_closed(
                                session, writer, "nonce-exhausted"
                            )
                            return
                        self.metrics.secure_echoed += 1
                        await asyncio.wait_for(
                            write_frame(
                                writer,
                                {
                                    "type": "secure",
                                    "session_id": session.session_id,
                                    "record": echo.hex(),
                                },
                            ),
                            timeout=config.send_timeout_s,
                        )
                    else:
                        failures += 1
                        self.metrics.record_open_failure(outcome.failure)
                        await asyncio.wait_for(
                            write_frame(
                                writer,
                                {
                                    "type": "secure-error",
                                    "session_id": session.session_id,
                                    "failure": outcome.failure,
                                },
                            ),
                            timeout=config.send_timeout_s,
                        )
                        if failures >= config.secure_decrypt_budget:
                            await self._send_channel_closed(
                                session, writer, "decrypt-budget-exceeded"
                            )
                            return
        finally:
            read.cancel()

    # -- supervision ---------------------------------------------------------
    def _abort_session(
        self, session: DeviceSession, event: SessionEvent, detail: str
    ) -> None:
        """Abort one session and account for it; never raises."""
        record = session.abort(event, detail)
        if record is not None:
            self.metrics.record_abort(record.reason)
        self._journal_outcome(session)

    def _journal_outcome(self, session: DeviceSession) -> None:
        """Witness a session's terminal verdict in the journal, once."""
        if (
            self.journal is None
            or not session.resume_token
            or session.outcome_journaled
        ):
            return
        if session.verdict_frame is not None:
            record = {
                "t": "outcome",
                "token": session.resume_token,
                "sid": session.session_id,
                "kind": "result",
                "frame": session.verdict_frame,
            }
        else:
            abort = session.machine.abort_record
            if abort is None:
                return
            record = {
                "t": "outcome",
                "token": session.resume_token,
                "sid": session.session_id,
                "kind": "abort",
                "reason": abort.reason,
                "detail": abort.detail,
            }
        session.outcome_journaled = True
        self.journal_append(record, critical=True)

    async def _reaper_loop(self) -> None:
        """Periodically reclaim idle and deadline-expired sessions.

        Detached sessions (journaled server, peer gone, resumption
        window open) have no connection handler left to unregister
        them, so the reaper also retires any detached session that has
        gone terminal: its verdict moves to the resumable map and the
        session table entry is reclaimed -- no leak, and a late resume
        still finds the journaled outcome.
        """
        while True:
            await asyncio.sleep(self.config.reap_interval_s)
            now = None
            for session in list(self.sessions.values()):
                if session.detached and (
                    session.terminal or session.result.done()
                ):
                    if session.result.done():
                        self._journal_outcome(session)
                    self._unregister(session)
                    continue
                if session.terminal or session.result.done():
                    continue
                if session.deadline_expired(now):
                    self.metrics.reaped_deadline += 1
                    self._abort_session(
                        session,
                        SessionEvent.DEADLINE_EXPIRED,
                        f"exceeded {self.config.session_deadline_s}s deadline",
                    )
                elif session.idle_expired(now):
                    self.metrics.reaped_idle += 1
                    self._abort_session(
                        session,
                        SessionEvent.IDLE_EXPIRED,
                        f"no frame for {self.config.idle_timeout_s}s",
                    )

    async def _tick_loop(self) -> None:
        """Coalesce ready sessions and run them through batch ticks."""
        while True:
            if self._stopping and (self._pending is None or self._pending.empty()):
                return
            try:
                first = await asyncio.wait_for(self._pending.get(), timeout=0.1)
            except asyncio.TimeoutError:
                continue
            # Coalescing window: let concurrent arrivals join this tick.
            await asyncio.sleep(self.config.tick_interval_s)
            batch = [first]
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._pending.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._run_tick(batch)

    async def _run_tick(self, batch: List[DeviceSession]) -> None:
        """Execute one coalesced batch; failures stay per-session.

        The CPU-bound establishment runs in the default executor so the
        event loop keeps answering pings, admitting sessions and reaping
        the dead while a tick computes.
        """
        live = [s for s in batch if not s.terminal and not s.result.done()]
        if not live:
            return
        CRASHPOINTS.hit("tick")
        if self.registry.maybe_reload():
            self.metrics.model_reloads += 1
        elif self.registry.last_error is not None:
            self.metrics.model_reload_failures = self.registry.reload_failures
        self.metrics.ticks += 1
        self.metrics.tick_sessions_max = max(
            self.metrics.tick_sessions_max, len(live)
        )
        pipeline = self.registry.pipeline
        loop = asyncio.get_running_loop()
        by_rounds: Dict[Optional[int], List[DeviceSession]] = {}
        for session in live:
            by_rounds.setdefault(session.rounds, []).append(session)
        for rounds, sessions in by_rounds.items():
            effective = rounds if rounds is not None else self.config.default_rounds
            labels = [s.episode for s in sessions]
            try:
                runner = BatchedSessionRunner(
                    pipeline, n_rounds=effective, shards=self.config.shards
                )
                report = await loop.run_in_executor(
                    None, runner.run_episodes, labels
                )
                if report.shards > 1:
                    self.metrics.sharded_batches += 1
                    self.metrics.shards_used_max = max(
                        self.metrics.shards_used_max, report.shards
                    )
                verdicts: List[object] = list(report.outcomes)
            except Exception:  # noqa: BLE001 - isolate, then retry per session
                self.metrics.batch_fallbacks += 1
                verdicts = []
                for session in sessions:
                    try:
                        outcome = await loop.run_in_executor(
                            None,
                            lambda s=session: pipeline.establish_key(
                                episode=s.episode, n_rounds=effective
                            ),
                        )
                        verdicts.append(outcome)
                    except Exception as error:  # noqa: BLE001 - isolate the session
                        verdicts.append(error)
            for session, verdict in zip(sessions, verdicts):
                self._settle(session, verdict)

    def _settle(self, session: DeviceSession, verdict: object) -> None:
        """Deliver one tick verdict to one session; never raises."""
        if isinstance(verdict, KeyEstablishmentOutcome):
            session.complete(verdict)
            if session.outcome is verdict:
                if self.journal is not None and session.resume_token:
                    session.verdict_frame = self._result_frame(session, verdict)
                    self._journal_outcome(session)
                self.metrics.completed += 1
                if verdict.success:
                    self.metrics.succeeded += 1
                else:
                    self.metrics.failed += 1
                if verdict.degraded_mode is not None:
                    self.metrics.degraded_sessions += 1
                if self.on_outcome is not None:
                    try:
                        self.on_outcome(session, verdict)
                    except Exception:  # noqa: BLE001 - observers cannot break serving
                        pass
        else:
            self._abort_session(
                session,
                SessionEvent.INTERNAL_ERROR,
                f"{type(verdict).__name__}: {verdict}",
            )
