"""Append-only checksummed write-ahead journal for the session server.

The server keeps its safety-critical state -- admitted sessions,
terminal outcomes, delivered results, data-phase channel context and the
nonce ledger's per-key high-water marks -- purely in memory; this module
makes that state survive a crash.  Every witnessed event is one
*record*: a length-prefixed JSON body guarded by a SHA-256 checksum
prefix, appended to a single journal file whose tail may be torn by a
crash mid-write.  Recovery replays the file, stops at the first record
that is truncated or fails its checksum, and atomically truncates the
tail back to the last fully-checksummed record (the same
tempfile + ``os.fsync`` + ``os.replace`` discipline
:func:`repro.utils.artifact.save_artifact` uses).

Record kinds (the ``"t"`` field):

``admit``    session admitted: id, resumption token, episode, rounds.
``outcome``  terminal verdict for a token: a result frame (without the
             channel object) or an abort reason/detail pair.
``channel``  data-phase channel context for a token: master secret,
             session nonce, fingerprint and epoch.  Resuming after a
             crash re-derives keys at ``epoch + 1`` so no pre-crash
             ``(epoch, direction, sequence)`` tuple can ever verify
             again.
``deliver``  the terminal frame for a token was written to the peer.
``nonce``    a ``(key_id, direction)`` seal high-water mark advanced.
``recovery`` a recovery pass completed (replayed/orphaned counts).
``drain``    a graceful drain completed (delivered/leaked + metrics).
``violation`` an invariant violation observed in-process (the restart
             chaos child uses the journal as its witness channel).

Durability contract: records are written to the OS immediately
(unbuffered ``os.write``), but ``fsync`` is batched -- every
``batch_records`` appends in ``"batch"`` mode, every append in
``"always"`` mode, never in ``"off"`` mode.  *Critical* records
(terminal outcomes, deliveries, channel context, recovery markers)
force an fsync in both ``"batch"`` and ``"always"`` modes, so the
recovery-facing promises hold even when admission and nonce high-water
records lag; recovery compensates for the lag by aborting orphans and
bumping the channel epoch floor.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.server.crashpoints import CRASHPOINTS

#: File magic identifying a session journal (versioned).
JOURNAL_MAGIC = b"VKJRNL01"

#: Checksum prefix length guarding each record body.
CHECKSUM_BYTES = 8

#: Per-record header: 4-byte big-endian body length + checksum prefix.
HEADER_BYTES = 4 + CHECKSUM_BYTES

#: Sanity ceiling on one record's JSON body.
MAX_RECORD_BYTES = 1 << 20

#: Journal file name inside a journal directory.
JOURNAL_FILENAME = "journal.wal"

#: Valid fsync policies.
FSYNC_POLICIES = ("always", "batch", "off")


def encode_record(record: dict) -> bytes:
    """One record's wire form: ``len(4B BE) | sha256(body)[:8] | body``."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
    if len(body) > MAX_RECORD_BYTES:
        raise ValueError(
            f"journal record of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte ceiling"
        )
    checksum = hashlib.sha256(body).digest()[:CHECKSUM_BYTES]
    return len(body).to_bytes(4, "big") + checksum + body


@dataclass
class JournalReplay:
    """What a replay of one journal file found.

    Attributes:
        records: Every fully-checksummed record, in append order.
        valid_bytes: File offset of the end of the last valid record
            (the length recovery truncates the file to).
        total_bytes: The file's size when replayed.
        torn: Why the scan stopped early (``None`` when the file was
            clean): ``"magic"``, ``"truncated-header"``,
            ``"truncated-body"``, ``"checksum-mismatch"``,
            ``"oversized-record"`` or ``"undecodable-body"``.
    """

    records: List[dict] = field(default_factory=list)
    valid_bytes: int = 0
    total_bytes: int = 0
    torn: Optional[str] = None

    @property
    def clean(self) -> bool:
        """Whether the whole file replayed without a torn tail."""
        return self.torn is None


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay a journal file; stops at the first torn/corrupt record.

    A missing or empty file replays to zero records.  Anything invalid
    -- a bad magic, a truncated header or body, a checksum mismatch, an
    implausible length, an undecodable body -- ends the scan *there*:
    every record before the damage is returned, nothing after it is
    trusted (a mid-file corruption invalidates the tail, which is the
    conservative reading of an append-only log).
    """
    path = Path(path)
    replay = JournalReplay()
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return replay
    replay.total_bytes = len(data)
    if not data:
        return replay
    if not data.startswith(JOURNAL_MAGIC):
        replay.torn = "magic"
        return replay
    offset = len(JOURNAL_MAGIC)
    replay.valid_bytes = offset
    while offset < len(data):
        header = data[offset : offset + HEADER_BYTES]
        if len(header) < HEADER_BYTES:
            replay.torn = "truncated-header"
            return replay
        length = int.from_bytes(header[:4], "big")
        if length > MAX_RECORD_BYTES:
            replay.torn = "oversized-record"
            return replay
        body = data[offset + HEADER_BYTES : offset + HEADER_BYTES + length]
        if len(body) < length:
            replay.torn = "truncated-body"
            return replay
        if hashlib.sha256(body).digest()[:CHECKSUM_BYTES] != header[4:]:
            replay.torn = "checksum-mismatch"
            return replay
        try:
            record = json.loads(body.decode())
        except (UnicodeDecodeError, json.JSONDecodeError):
            replay.torn = "undecodable-body"
            return replay
        replay.records.append(record)
        offset += HEADER_BYTES + length
        replay.valid_bytes = offset
    return replay


def recover_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay and, if the tail is torn, atomically truncate it away.

    The valid prefix is rewritten through a tempfile in the same
    directory, fsync'd, and swapped in with ``os.replace`` -- a crash
    *during recovery* leaves either the damaged original or the clean
    prefix, never a half-truncated file.  Returns the replay of the
    (now clean) prefix.
    """
    path = Path(path)
    replay = replay_journal(path)
    if replay.clean or replay.total_bytes == 0:
        return replay
    try:
        data = path.read_bytes()[: replay.valid_bytes]
    except FileNotFoundError:  # pragma: no cover - raced away
        return replay
    if replay.torn == "magic":
        data = b""  # nothing before the magic is trustworthy
        replay.valid_bytes = 0
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return replay


class SessionJournal:
    """The server's append handle onto one journal directory.

    Args:
        directory: Directory holding the journal file (created if
            missing).
        fsync: ``"always"``, ``"batch"`` (default) or ``"off"``; see the
            module docstring for the durability contract.
        batch_records: In ``"batch"`` mode, fsync after this many
            unsynced non-critical appends.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        fsync: str = "batch",
        batch_records: int = 16,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; valid: {FSYNC_POLICIES}"
            )
        if batch_records < 1:
            raise ValueError("batch_records must be >= 1")
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME
        self.fsync = fsync
        self.batch_records = batch_records
        self.records_written = 0
        self._fd: Optional[int] = None
        self._unsynced = 0

    @property
    def open(self) -> bool:
        """Whether the journal is accepting appends."""
        return self._fd is not None

    def recover(self) -> JournalReplay:
        """Truncate any torn tail, open for append, return the replay."""
        self.directory.mkdir(parents=True, exist_ok=True)
        replay = recover_journal(self.path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
        )
        if replay.total_bytes == 0 or replay.valid_bytes == 0:
            # Fresh (or fully-invalid, now empty) file: stamp the magic.
            os.ftruncate(self._fd, 0)
            os.write(self._fd, JOURNAL_MAGIC)
            os.fsync(self._fd)
        return replay

    def append(self, record: dict, critical: bool = False) -> None:
        """Append one record; critical records are fsync'd immediately.

        The write itself always reaches the OS before returning
        (unbuffered ``os.write``); only the fsync is batched.  A no-op
        once the journal is closed or abandoned, so late observers (a
        metrics scrape racing a drain) cannot raise.
        """
        if self._fd is None:
            return
        blob = encode_record(record)
        if CRASHPOINTS.pending("seal"):
            # A 'seal' crash dies mid-append: half the record reaches
            # the file, leaving the torn tail recovery must truncate.
            os.write(self._fd, blob[: max(1, len(blob) // 2)])
            CRASHPOINTS.hit("seal")
            return  # only reachable under a non-killing test action
        CRASHPOINTS.hit("seal")  # count this append toward the countdown
        os.write(self._fd, blob)
        self.records_written += 1
        if self.fsync == "off":
            return
        if critical or self.fsync == "always":
            os.fsync(self._fd)
            self._unsynced = 0
            return
        self._unsynced += 1
        if self._unsynced >= self.batch_records:
            os.fsync(self._fd)
            self._unsynced = 0

    def flush(self) -> None:
        """Fsync any batched appends."""
        if self._fd is not None and self.fsync != "off":
            os.fsync(self._fd)
            self._unsynced = 0

    def close(self) -> None:
        """Flush and release the file descriptor (idempotent)."""
        if self._fd is None:
            return
        if self.fsync != "off":
            os.fsync(self._fd)
        os.close(self._fd)
        self._fd = None

    def abandon(self) -> None:
        """Release the descriptor *without* flushing (crash simulation)."""
        if self._fd is None:
            return
        os.close(self._fd)
        self._fd = None


@dataclass
class RecoveredSession:
    """One resumable terminal verdict reconstructed from the journal.

    Attributes:
        session_id: The session id the token was minted for.
        kind: ``"result"`` or ``"abort"``.
        frame: The journaled terminal wire frame (without any channel
            object) for ``"result"`` verdicts.
        reason: Abort taxonomy slug for ``"abort"`` verdicts.
        detail: Abort detail for ``"abort"`` verdicts.
        channel: The latest journaled channel context for the token
            (master/nonce/fingerprint/epoch), when a data phase ran.
        delivered: Whether a ``deliver`` record was journaled for the
            token (redelivery is idempotent either way).
    """

    session_id: str
    kind: str
    frame: Optional[dict] = None
    reason: str = ""
    detail: str = ""
    channel: Optional[dict] = None
    delivered: bool = False


@dataclass
class RecoveryState:
    """Everything a restarted server restores from one journal replay.

    Attributes:
        resumable: Terminal verdicts by resumption token.
        orphans: Tokens admitted but never terminal -- the sessions a
            crash interrupted mid-flight; recovery aborts each with
            ``recovered-after-crash``.
        orphan_sessions: ``token -> session_id`` for the orphans.
        nonce_floors: Highest journaled seal sequence per
            ``(key_id, direction)``; restored into the server's ledger
            so a re-issued sequence is witnessed as a reuse.
        replayed_records: Records the replay yielded.
        recoveries: Recovery markers already present in the journal
            (i.e. how many crashes this journal has survived before).
    """

    resumable: Dict[str, RecoveredSession] = field(default_factory=dict)
    orphans: List[str] = field(default_factory=list)
    orphan_sessions: Dict[str, str] = field(default_factory=dict)
    nonce_floors: Dict[tuple, int] = field(default_factory=dict)
    replayed_records: int = 0
    recoveries: int = 0


def build_recovery_state(replay: JournalReplay) -> RecoveryState:
    """Fold one replay's records into the server's recovery state."""
    state = RecoveryState(replayed_records=len(replay.records))
    admitted: Dict[str, str] = {}
    for record in replay.records:
        kind = record.get("t")
        token = str(record.get("token", ""))
        if kind == "admit":
            admitted[token] = str(record.get("sid", ""))
        elif kind == "outcome":
            recovered = state.resumable.get(token)
            entry = RecoveredSession(
                session_id=admitted.get(token, str(record.get("sid", ""))),
                kind=str(record.get("kind", "abort")),
                frame=record.get("frame"),
                reason=str(record.get("reason", "")),
                detail=str(record.get("detail", "")),
                channel=recovered.channel if recovered else None,
                delivered=recovered.delivered if recovered else False,
            )
            state.resumable[token] = entry
        elif kind == "channel":
            recovered = state.resumable.get(token)
            if recovered is None:
                recovered = state.resumable[token] = RecoveredSession(
                    session_id=admitted.get(token, ""), kind="result"
                )
            recovered.channel = {
                "master": str(record.get("master", "")),
                "nonce": str(record.get("nonce", "")),
                "fingerprint": str(record.get("fingerprint", "")),
                "epoch": int(record.get("epoch", 0)),
                "max_records": int(record.get("max_records", 2**20)),
                "replay_window": int(record.get("replay_window", 64)),
            }
        elif kind == "deliver":
            recovered = state.resumable.get(token)
            if recovered is not None:
                recovered.delivered = True
        elif kind == "nonce":
            key = (str(record.get("key", "")), int(record.get("dir", 0)))
            high = int(record.get("high", 0))
            if high > state.nonce_floors.get(key, -1):
                state.nonce_floors[key] = high
        elif kind == "recovery":
            state.recoveries += 1
    for token, session_id in admitted.items():
        entry = state.resumable.get(token)
        if entry is None:
            state.orphans.append(token)
            state.orphan_sessions[token] = session_id
        elif not entry.session_id:
            entry.session_id = session_id
    return state
