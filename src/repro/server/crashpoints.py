"""Seeded crash-point fault injection for the kill/restart chaos sweep.

A *crashpoint* is a named place in the server's hot path where the
process may be made to die abruptly -- the moral equivalent of a power
cut at the worst possible instant.  The restart chaos harness
(:func:`repro.faults.chaos.run_restart_chaos`) arms one site with a
seeded countdown in a forked server child; when the countdown reaches
zero the default action SIGKILLs the process mid-operation, and the
harness then restarts a fresh server against the same journal and
machine-checks that recovery restored every durability invariant.

The four sites bracket the journal's durability contract:

``admit``
    After the admission record is journaled, before the welcome frame is
    written -- the client holds a token the server may not remember.
``tick``
    Before a coalesced batch tick computes -- started sessions die
    mid-flight and must be aborted as ``recovered-after-crash``.
``deliver``
    After the terminal outcome is journaled, before the verdict frame is
    written -- recovery must redeliver idempotently, never recompute.
``seal``
    Mid-append inside the journal itself: the record is half-written
    when the process dies, leaving a torn tail recovery must truncate.

Hits on unarmed sites cost one dict lookup, so the production path calls
:meth:`CrashpointRegistry.hit` unconditionally.
"""

from __future__ import annotations

import os
import signal
from typing import Callable, Dict, Mapping, Optional

#: The closed set of crashpoint sites the server exposes.
SITES = ("admit", "tick", "deliver", "seal")


class CrashpointRegistry:
    """Countdown-armed crash sites; the default action is SIGKILL.

    Attributes:
        action: Called with the site name when a countdown fires.  The
            default sends ``SIGKILL`` to the current process (and never
            returns); tests may install a recording stub instead.
        fired: The site whose countdown fired, if any (only observable
            when ``action`` returns, i.e. under a test stub).
    """

    def __init__(self) -> None:
        self._countdown: Dict[str, int] = {}
        self.action: Callable[[str], None] = self._sigkill_self
        self.fired: Optional[str] = None

    @staticmethod
    def _sigkill_self(site: str) -> None:  # pragma: no cover - kills the process
        os.kill(os.getpid(), signal.SIGKILL)

    def arm(self, site: str, after: int) -> None:
        """Arm ``site`` to fire on its ``after``-th hit (1-based)."""
        if site not in SITES:
            raise ValueError(f"unknown crashpoint site {site!r}; valid: {SITES}")
        if after < 1:
            raise ValueError(f"crashpoint countdown must be >= 1, got {after}")
        self._countdown[site] = int(after)

    def arm_plan(self, plan: Mapping[str, int]) -> None:
        """Arm every ``site -> after`` entry of a crash plan."""
        for site, after in plan.items():
            self.arm(site, after)

    def reset(self) -> None:
        """Disarm every site and clear the fired marker."""
        self._countdown.clear()
        self.fired = None

    @property
    def armed(self) -> Dict[str, int]:
        """A copy of the live ``site -> remaining hits`` countdowns."""
        return dict(self._countdown)

    def pending(self, site: str) -> bool:
        """Whether the *next* hit on ``site`` will fire its action.

        The journal uses this to write only half of the in-flight record
        before firing, so a ``seal`` crash leaves a genuinely torn tail.
        """
        return self._countdown.get(site) == 1

    def hit(self, site: str) -> None:
        """Register one pass through ``site``; fires when armed and due."""
        remaining = self._countdown.get(site)
        if remaining is None:
            return
        if remaining <= 1:
            del self._countdown[site]
            self.fired = site
            self.action(site)
        else:
            self._countdown[site] = remaining - 1


#: The process-wide registry the server's hot-path sites call into.
CRASHPOINTS = CrashpointRegistry()
