"""Length-prefixed JSON framing for the key-establishment server.

The session server talks to devices over a byte stream (TCP or a unix
socket); frames give that stream message boundaries.  The format is
deliberately minimal -- a 4-byte big-endian payload length followed by a
UTF-8 JSON object -- because the hard part is not the encoding but the
failure taxonomy: a peer can stall mid-frame (slow loris), lie about the
length (memory exhaustion), or send bytes that are not JSON (corruption
or malice).  Every one of those ends in a typed :class:`FrameError`
carrying a closed ``reason`` slug, so the server can map transport
damage onto the session state machine's abort taxonomy instead of
leaking ``json``/``struct`` internals.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Optional

from repro.exceptions import ReproError

#: Default ceiling on one frame's payload (covers every legitimate
#: protocol message with two orders of magnitude to spare).
MAX_FRAME_BYTES = 64 * 1024

#: Frame-failure reason slugs (the complete set).
FRAME_OVERSIZED = "frame-oversized"
FRAME_TRUNCATED = "frame-truncated"
FRAME_CORRUPT = "frame-corrupt"

_HEADER = struct.Struct(">I")


class FrameError(ReproError):
    """A wire frame could not be read or decoded.

    Attributes:
        reason: One of :data:`FRAME_OVERSIZED` (declared length exceeds
            the limit), :data:`FRAME_TRUNCATED` (the stream ended
            mid-frame) or :data:`FRAME_CORRUPT` (the payload is not a
            JSON object).
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def encode_frame(payload: dict) -> bytes:
    """Serialize one protocol message to its on-wire bytes."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Decode one frame payload; raises :class:`FrameError` on damage."""
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(FRAME_CORRUPT, f"undecodable frame payload: {error}")
    if not isinstance(message, dict):
        raise FrameError(
            FRAME_CORRUPT, f"frame payload is {type(message).__name__}, not an object"
        )
    return message


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[dict]:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameError` when the peer declares an oversized
    length, disconnects mid-frame, or delivers a payload that is not a
    JSON object.  Liveness (a peer that simply stops sending) is the
    caller's concern: wrap the call in :func:`asyncio.wait_for`.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between frames
        raise FrameError(
            FRAME_TRUNCATED,
            f"stream ended {len(error.partial)} bytes into a frame header",
        )
    (length,) = _HEADER.unpack(header)
    if length > max_bytes:
        raise FrameError(
            FRAME_OVERSIZED, f"declared frame length {length} exceeds {max_bytes}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise FrameError(
            FRAME_TRUNCATED,
            f"stream ended {len(error.partial)}/{length} bytes into a frame",
        )
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Write one frame and flush it to the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()
