"""Device-side client for the key-establishment server.

:class:`DeviceClient` implements the honest protocol -- hello, start,
await the result frame -- and doubles as the chaos harness's attack
driver: :func:`run_behavior` executes one of a closed set of
*behaviors*, most of which deliberately violate the protocol
(disconnect mid-phase, slow-loris a frame, send garbage bytes, claim an
oversized frame) so the harness can verify the server sheds, reaps or
aborts them without hanging or leaking.  Every behavior resolves to a
:class:`ClientOutcome` -- including the misbehaving ones, whose
"outcome" is whatever structured verdict (or clean close) the server
answered with.

Two behavior families exercise the post-establishment machinery: the
``secure-*`` behaviors negotiate an encrypted data phase and round-trip
AEAD records (``secure-tamper`` additionally proves a flipped bit is
answered with ``secure-error`` and never plaintext), and
``normal-retry`` honors structured shedding -- on a rejection carrying
``retry_after_s`` it disconnects, backs off with capped seeded jitter,
and reconnects.
"""

from __future__ import annotations

import asyncio
import hashlib
import random
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.secure import (
    ChannelContext,
    NonceLedger,
    SecureChannel,
    derive_channel_keys,
)
from repro.server.framing import encode_frame, read_frame, write_frame

#: The closed set of client behaviors the chaos harness draws from.
BEHAVIORS = (
    "normal",
    "normal-retry",
    "ping-then-normal",
    "secure-echo",
    "secure-tamper",
    "disconnect-after-hello",
    "disconnect-after-start",
    "slow-loris",
    "corrupt-frame",
    "oversized-frame",
    "unknown-frame",
    "silent",
)


@dataclass
class ClientOutcome:
    """What one client interaction ended with.

    Attributes:
        session_id: The session id the client claimed.
        behavior: The behavior slug that was executed.
        kind: ``"result"`` (establishment outcome delivered),
            ``"abort"`` (taxonomized server abort), ``"rejected"``
            (structured admission rejection), ``"closed"`` (server
            closed without a terminal frame -- legal only for behaviors
            that disconnect first), ``"disconnected"`` (the transport
            dropped mid-session against a journaling server -- the
            outcome carries the resumption token, so the caller can
            distinguish "reconnect and resume" from a rejection or
            abort), or ``"error"`` (transport error on the client side
            with no resumption path).
        frame: The terminal server frame, when one arrived.
        detail: Free-text context (transport error strings; for secure
            behaviors, ``payload-invariant:<name>`` when the client-side
            payload check failed).
        retries: Admission retries spent before this outcome.
        resume_token: The resumption token the server minted at
            admission (empty on non-journaling servers); populated on
            every kind, but load-bearing on ``"disconnected"``.
    """

    session_id: str
    behavior: str
    kind: str
    frame: Optional[dict] = None
    detail: str = ""
    retries: int = 0
    resume_token: str = ""

    @property
    def structured(self) -> bool:
        """Whether the server answered with a structured verdict."""
        return self.kind in ("result", "abort", "rejected")


@dataclass
class Endpoint:
    """Where the server listens: TCP host/port or a unix socket path."""

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None

    async def connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open one stream connection to the endpoint."""
        if self.unix_path is not None:
            return await asyncio.open_unix_connection(self.unix_path)
        return await asyncio.open_connection(self.host, self.port)


@dataclass
class DeviceClient:
    """One honest (or deliberately misbehaving) device.

    Attributes:
        endpoint: Where to connect.
        session_id: Session id to claim in the hello frame.
        episode: Episode label for the probing burst.
        rounds: Probing rounds to request (``None``: server default).
        timeout_s: Client-side budget for each await on the server.
        data: Request an encrypted data phase in the hello frame.
        max_admission_retries: Reconnect attempts the client spends
            honoring structured rejections before giving up.
        backoff_cap_s: Hard ceiling on any single reconnect backoff.
        retry_seed: Seed of the backoff-jitter stream, so retry timing
            is reproducible.
        resume: A resumption token to present in the hello frame (the
            :meth:`resume_session` driver sets it).
        resume_token: The token the server minted for this session in
            its welcome frame (empty on non-journaling servers).
    """

    endpoint: Endpoint
    session_id: str
    episode: Optional[str] = None
    rounds: Optional[int] = None
    timeout_s: float = 60.0
    data: bool = False
    max_admission_retries: int = 0
    backoff_cap_s: float = 2.0
    retry_seed: Optional[int] = None
    resume: Optional[str] = None
    resume_token: str = ""
    _reader: Optional[asyncio.StreamReader] = field(default=None, repr=False)
    _writer: Optional[asyncio.StreamWriter] = field(default=None, repr=False)

    async def connect(self) -> None:
        """Open the transport."""
        self._reader, self._writer = await self.endpoint.connect()

    async def close(self) -> None:
        """Close the transport (idempotent, swallows transport errors)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionError):
                pass
            self._writer = None

    async def send(self, payload: dict) -> None:
        """Send one protocol frame."""
        await write_frame(self._writer, payload)

    async def recv(self) -> Optional[dict]:
        """Receive one frame (``None`` on clean server close)."""
        return await asyncio.wait_for(
            read_frame(self._reader), timeout=self.timeout_s
        )

    async def hello(self) -> Optional[dict]:
        """Run the admission handshake; returns the server's answer.

        A welcome frame's ``resume_token`` (journaling servers) is
        captured onto :attr:`resume_token` for later reconnects.
        """
        frame = {"type": "hello", "session_id": self.session_id}
        if self.episode is not None:
            frame["episode"] = self.episode
        if self.rounds is not None:
            frame["rounds"] = self.rounds
        if self.data:
            frame["data"] = True
        if self.resume:
            frame["resume"] = self.resume
        await self.send(frame)
        answer = await self.recv()
        if answer is not None and answer.get("type") == "welcome":
            token = str(answer.get("resume_token") or "")
            if token:
                self.resume_token = token
        return answer

    async def establish(self, behavior: str = "normal") -> ClientOutcome:
        """Honest full exchange: hello, start, await the verdict.

        A structured admission rejection is honored, not fought: while
        ``max_admission_retries`` allows, the client disconnects, backs
        off for the server's ``retry_after_s`` hint (scaled per attempt,
        jittered by the seeded stream, capped at ``backoff_cap_s``) and
        reconnects.  The retries actually spent are reported on the
        outcome.
        """
        jitter = random.Random(self.retry_seed)
        attempt = 0
        while True:
            try:
                await self.connect()
                answer = await self.hello()
                if answer is None:
                    return ClientOutcome(
                        self.session_id, behavior, "closed", retries=attempt
                    )
                if answer.get("type") == "rejected":
                    if attempt >= self.max_admission_retries:
                        return ClientOutcome(
                            self.session_id,
                            behavior,
                            "rejected",
                            answer,
                            retries=attempt,
                        )
                    hint = float(answer.get("retry_after_s") or 0.1)
                    delay = min(
                        hint * (2.0**attempt) * (1.0 + 0.25 * jitter.random()),
                        self.backoff_cap_s,
                    )
                    attempt += 1
                    await self.close()
                    await asyncio.sleep(delay)
                    continue
                await self.send({"type": "start"})
                verdict = await self.recv()
                if verdict is None:
                    # Against a journaling server a mid-session close is
                    # not an undifferentiated failure: the caller gets a
                    # structured ``disconnected`` outcome carrying the
                    # resumption token and can reconnect with it.
                    kind = "disconnected" if self.resume_token else "closed"
                    return ClientOutcome(
                        self.session_id,
                        behavior,
                        kind,
                        retries=attempt,
                        resume_token=self.resume_token,
                    )
                kind = "result" if verdict.get("type") == "result" else "abort"
                return ClientOutcome(
                    self.session_id,
                    behavior,
                    kind,
                    verdict,
                    retries=attempt,
                    resume_token=self.resume_token,
                )
            except (OSError, asyncio.TimeoutError, ConnectionError) as error:
                kind = "disconnected" if self.resume_token else "error"
                return ClientOutcome(
                    self.session_id,
                    behavior,
                    kind,
                    detail=str(error),
                    retries=attempt,
                    resume_token=self.resume_token,
                )
            finally:
                await self.close()

    async def resume_session(self, token: str) -> ClientOutcome:
        """Reconnect presenting a resumption token; await the verdict.

        Implements the client half of the resumption protocol: connect,
        hello with ``resume``, and read the terminal frame the server
        either re-delivers from its journal or delivers live once the
        pending tick settles.  A ``duplicate-session`` rejection (the
        server has not yet noticed the old transport died) is backed off
        with the same capped seeded jitter as admission retries and
        retried while ``max_admission_retries`` allows; any other
        rejection (notably ``unknown-resumption-token``) is final -- the
        caller establishes a fresh session instead.
        """
        self.resume = token
        self.resume_token = token
        jitter = random.Random(self.retry_seed)
        attempt = 0
        behavior = "resume"
        while True:
            try:
                await self.connect()
                answer = await self.hello()
                if answer is None:
                    return ClientOutcome(
                        self.session_id,
                        behavior,
                        "disconnected",
                        retries=attempt,
                        resume_token=token,
                    )
                if answer.get("type") == "rejected":
                    if (
                        answer.get("reason") == "duplicate-session"
                        and attempt < self.max_admission_retries
                    ):
                        hint = float(answer.get("retry_after_s") or 0.1)
                        delay = min(
                            hint
                            * (2.0**attempt)
                            * (1.0 + 0.25 * jitter.random()),
                            self.backoff_cap_s,
                        )
                        attempt += 1
                        await self.close()
                        await asyncio.sleep(delay)
                        continue
                    return ClientOutcome(
                        self.session_id,
                        behavior,
                        "rejected",
                        answer,
                        retries=attempt,
                        resume_token=token,
                    )
                verdict = await self.recv()
                if verdict is None:
                    return ClientOutcome(
                        self.session_id,
                        behavior,
                        "disconnected",
                        retries=attempt,
                        resume_token=token,
                    )
                kind = "result" if verdict.get("type") == "result" else "abort"
                return ClientOutcome(
                    self.session_id,
                    behavior,
                    kind,
                    verdict,
                    retries=attempt,
                    resume_token=token,
                )
            except (OSError, asyncio.TimeoutError, ConnectionError) as error:
                return ClientOutcome(
                    self.session_id,
                    behavior,
                    "disconnected",
                    detail=str(error),
                    retries=attempt,
                    resume_token=token,
                )
            finally:
                await self.close()


def channel_from_frame(
    channel_frame: dict,
    role: str = "initiator",
    ledger: Optional[NonceLedger] = None,
) -> SecureChannel:
    """Build one end of the data-phase channel from a result frame.

    The server's result frame carries a ``channel`` object (see
    ``KeyEstablishmentServer._open_channel``) with the device-side
    secret and the public KDF context; deriving from it here yields
    keys that match the server's responder channel bit for bit.  A
    resumed session's frame carries a bumped ``epoch``, so the rebuilt
    channel shares no keys with any pre-crash traffic.  Passing a
    ``ledger`` registers every nonce this end seals/accepts on it (the
    restart chaos sweep threads one through all its clients).
    """
    context = ChannelContext(
        session_nonce=bytes.fromhex(str(channel_frame["nonce"])),
        initiator_id=str(channel_frame.get("initiator_id", "alice")),
        responder_id=str(channel_frame.get("responder_id", "bob")),
        pipeline_fingerprint=str(channel_frame.get("fingerprint", "")),
        epoch=int(channel_frame.get("epoch", 0)),
    )
    keys = derive_channel_keys(
        bytes.fromhex(str(channel_frame["device_key"])), context
    )
    return SecureChannel(
        keys,
        role=role,
        max_sequence=int(channel_frame.get("max_records", 2**20)),
        replay_window=int(channel_frame.get("replay_window", 64)),
        ledger=ledger,
    )


def _retry_seed(session_id: str) -> int:
    """A per-session deterministic seed for the backoff-jitter stream."""
    return int.from_bytes(hashlib.sha256(session_id.encode()).digest()[:4], "big")


def _closed_kind(client: DeviceClient) -> str:
    """``disconnected`` when a resumption token is held, else ``closed``."""
    return "disconnected" if client.resume_token else "closed"


async def fetch_status(
    endpoint: Endpoint,
    session_id: str = "status-probe",
    timeout_s: float = 10.0,
) -> Optional[dict]:
    """Scrape a live server's metrics over the wire (``status`` frame).

    Returns the status frame -- ``{"type": "status", "metrics": {...}}``
    with the full :meth:`~repro.server.metrics.ServerMetrics.snapshot`
    counters dict -- or ``None`` when the server refused admission or
    the transport failed; never raises.
    """
    client = DeviceClient(endpoint, session_id, timeout_s=timeout_s)
    try:
        await client.connect()
        answer = await client.hello()
        if answer is None or answer.get("type") != "welcome":
            return None
        await client.send({"type": "status"})
        reply = await client.recv()
        if reply is None or reply.get("type") != "status":
            return None
        await client.send({"type": "bye"})
        return reply
    except (OSError, asyncio.TimeoutError, ConnectionError):
        return None
    finally:
        await client.close()


async def _run_secure_behavior(
    client: DeviceClient, behavior: str, session_id: str
) -> ClientOutcome:
    """Establish with a data phase, then echo (and maybe tamper).

    ``secure-echo`` round-trips three records and verifies each echo
    decrypts to the sent plaintext; ``secure-tamper`` additionally sends
    a bit-flipped record and demands a ``secure-error`` answer that
    releases no plaintext.  A payload-invariant breach is reported as
    kind ``"error"`` with a ``payload-invariant:<name>`` detail so the
    chaos harness can attribute it.
    """
    client.data = True
    answer = await client.hello()
    if answer is None:
        return ClientOutcome(session_id, behavior, "closed")
    if answer.get("type") == "rejected":
        return ClientOutcome(session_id, behavior, "rejected", answer)
    await client.send({"type": "start"})
    verdict = await client.recv()
    if verdict is None:
        return ClientOutcome(
            session_id,
            behavior,
            _closed_kind(client),
            resume_token=client.resume_token,
        )
    if verdict.get("type") != "result":
        return ClientOutcome(
            session_id, behavior, "abort", verdict,
            resume_token=client.resume_token,
        )
    channel_frame = verdict.get("channel")
    if not verdict.get("success") or channel_frame is None:
        # Establishment failed; there is no channel to exercise.
        return ClientOutcome(
            session_id, behavior, "result", verdict,
            resume_token=client.resume_token,
        )
    channel = channel_from_frame(channel_frame)
    payloads = [f"{session_id}-echo-{index}".encode() for index in range(3)]
    # Pipelined: the burst is sealed as one batch and all records go out
    # back-to-back, so the server can drain them in one batched pass;
    # echoes come back in record order.
    for record in channel.seal_records(payloads):
        await client.send({"type": "secure", "record": record.hex()})
    for plaintext in payloads:
        reply = await client.recv()
        if reply is None:
            return ClientOutcome(
                session_id,
                behavior,
                _closed_kind(client),
                verdict,
                resume_token=client.resume_token,
            )
        if reply.get("type") != "secure":
            return ClientOutcome(
                session_id,
                behavior,
                "error",
                reply,
                detail="payload-invariant:rekey-preserves-continuity",
            )
        opened = channel.open(bytes.fromhex(str(reply.get("record", ""))))
        if not opened.ok or opened.plaintext != plaintext:
            return ClientOutcome(
                session_id,
                behavior,
                "error",
                reply,
                detail="payload-invariant:rekey-preserves-continuity",
            )
    if behavior == "secure-tamper":
        record = bytearray(channel.seal(session_id.encode()))
        record[-1] ^= 0x01  # flip one tag bit: must fail authentication
        await client.send({"type": "secure", "record": bytes(record).hex()})
        reply = await client.recv()
        if reply is None:
            return ClientOutcome(
                session_id,
                behavior,
                _closed_kind(client),
                verdict,
                resume_token=client.resume_token,
            )
        if reply.get("type") != "secure-error" or "record" in reply:
            return ClientOutcome(
                session_id,
                behavior,
                "error",
                reply,
                detail="payload-invariant:no-plaintext-on-auth-failure",
            )
        if reply.get("failure") != "auth-failed":
            return ClientOutcome(
                session_id,
                behavior,
                "error",
                reply,
                detail="payload-invariant:no-plaintext-on-auth-failure",
            )
    await client.send({"type": "bye"})
    return ClientOutcome(
        session_id, behavior, "result", verdict,
        resume_token=client.resume_token,
    )


async def run_behavior(
    endpoint: Endpoint,
    behavior: str,
    session_id: str,
    episode: Optional[str] = None,
    rounds: Optional[int] = None,
    timeout_s: float = 60.0,
) -> ClientOutcome:
    """Execute one behavior against the server; never raises.

    Honest behaviors await a terminal frame.  Misbehaving behaviors do
    their damage and then read whatever the server answers (a
    taxonomized abort, or a clean close once the server reaped the
    session); a transport error on the client side is itself a legal
    outcome (kind ``"error"``) -- the invariants are checked on the
    *server's* metrics, not the attacker's experience.
    """
    client = DeviceClient(
        endpoint, session_id, episode=episode, rounds=rounds, timeout_s=timeout_s
    )
    if behavior == "normal":
        return await client.establish()
    if behavior == "normal-retry":
        client.max_admission_retries = 2
        client.retry_seed = _retry_seed(session_id)
        return await client.establish(behavior="normal-retry")
    try:
        await client.connect()
        if behavior in ("secure-echo", "secure-tamper"):
            return await _run_secure_behavior(client, behavior, session_id)
        if behavior == "ping-then-normal":
            answer = await client.hello()
            if answer is None or answer.get("type") == "rejected":
                return ClientOutcome(
                    session_id,
                    behavior,
                    "rejected" if answer else "closed",
                    answer,
                )
            await client.send({"type": "ping"})
            pong = await client.recv()
            if pong is None or pong.get("type") != "pong":
                return ClientOutcome(session_id, behavior, "closed", pong)
            await client.send({"type": "start"})
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            kind = "result" if verdict.get("type") == "result" else "abort"
            return ClientOutcome(session_id, behavior, kind, verdict)
        if behavior == "disconnect-after-hello":
            await client.hello()
            return ClientOutcome(session_id, behavior, "closed")
        if behavior == "disconnect-after-start":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            await client.send({"type": "start"})
            return ClientOutcome(session_id, behavior, "closed")
        if behavior == "slow-loris":
            # A frame header promising bytes that trickle, then stop.
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            partial = encode_frame({"type": "start"})[:-3]
            client._writer.write(partial)
            await client._writer.drain()
            verdict = await client.recv()  # the reaper's abort, or a close
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "corrupt-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            body = b"\x00\xffnot-json\xfe"
            client._writer.write(len(body).to_bytes(4, "big") + body)
            await client._writer.drain()
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "oversized-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            client._writer.write((2**31).to_bytes(4, "big"))
            await client._writer.drain()
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "unknown-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            await client.send({"type": "flood", "junk": "x" * 128})
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "silent":
            # Connect and never even say hello; the hello timeout closes us.
            verdict = await client.recv()
            return ClientOutcome(session_id, behavior, "closed", verdict)
        raise ValueError(f"unknown behavior {behavior!r}")
    except (OSError, asyncio.TimeoutError, ConnectionError) as error:
        kind = "disconnected" if client.resume_token else "error"
        return ClientOutcome(
            session_id,
            behavior,
            kind,
            detail=str(error),
            resume_token=client.resume_token,
        )
    finally:
        await client.close()
