"""Device-side client for the key-establishment server.

:class:`DeviceClient` implements the honest protocol -- hello, start,
await the result frame -- and doubles as the chaos harness's attack
driver: :func:`run_behavior` executes one of a closed set of
*behaviors*, most of which deliberately violate the protocol
(disconnect mid-phase, slow-loris a frame, send garbage bytes, claim an
oversized frame) so the harness can verify the server sheds, reaps or
aborts them without hanging or leaking.  Every behavior resolves to a
:class:`ClientOutcome` -- including the misbehaving ones, whose
"outcome" is whatever structured verdict (or clean close) the server
answered with.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.server.framing import encode_frame, read_frame, write_frame

#: The closed set of client behaviors the chaos harness draws from.
BEHAVIORS = (
    "normal",
    "ping-then-normal",
    "disconnect-after-hello",
    "disconnect-after-start",
    "slow-loris",
    "corrupt-frame",
    "oversized-frame",
    "unknown-frame",
    "silent",
)


@dataclass
class ClientOutcome:
    """What one client interaction ended with.

    Attributes:
        session_id: The session id the client claimed.
        behavior: The behavior slug that was executed.
        kind: ``"result"`` (establishment outcome delivered),
            ``"abort"`` (taxonomized server abort), ``"rejected"``
            (structured admission rejection), ``"closed"`` (server
            closed without a terminal frame -- legal only for behaviors
            that disconnect first), or ``"error"`` (transport error on
            the client side).
        frame: The terminal server frame, when one arrived.
        detail: Free-text context (transport error strings).
    """

    session_id: str
    behavior: str
    kind: str
    frame: Optional[dict] = None
    detail: str = ""

    @property
    def structured(self) -> bool:
        """Whether the server answered with a structured verdict."""
        return self.kind in ("result", "abort", "rejected")


@dataclass
class Endpoint:
    """Where the server listens: TCP host/port or a unix socket path."""

    host: str = "127.0.0.1"
    port: int = 0
    unix_path: Optional[str] = None

    async def connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        """Open one stream connection to the endpoint."""
        if self.unix_path is not None:
            return await asyncio.open_unix_connection(self.unix_path)
        return await asyncio.open_connection(self.host, self.port)


@dataclass
class DeviceClient:
    """One honest (or deliberately misbehaving) device.

    Attributes:
        endpoint: Where to connect.
        session_id: Session id to claim in the hello frame.
        episode: Episode label for the probing burst.
        rounds: Probing rounds to request (``None``: server default).
        timeout_s: Client-side budget for each await on the server.
    """

    endpoint: Endpoint
    session_id: str
    episode: Optional[str] = None
    rounds: Optional[int] = None
    timeout_s: float = 60.0
    _reader: Optional[asyncio.StreamReader] = field(default=None, repr=False)
    _writer: Optional[asyncio.StreamWriter] = field(default=None, repr=False)

    async def connect(self) -> None:
        """Open the transport."""
        self._reader, self._writer = await self.endpoint.connect()

    async def close(self) -> None:
        """Close the transport (idempotent, swallows transport errors)."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionError):
                pass
            self._writer = None

    async def send(self, payload: dict) -> None:
        """Send one protocol frame."""
        await write_frame(self._writer, payload)

    async def recv(self) -> Optional[dict]:
        """Receive one frame (``None`` on clean server close)."""
        return await asyncio.wait_for(
            read_frame(self._reader), timeout=self.timeout_s
        )

    async def hello(self) -> Optional[dict]:
        """Run the admission handshake; returns the server's answer."""
        frame = {"type": "hello", "session_id": self.session_id}
        if self.episode is not None:
            frame["episode"] = self.episode
        if self.rounds is not None:
            frame["rounds"] = self.rounds
        await self.send(frame)
        return await self.recv()

    async def establish(self) -> ClientOutcome:
        """Honest full exchange: hello, start, await the verdict."""
        try:
            await self.connect()
            answer = await self.hello()
            if answer is None:
                return ClientOutcome(self.session_id, "normal", "closed")
            if answer.get("type") == "rejected":
                return ClientOutcome(self.session_id, "normal", "rejected", answer)
            await self.send({"type": "start"})
            verdict = await self.recv()
            if verdict is None:
                return ClientOutcome(self.session_id, "normal", "closed")
            kind = "result" if verdict.get("type") == "result" else "abort"
            return ClientOutcome(self.session_id, "normal", kind, verdict)
        except (OSError, asyncio.TimeoutError, ConnectionError) as error:
            return ClientOutcome(
                self.session_id, "normal", "error", detail=str(error)
            )
        finally:
            await self.close()


async def run_behavior(
    endpoint: Endpoint,
    behavior: str,
    session_id: str,
    episode: Optional[str] = None,
    rounds: Optional[int] = None,
    timeout_s: float = 60.0,
) -> ClientOutcome:
    """Execute one behavior against the server; never raises.

    Honest behaviors await a terminal frame.  Misbehaving behaviors do
    their damage and then read whatever the server answers (a
    taxonomized abort, or a clean close once the server reaped the
    session); a transport error on the client side is itself a legal
    outcome (kind ``"error"``) -- the invariants are checked on the
    *server's* metrics, not the attacker's experience.
    """
    client = DeviceClient(
        endpoint, session_id, episode=episode, rounds=rounds, timeout_s=timeout_s
    )
    if behavior == "normal":
        return await client.establish()
    try:
        await client.connect()
        if behavior == "ping-then-normal":
            answer = await client.hello()
            if answer is None or answer.get("type") == "rejected":
                return ClientOutcome(
                    session_id,
                    behavior,
                    "rejected" if answer else "closed",
                    answer,
                )
            await client.send({"type": "ping"})
            pong = await client.recv()
            if pong is None or pong.get("type") != "pong":
                return ClientOutcome(session_id, behavior, "closed", pong)
            await client.send({"type": "start"})
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            kind = "result" if verdict.get("type") == "result" else "abort"
            return ClientOutcome(session_id, behavior, kind, verdict)
        if behavior == "disconnect-after-hello":
            await client.hello()
            return ClientOutcome(session_id, behavior, "closed")
        if behavior == "disconnect-after-start":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            await client.send({"type": "start"})
            return ClientOutcome(session_id, behavior, "closed")
        if behavior == "slow-loris":
            # A frame header promising bytes that trickle, then stop.
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            partial = encode_frame({"type": "start"})[:-3]
            client._writer.write(partial)
            await client._writer.drain()
            verdict = await client.recv()  # the reaper's abort, or a close
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "corrupt-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            body = b"\x00\xffnot-json\xfe"
            client._writer.write(len(body).to_bytes(4, "big") + body)
            await client._writer.drain()
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "oversized-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            client._writer.write((2**31).to_bytes(4, "big"))
            await client._writer.drain()
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "unknown-frame":
            answer = await client.hello()
            if answer is not None and answer.get("type") == "rejected":
                return ClientOutcome(session_id, behavior, "rejected", answer)
            await client.send({"type": "flood", "junk": "x" * 128})
            verdict = await client.recv()
            if verdict is None:
                return ClientOutcome(session_id, behavior, "closed")
            return ClientOutcome(session_id, behavior, "abort", verdict)
        if behavior == "silent":
            # Connect and never even say hello; the hello timeout closes us.
            verdict = await client.recv()
            return ClientOutcome(session_id, behavior, "closed", verdict)
        raise ValueError(f"unknown behavior {behavior!r}")
    except (OSError, asyncio.TimeoutError, ConnectionError) as error:
        return ClientOutcome(session_id, behavior, "error", detail=str(error))
    finally:
        await client.close()
