"""Correlation metrics between channel-measurement series.

The paper quantifies reciprocity with the Pearson correlation coefficient
between Alice's and Bob's measurement series.  Over a long drive the raw
series share an enormous common path-loss trend that would hide the
reciprocity-breaking effects under study, so correlations are evaluated on
*detrended* series: the local (moving-average) mean is removed, leaving
exactly the fluctuations the quantizers turn into key bits.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require, require_positive


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Plain Pearson correlation coefficient of two equal-length series.

    Returns 0.0 when either series is constant (the coefficient is
    undefined there, and "no usable correlation" is the right reading for
    a key-generation pipeline).
    """
    x = np.asarray(a, dtype=float)
    y = np.asarray(b, dtype=float)
    require(x.shape == y.shape, "series must have equal length")
    require(x.ndim == 1, "series must be 1-D")
    require(x.size >= 2, "need at least two samples")
    if np.std(x) == 0 or np.std(y) == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def detrend(series: np.ndarray, window: int = 16) -> np.ndarray:
    """Remove the centered moving-average trend from a series.

    Args:
        series: 1-D measurement series.
        window: Moving-average span in samples.  Spans larger than the
            series fall back to removing the global mean.
    """
    x = np.asarray(series, dtype=float)
    require(x.ndim == 1, "series must be 1-D")
    require_positive(window, "window")
    if window >= x.size:
        return x - x.mean()
    kernel = np.ones(window) / window
    # Convolve against an edge-padded copy so the trend is defined everywhere.
    pad = window // 2
    padded = np.concatenate([np.full(pad, x[0]), x, np.full(window - pad - 1, x[-1])])
    trend = np.convolve(padded, kernel, mode="valid")
    return x - trend


def detrend_window_from_distance(
    span_m: float, speed_m_s: float, sample_period_s: float, minimum: int = 6
) -> int:
    """Detrend window (in samples) covering a fixed *travelled distance*.

    Shadowing is a spatial process, so reciprocity experiments hold the
    detrend span fixed in meters: ``span_m / (speed * sample_period)``
    samples, floored at ``minimum``.  A static link (zero speed) has no
    spatial trend to remove; a huge window is returned so detrending
    reduces to mean removal.
    """
    require_positive(span_m, "span_m")
    require_positive(sample_period_s, "sample_period_s")
    require(speed_m_s >= 0, "speed_m_s must be >= 0")
    if speed_m_s == 0:
        return 1_000_000
    return max(minimum, int(round(span_m / (speed_m_s * sample_period_s))))


def detrended_correlation(a: np.ndarray, b: np.ndarray, window: int = 16) -> float:
    """Pearson correlation of the moving-average-detrended series.

    This is the reciprocity metric used throughout the experiments: it
    measures how well the *fluctuations* (the component key bits are
    extracted from) agree between the two sides.
    """
    return pearson_correlation(detrend(a, window), detrend(b, window))
