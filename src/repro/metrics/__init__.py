"""Evaluation metrics: correlation, agreement, key rate, entropy."""

from repro.metrics.correlation import (
    pearson_correlation,
    detrend,
    detrended_correlation,
    detrend_window_from_distance,
)
from repro.metrics.agreement import (
    key_agreement_rate,
    bit_disagreement_rate,
    agreement_statistics,
    AgreementSummary,
)
from repro.metrics.generation import key_generation_rate
from repro.metrics.entropy import shannon_entropy, bit_entropy, min_entropy

__all__ = [
    "pearson_correlation",
    "detrend",
    "detrended_correlation",
    "detrend_window_from_distance",
    "key_agreement_rate",
    "bit_disagreement_rate",
    "agreement_statistics",
    "AgreementSummary",
    "key_generation_rate",
    "shannon_entropy",
    "bit_entropy",
    "min_entropy",
]
