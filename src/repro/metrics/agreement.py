"""Key agreement metrics.

*Key agreement rate* (KAR) is the fraction of matching bits between the
two parties' keys at a given pipeline stage; the paper reports it in
percent with a standard deviation across sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.bits import bit_agreement
from repro.utils.validation import require


def key_agreement_rate(key_a: Sequence[int], key_b: Sequence[int]) -> float:
    """Fraction of agreeing bits between two equal-length keys (0..1)."""
    return bit_agreement(key_a, key_b)


def bit_disagreement_rate(key_a: Sequence[int], key_b: Sequence[int]) -> float:
    """Fraction of mismatching bits -- the reconciliation workload."""
    return 1.0 - key_agreement_rate(key_a, key_b)


@dataclass(frozen=True)
class AgreementSummary:
    """Mean/std agreement over a batch of key pairs, paper-style.

    Attributes:
        mean: Average agreement rate in [0, 1].
        std: Standard deviation across key pairs.
        n_pairs: Number of key pairs summarized.
    """

    mean: float
    std: float
    n_pairs: int

    @property
    def mean_percent(self) -> float:
        """Mean agreement as a percentage, the paper's reporting unit."""
        return 100.0 * self.mean

    @property
    def std_percent(self) -> float:
        """Standard deviation in percentage points."""
        return 100.0 * self.std

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean_percent:.2f}% +/- {self.std_percent:.2f}% (n={self.n_pairs})"


def agreement_statistics(
    keys_a: Sequence[Sequence[int]], keys_b: Sequence[Sequence[int]]
) -> AgreementSummary:
    """Mean and standard deviation of agreement over paired key batches."""
    require(len(keys_a) == len(keys_b), "key batches must pair up")
    require(len(keys_a) > 0, "need at least one key pair")
    rates = np.array(
        [key_agreement_rate(a, b) for a, b in zip(keys_a, keys_b)], dtype=float
    )
    return AgreementSummary(
        mean=float(rates.mean()), std=float(rates.std()), n_pairs=len(rates)
    )
