"""Entropy estimates for generated keys."""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.utils.validation import require, require_positive


def shannon_entropy(symbols: Sequence) -> float:
    """Empirical Shannon entropy (bits/symbol) of a symbol sequence."""
    symbols = list(symbols)
    require(len(symbols) > 0, "need at least one symbol")
    counts = np.array(list(Counter(symbols).values()), dtype=float)
    probabilities = counts / counts.sum()
    return float(-(probabilities * np.log2(probabilities)).sum())


def bit_entropy(bits: Sequence[int]) -> float:
    """Shannon entropy of a bit sequence (1.0 = perfectly balanced)."""
    return shannon_entropy([int(b) for b in bits])


def min_entropy(bits: Sequence[int], block_bits: int = 4) -> float:
    """Min-entropy per bit estimated over non-overlapping blocks.

    Splits the sequence into ``block_bits``-wide symbols and computes
    ``-log2(p_max) / block_bits``; a conservative lower bound on
    per-bit unpredictability.
    """
    bits = [int(b) for b in bits]
    require_positive(block_bits, "block_bits")
    require(len(bits) >= block_bits, "sequence shorter than one block")
    n_blocks = len(bits) // block_bits
    blocks = [
        tuple(bits[i * block_bits:(i + 1) * block_bits]) for i in range(n_blocks)
    ]
    counts = Counter(blocks)
    p_max = max(counts.values()) / n_blocks
    return float(-np.log2(p_max) / block_bits)
