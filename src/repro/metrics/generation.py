"""Key generation rate (KGR).

KGR is the number of *agreed, final* key bits produced per second of
protocol time -- probing airtime plus any reconciliation message exchange.
It is where the paper's 9-14x advantage over pRSSI-based systems shows up:
arRSSI extracts many feature values per packet where pRSSI extracts one,
and the autoencoder reconciliation needs a single syndrome message where
Cascade needs many round trips.
"""

from __future__ import annotations

from repro.utils.validation import require, require_positive


def key_generation_rate(
    agreed_bits: int,
    probing_time_s: float,
    reconciliation_time_s: float = 0.0,
) -> float:
    """Final key bits per second of total protocol time.

    Args:
        agreed_bits: Number of key bits both parties ended up sharing.
        probing_time_s: Wall-clock time of the probing phase.
        reconciliation_time_s: Airtime spent exchanging reconciliation
            messages (0 for schemes that piggyback on probing).
    """
    require(agreed_bits >= 0, "agreed_bits must be >= 0")
    require_positive(probing_time_s, "probing_time_s")
    require(reconciliation_time_s >= 0, "reconciliation_time_s must be >= 0")
    return agreed_bits / (probing_time_s + reconciliation_time_s)
