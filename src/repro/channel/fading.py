"""Small-scale multipath fading (Clarke/Jakes sum-of-sinusoids).

Small-scale fading is the component that (a) makes the key random -- its
spatial decorrelation over half a wavelength is the security foundation of
the whole scheme -- and (b) makes key generation hard over LoRa, because
it decorrelates over the channel coherence time, which is shorter than the
packet airtime.

Two parameterizations of the same sum-of-sinusoids model are provided:

- :class:`SpatialJakesFading` evaluates the complex gain as a function of
  the *relative displacement* between the endpoints (in meters).  Mobility
  models feed it the accumulated relative motion, which handles varying
  vehicle speed exactly (the instantaneous Doppler is just the derivative
  of displacement over wavelength).
- :class:`TemporalJakesFading` evaluates it against time for a fixed
  maximum Doppler, matching textbook Jakes simulators; used by the
  theoretical-verification experiments.

Both support a Rician K-factor: ``K = 0`` is pure Rayleigh (urban NLOS),
larger K adds a LOS component (rural).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive

_DEFAULT_N_PATHS = 64
_TWO_PI = 2.0 * np.pi

#: Valid ``trig_precision`` modes for the sum-of-sinusoids evaluation.
#:
#: ``"mixed"`` (the default) accumulates the per-path angles in float64
#: *turns* (angle / 2*pi), range-reduces them with a bare
#: ``turns - floor(turns)`` in float64, and only then evaluates cos/sin
#: in float32 where SIMD transcendentals apply.  The float64 reduction
#: keeps the float32 arguments small, so the gain error stays ~1e-4 dB
#: away from fades and below ~5e-3 dB even in deep fades (where the dB
#: scale amplifies tiny linear errors) -- two orders of magnitude under
#: the 0.5 dB RSSI register resolution either way (the precision
#: contract pinned by ``tests/test_fading_precision.py``).
#: ``"float64"`` is the exact legacy evaluation, kept as an escape
#: hatch and as the reference the contract is measured against.
TRIG_PRECISION_MODES = ("mixed", "float64")


def _diffuse_sum_exact(angles: np.ndarray, n_paths: int) -> np.ndarray:
    """Float64 reference: sum ``exp(1j*angles)`` over the path axis."""
    return np.exp(1j * angles).sum(axis=-1) / np.sqrt(n_paths)


def _diffuse_sum_turns(turns: np.ndarray, n_paths: int) -> np.ndarray:
    """Mixed-precision diffuse sum over per-path *turns* (angle / 2*pi).

    Working in turns makes the float64 range reduction a bare
    ``turns - floor(turns)`` -- two memory passes instead of the four a
    mod-2*pi on radians needs -- before the float32 SIMD cos/sin.
    ``turns`` is float64 and owned by the caller (mutated in place).
    """
    turns -= np.floor(turns)
    a32 = turns.astype(np.float32)
    a32 *= np.float32(_TWO_PI)
    re = np.cos(a32).sum(axis=-1, dtype=np.float32)
    im = np.sin(a32).sum(axis=-1, dtype=np.float32)
    return (re.astype(float) + 1j * im.astype(float)) / np.sqrt(n_paths)


class _SumOfSinusoids:
    """Shared machinery: N scatterers with random angles and phases."""

    def __init__(
        self,
        n_paths: int,
        rician_k: float,
        seed: SeedLike,
        trig_precision: str = "mixed",
    ):
        require(n_paths >= 8, f"n_paths must be >= 8 for a credible Rayleigh sum, got {n_paths}")
        require(rician_k >= 0, "rician_k must be >= 0")
        require(
            trig_precision in TRIG_PRECISION_MODES,
            f"trig_precision must be one of {TRIG_PRECISION_MODES}, got {trig_precision!r}",
        )
        rng = as_generator(seed)
        self.n_paths = int(n_paths)
        self.rician_k = float(rician_k)
        self.trig_precision = str(trig_precision)
        # Isotropic arrival angles and i.i.d. phases (Clarke's model).
        self._cos_angles = np.cos(rng.uniform(0.0, 2.0 * np.pi, size=self.n_paths))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.n_paths)
        # Per-path phases pre-scaled to turns for the mixed-precision path.
        self._phases_turns = self._phases * (1.0 / _TWO_PI)
        self._los_phase = float(rng.uniform(0.0, 2.0 * np.pi))
        self._los_cos = float(np.cos(rng.uniform(0.0, 2.0 * np.pi)))

    def _complex_gain(self, phase_progress: np.ndarray) -> np.ndarray:
        """Complex gain given per-path phase progress (radians per unit cos-angle).

        ``phase_progress`` has shape ``(..., 1)`` broadcastable against the
        path axis; returns shape ``(...)`` complex gains with unit average
        power.
        """
        if self.trig_precision == "float64":
            angles = phase_progress * self._cos_angles + self._phases
            diffuse = _diffuse_sum_exact(angles, self.n_paths)
        else:
            turns = (
                phase_progress * (1.0 / _TWO_PI) * self._cos_angles
                + self._phases_turns
            )
            diffuse = _diffuse_sum_turns(turns, self.n_paths)
        if self.rician_k == 0:
            return diffuse
        # The LOS term is a single path: float64 cost is negligible and
        # its phase never benefits from the SIMD batch, so it stays exact.
        los = np.exp(1j * (phase_progress[..., 0] * self._los_cos + self._los_phase))
        k = self.rician_k
        return np.sqrt(k / (k + 1.0)) * los + np.sqrt(1.0 / (k + 1.0)) * diffuse


class SpatialJakesFading(_SumOfSinusoids):
    """Fading as a function of relative displacement between the endpoints.

    Args:
        wavelength_m: Carrier wavelength (0.6912 m at 434 MHz).
        n_paths: Number of scatterers in the sum-of-sinusoids.
        rician_k: Rician K-factor (0 = Rayleigh).
        seed: Randomness of the realization.

    The complex gain at displacement ``s`` is

        h(s) = sum_n exp(j (2 pi s / lambda) cos(alpha_n) + j phi_n) / sqrt(N)

    which decorrelates like ``J_0(2 pi s / lambda)``: about zero beyond
    half a wavelength, the paper's Eve-separation argument.
    """

    def __init__(
        self,
        wavelength_m: float,
        n_paths: int = _DEFAULT_N_PATHS,
        rician_k: float = 0.0,
        seed: SeedLike = None,
        trig_precision: str = "mixed",
    ):
        require_positive(wavelength_m, "wavelength_m")
        super().__init__(n_paths, rician_k, seed, trig_precision=trig_precision)
        self.wavelength_m = float(wavelength_m)

    def complex_gain(self, displacement_m) -> np.ndarray:
        """Complex channel gain at the given displacement(s)."""
        s = np.asarray(displacement_m, dtype=float)
        progress = (2.0 * np.pi * s / self.wavelength_m)[..., np.newaxis]
        return self._complex_gain(progress)

    def gain_db(self, displacement_m) -> np.ndarray:
        """Power gain in dB, floored at -60 dB to avoid log-of-zero."""
        magnitude = np.abs(self.complex_gain(displacement_m))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-3))


class TemporalJakesFading(_SumOfSinusoids):
    """Fading as a function of time for a fixed maximum Doppler.

    Equivalent to :class:`SpatialJakesFading` with displacement
    ``s = v t``; exposed separately for experiments that sweep Doppler
    directly.
    """

    def __init__(
        self,
        max_doppler_hz: float,
        n_paths: int = _DEFAULT_N_PATHS,
        rician_k: float = 0.0,
        seed: SeedLike = None,
        trig_precision: str = "mixed",
    ):
        require(max_doppler_hz >= 0, "max_doppler_hz must be >= 0")
        super().__init__(n_paths, rician_k, seed, trig_precision=trig_precision)
        self.max_doppler_hz = float(max_doppler_hz)

    def complex_gain(self, time_s) -> np.ndarray:
        """Complex channel gain at the given time(s)."""
        t = np.asarray(time_s, dtype=float)
        progress = (2.0 * np.pi * self.max_doppler_hz * t)[..., np.newaxis]
        return self._complex_gain(progress)

    def gain_db(self, time_s) -> np.ndarray:
        """Power gain in dB, floored at -60 dB."""
        magnitude = np.abs(self.complex_gain(time_s))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-3))


def batched_spatial_gain_db(
    fadings: Sequence[SpatialJakesFading],
    displacements_m: np.ndarray,
    chunk_elems: int = 1_000_000,
) -> np.ndarray:
    """Evaluate S fading realizations on S displacement rows in one sweep.

    This is the cross-session form of :meth:`SpatialJakesFading.gain_db`:
    the per-realization scatterer tables are stacked into ``[S, n_paths]``
    arrays so one vectorized trig pass covers the whole batch instead of
    S separate dispatches.  Row ``i`` of the result is bit-identical to
    ``fadings[i].gain_db(displacements_m[i])`` because every operation is
    elementwise except the final path-axis sum, whose pairwise reduction
    order depends only on the (shared) path count -- the contract pinned
    by ``tests/test_probing_cross_session.py``.

    Args:
        fadings: Homogeneous realizations (same ``n_paths``, ``rician_k``
            and ``trig_precision``; wavelengths may differ per row).
        displacements_m: ``[S, T]`` displacement rows, one per realization.
        chunk_elems: Cap on the ``S * T_chunk * n_paths`` intermediate so
            the build/reduce/trig passes reuse a cache-resident block
            instead of streaming a huge tensor through memory ~6 times
            (about 2.5x on a paper-scale batch).  Chunking is along the
            time axis only, so it never perturbs the path-axis reduction
            order.

    Returns:
        ``[S, T]`` float64 power gains in dB, floored at -60 dB.
    """
    models = list(fadings)
    require(len(models) > 0, "batched_spatial_gain_db needs at least one realization")
    disp = np.asarray(displacements_m, dtype=float)
    require(
        disp.ndim == 2 and disp.shape[0] == len(models),
        f"displacements_m must be [S={len(models)}, T], got shape {disp.shape}",
    )
    first = models[0]
    for model in models:
        require(
            model.n_paths == first.n_paths
            and model.rician_k == first.rician_k
            and model.trig_precision == first.trig_precision,
            "batched_spatial_gain_db requires homogeneous fading realizations",
        )
    progress = np.empty_like(disp)
    for i, model in enumerate(models):
        progress[i] = 2.0 * np.pi * disp[i] / model.wavelength_m
    cos_angles = np.stack([m._cos_angles for m in models])  # [S, P]
    n_paths = first.n_paths
    rician_k = first.rician_k
    mixed = first.trig_precision != "float64"
    if mixed:
        # Same op order as the scalar path: progress scaled to turns
        # *before* the per-path product, per-path phases pre-scaled.
        scaled = progress * (1.0 / _TWO_PI)
        per_path = np.stack([m._phases_turns for m in models])  # [S, P]
    else:
        scaled = progress
        per_path = np.stack([m._phases for m in models])  # [S, P]
    if rician_k > 0:
        los_cos = np.array([m._los_cos for m in models])[:, np.newaxis]
        los_phase = np.array([m._los_phase for m in models])[:, np.newaxis]
    n_sessions, n_times = disp.shape
    gains = np.empty((n_sessions, n_times), dtype=complex)
    step = max(1, int(chunk_elems) // max(1, n_sessions * n_paths))
    for start in range(0, n_times, step):
        chunk = scaled[:, start : start + step]  # [S, Tc]
        angles = chunk[:, :, np.newaxis] * cos_angles[:, np.newaxis, :] + per_path[:, np.newaxis, :]
        if mixed:
            diffuse = _diffuse_sum_turns(angles, n_paths)
        else:
            diffuse = _diffuse_sum_exact(angles, n_paths)
        if rician_k == 0:
            gains[:, start : start + step] = diffuse
        else:
            # The single-path LOS term stays exact float64 on radians.
            los = np.exp(
                1j * (progress[:, start : start + step] * los_cos + los_phase)
            )
            k = rician_k
            gains[:, start : start + step] = (
                np.sqrt(k / (k + 1.0)) * los + np.sqrt(1.0 / (k + 1.0)) * diffuse
            )
    magnitude = np.abs(gains)
    return 20.0 * np.log10(np.maximum(magnitude, 1e-3))
