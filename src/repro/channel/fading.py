"""Small-scale multipath fading (Clarke/Jakes sum-of-sinusoids).

Small-scale fading is the component that (a) makes the key random -- its
spatial decorrelation over half a wavelength is the security foundation of
the whole scheme -- and (b) makes key generation hard over LoRa, because
it decorrelates over the channel coherence time, which is shorter than the
packet airtime.

Two parameterizations of the same sum-of-sinusoids model are provided:

- :class:`SpatialJakesFading` evaluates the complex gain as a function of
  the *relative displacement* between the endpoints (in meters).  Mobility
  models feed it the accumulated relative motion, which handles varying
  vehicle speed exactly (the instantaneous Doppler is just the derivative
  of displacement over wavelength).
- :class:`TemporalJakesFading` evaluates it against time for a fixed
  maximum Doppler, matching textbook Jakes simulators; used by the
  theoretical-verification experiments.

Both support a Rician K-factor: ``K = 0`` is pure Rayleigh (urban NLOS),
larger K adds a LOS component (rural).
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive

_DEFAULT_N_PATHS = 64


class _SumOfSinusoids:
    """Shared machinery: N scatterers with random angles and phases."""

    def __init__(self, n_paths: int, rician_k: float, seed: SeedLike):
        require(n_paths >= 8, f"n_paths must be >= 8 for a credible Rayleigh sum, got {n_paths}")
        require(rician_k >= 0, "rician_k must be >= 0")
        rng = as_generator(seed)
        self.n_paths = int(n_paths)
        self.rician_k = float(rician_k)
        # Isotropic arrival angles and i.i.d. phases (Clarke's model).
        self._cos_angles = np.cos(rng.uniform(0.0, 2.0 * np.pi, size=self.n_paths))
        self._phases = rng.uniform(0.0, 2.0 * np.pi, size=self.n_paths)
        self._los_phase = float(rng.uniform(0.0, 2.0 * np.pi))
        self._los_cos = float(np.cos(rng.uniform(0.0, 2.0 * np.pi)))

    def _complex_gain(self, phase_progress: np.ndarray) -> np.ndarray:
        """Complex gain given per-path phase progress (radians per unit cos-angle).

        ``phase_progress`` has shape ``(..., 1)`` broadcastable against the
        path axis; returns shape ``(...)`` complex gains with unit average
        power.
        """
        angles = phase_progress * self._cos_angles + self._phases
        diffuse = np.exp(1j * angles).sum(axis=-1) / np.sqrt(self.n_paths)
        if self.rician_k == 0:
            return diffuse
        los = np.exp(1j * (phase_progress[..., 0] * self._los_cos + self._los_phase))
        k = self.rician_k
        return np.sqrt(k / (k + 1.0)) * los + np.sqrt(1.0 / (k + 1.0)) * diffuse


class SpatialJakesFading(_SumOfSinusoids):
    """Fading as a function of relative displacement between the endpoints.

    Args:
        wavelength_m: Carrier wavelength (0.6912 m at 434 MHz).
        n_paths: Number of scatterers in the sum-of-sinusoids.
        rician_k: Rician K-factor (0 = Rayleigh).
        seed: Randomness of the realization.

    The complex gain at displacement ``s`` is

        h(s) = sum_n exp(j (2 pi s / lambda) cos(alpha_n) + j phi_n) / sqrt(N)

    which decorrelates like ``J_0(2 pi s / lambda)``: about zero beyond
    half a wavelength, the paper's Eve-separation argument.
    """

    def __init__(
        self,
        wavelength_m: float,
        n_paths: int = _DEFAULT_N_PATHS,
        rician_k: float = 0.0,
        seed: SeedLike = None,
    ):
        require_positive(wavelength_m, "wavelength_m")
        super().__init__(n_paths, rician_k, seed)
        self.wavelength_m = float(wavelength_m)

    def complex_gain(self, displacement_m) -> np.ndarray:
        """Complex channel gain at the given displacement(s)."""
        s = np.asarray(displacement_m, dtype=float)
        progress = (2.0 * np.pi * s / self.wavelength_m)[..., np.newaxis]
        return self._complex_gain(progress)

    def gain_db(self, displacement_m) -> np.ndarray:
        """Power gain in dB, floored at -60 dB to avoid log-of-zero."""
        magnitude = np.abs(self.complex_gain(displacement_m))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-3))


class TemporalJakesFading(_SumOfSinusoids):
    """Fading as a function of time for a fixed maximum Doppler.

    Equivalent to :class:`SpatialJakesFading` with displacement
    ``s = v t``; exposed separately for experiments that sweep Doppler
    directly.
    """

    def __init__(
        self,
        max_doppler_hz: float,
        n_paths: int = _DEFAULT_N_PATHS,
        rician_k: float = 0.0,
        seed: SeedLike = None,
    ):
        require(max_doppler_hz >= 0, "max_doppler_hz must be >= 0")
        super().__init__(n_paths, rician_k, seed)
        self.max_doppler_hz = float(max_doppler_hz)

    def complex_gain(self, time_s) -> np.ndarray:
        """Complex channel gain at the given time(s)."""
        t = np.asarray(time_s, dtype=float)
        progress = (2.0 * np.pi * self.max_doppler_hz * t)[..., np.newaxis]
        return self._complex_gain(progress)

    def gain_db(self, time_s) -> np.ndarray:
        """Power gain in dB, floored at -60 dB."""
        magnitude = np.abs(self.complex_gain(time_s))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-3))
