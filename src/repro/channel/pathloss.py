"""Large-scale path loss models.

Path loss is the deterministic, distance-driven component of the channel.
It is perfectly reciprocal and perfectly observable by an imitating
attacker -- which is exactly why the paper's security argument (Sec. V-H2)
rests on small-scale fading, not on path loss.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import require, require_positive

_SPEED_OF_LIGHT = 299_792_458.0


class PathLossModel(abc.ABC):
    """Interface: distance (m) to path loss (positive dB)."""

    @abc.abstractmethod
    def loss_db(self, distance_m):
        """Path loss in dB at the given distance(s).

        Accepts scalars or numpy arrays; distances are clamped below at
        1 m to keep the near-field out of the log.
        """

    def gain_db(self, distance_m):
        """Path *gain* (negative dB), convenience for link budgets."""
        return -self.loss_db(distance_m)


def _clamped(distance_m) -> np.ndarray:
    return np.maximum(np.asarray(distance_m, dtype=float), 1.0)


@dataclass(frozen=True)
class FreeSpacePathLoss(PathLossModel):
    """Friis free-space loss: ``20 log10(4 pi d / lambda)``."""

    carrier_frequency_hz: float = 434e6

    def __post_init__(self) -> None:
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")

    def loss_db(self, distance_m):
        wavelength = _SPEED_OF_LIGHT / self.carrier_frequency_hz
        return 20.0 * np.log10(4.0 * np.pi * _clamped(distance_m) / wavelength)


@dataclass(frozen=True)
class LogDistancePathLoss(PathLossModel):
    """Log-distance model: ``PL(d0) + 10 n log10(d / d0)``.

    ``exponent`` is the environment's path loss exponent: ~2 for open rural
    LOS, 2.7--3.5 for urban NLOS vehicular links.
    """

    exponent: float = 2.7
    reference_distance_m: float = 1.0
    carrier_frequency_hz: float = 434e6

    def __post_init__(self) -> None:
        require_positive(self.exponent, "exponent")
        require_positive(self.reference_distance_m, "reference_distance_m")
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")

    @property
    def reference_loss_db(self) -> float:
        """Free-space loss at the reference distance."""
        wavelength = _SPEED_OF_LIGHT / self.carrier_frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * self.reference_distance_m / wavelength)

    def loss_db(self, distance_m):
        d = np.maximum(_clamped(distance_m), self.reference_distance_m)
        return self.reference_loss_db + 10.0 * self.exponent * np.log10(
            d / self.reference_distance_m
        )


@dataclass(frozen=True)
class TwoRayGroundPathLoss(PathLossModel):
    """Two-ray ground-reflection model for flat rural LOS links.

    Below the crossover distance ``d_c = 4 pi h_t h_r / lambda`` the model
    falls back to free space; beyond it the loss is
    ``40 log10(d) - 20 log10(h_t h_r)``.
    """

    tx_height_m: float = 1.5
    rx_height_m: float = 1.5
    carrier_frequency_hz: float = 434e6

    def __post_init__(self) -> None:
        require_positive(self.tx_height_m, "tx_height_m")
        require_positive(self.rx_height_m, "rx_height_m")
        require_positive(self.carrier_frequency_hz, "carrier_frequency_hz")

    @property
    def crossover_distance_m(self) -> float:
        """Distance beyond which the fourth-power law applies."""
        wavelength = _SPEED_OF_LIGHT / self.carrier_frequency_hz
        return 4.0 * math.pi * self.tx_height_m * self.rx_height_m / wavelength

    def loss_db(self, distance_m):
        d = _clamped(distance_m)
        free_space = FreeSpacePathLoss(self.carrier_frequency_hz).loss_db(d)
        two_ray = 40.0 * np.log10(d) - 20.0 * np.log10(
            self.tx_height_m * self.rx_height_m
        )
        crossover = self.crossover_distance_m
        # Shift the two-ray branch so the model is continuous at crossover.
        fs_at_cross = FreeSpacePathLoss(self.carrier_frequency_hz).loss_db(crossover)
        tr_at_cross = 40.0 * math.log10(crossover) - 20.0 * math.log10(
            self.tx_height_m * self.rx_height_m
        )
        continuous_two_ray = two_ray + (fs_at_cross - tr_at_cross)
        result = np.where(d < crossover, free_space, continuous_two_ray)
        require(np.all(np.isfinite(result)), "path loss overflowed")
        if np.isscalar(distance_m):
            return float(result)
        return result
