"""Evaluation scenario presets: V2I/V2V x urban/rural.

The paper evaluates in four environments (Sec. II-B, V-A1).  Each preset
bundles the channel statistics that distinguish them:

- *Urban*: NLOS, rich multipath (Rayleigh, K = 0), strong fast-decorrelating
  shadowing, higher path loss exponent, stop-and-go traffic.
- *Rural*: LOS, a dominant direct path (Rician K > 0), weak slowly-varying
  shadowing, near-free-space path loss, steady highway speeds.
- *V2V*: both endpoints moving (higher relative speed, more channel
  variation, hence the paper's higher key rates); *V2I*: one static
  roadside endpoint.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.channel.fading import SpatialJakesFading
from repro.channel.mobility import (
    RelativeMotion,
    StaticTrajectory,
    StopAndGoTrajectory,
    StraightLineTrajectory,
    Trajectory,
)
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.reciprocity import ReciprocalChannel
from repro.channel.shadowing import GudmundsonShadowing
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require, require_positive

KMH_TO_MS = 1.0 / 3.6


class Environment(enum.Enum):
    """Propagation environment."""

    URBAN = "urban"
    RURAL = "rural"


class LinkType(enum.Enum):
    """Which endpoints move."""

    V2V = "v2v"
    V2I = "v2i"


class ScenarioName(enum.Enum):
    """The four evaluation scenarios of the paper."""

    V2I_URBAN = "v2i-urban"
    V2I_RURAL = "v2i-rural"
    V2V_URBAN = "v2v-urban"
    V2V_RURAL = "v2v-rural"

    @property
    def environment(self) -> Environment:
        return Environment.URBAN if "urban" in self.value else Environment.RURAL

    @property
    def link_type(self) -> LinkType:
        return LinkType.V2V if self.value.startswith("v2v") else LinkType.V2I


@dataclass(frozen=True)
class ScenarioConfig:
    """Channel and mobility statistics for one evaluation scenario.

    Attributes:
        name: Which of the four scenarios this configures.
        pathloss_exponent: Log-distance path loss exponent.
        shadowing_sigma_db: Log-normal shadowing standard deviation.
        shadowing_decorrelation_m: Gudmundson decorrelation distance.
        rician_k: Small-scale fading K-factor (0 = Rayleigh).
        n_paths: Scatterer count for the sum-of-sinusoids fading.
        alice_speed_kmh: Alice's (the vehicle's) nominal speed.
        bob_speed_kmh: Bob's nominal speed (0 for V2I).
        initial_distance_m: Endpoint separation at t = 0.
        carrier_frequency_hz: LoRa carrier (434 MHz in the paper).
        stop_and_go: Whether vehicles follow urban stop-and-go traffic.
    """

    name: ScenarioName
    pathloss_exponent: float
    shadowing_sigma_db: float
    shadowing_decorrelation_m: float
    rician_k: float
    n_paths: int
    alice_speed_kmh: float
    bob_speed_kmh: float
    initial_distance_m: float
    carrier_frequency_hz: float = 434e6
    stop_and_go: bool = False

    def __post_init__(self) -> None:
        require_positive(self.initial_distance_m, "initial_distance_m")
        require(self.alice_speed_kmh >= 0, "alice_speed_kmh must be >= 0")
        require(self.bob_speed_kmh >= 0, "bob_speed_kmh must be >= 0")
        if self.name.link_type is LinkType.V2I:
            require(self.bob_speed_kmh == 0, "V2I scenarios require a static Bob")

    @property
    def wavelength_m(self) -> float:
        return 299_792_458.0 / self.carrier_frequency_hz

    def with_speeds(
        self, alice_speed_kmh: float, bob_speed_kmh: float = None
    ) -> "ScenarioConfig":
        """Copy with overridden nominal speeds (used by speed sweeps)."""
        if bob_speed_kmh is None:
            bob_speed_kmh = self.bob_speed_kmh
        return replace(
            self, alice_speed_kmh=alice_speed_kmh, bob_speed_kmh=bob_speed_kmh
        )

    def build_trajectories(
        self, seeds: SeedSequenceFactory
    ) -> Tuple[Trajectory, Trajectory]:
        """Realize Alice's and Bob's trajectories for this scenario."""
        alice = self._build_vehicle(
            seeds, "alice-mobility", (0.0, 0.0), self.alice_speed_kmh, heading_deg=0.0
        )
        if self.name.link_type is LinkType.V2I:
            bob: Trajectory = StaticTrajectory((self.initial_distance_m, 0.0))
        else:
            # Opposing travel directions give a well-defined relative speed
            # of (v_A + v_B); the paper's vehicles "travel randomly".
            bob = self._build_vehicle(
                seeds,
                "bob-mobility",
                (self.initial_distance_m, 0.0),
                self.bob_speed_kmh,
                heading_deg=180.0,
            )
        return alice, bob

    def _build_vehicle(
        self,
        seeds: SeedSequenceFactory,
        stream: str,
        start: Tuple[float, float],
        speed_kmh: float,
        heading_deg: float,
    ) -> Trajectory:
        speed = speed_kmh * KMH_TO_MS
        if speed == 0:
            return StaticTrajectory(start)
        if self.stop_and_go:
            return StopAndGoTrajectory(
                start,
                max_speed_m_s=speed,
                heading_deg=heading_deg,
                seed=seeds.generator(stream),
            )
        return StraightLineTrajectory(start, speed_m_s=speed, heading_deg=heading_deg)

    def build_channel(
        self, seeds: SeedSequenceFactory, motion: RelativeMotion = None
    ) -> ReciprocalChannel:
        """Realize the full reciprocal channel for this scenario.

        A fresh realization is drawn from the factory's ``shadowing`` and
        ``fading`` streams; pass the same factory to get the same channel.
        """
        if motion is None:
            alice, bob = self.build_trajectories(seeds)
            motion = RelativeMotion(alice, bob)
        pathloss = LogDistancePathLoss(
            exponent=self.pathloss_exponent,
            carrier_frequency_hz=self.carrier_frequency_hz,
        )
        shadowing = GudmundsonShadowing(
            sigma_db=self.shadowing_sigma_db,
            decorrelation_distance_m=self.shadowing_decorrelation_m,
            seed=seeds.generator("shadowing"),
        )
        fading = SpatialJakesFading(
            wavelength_m=self.wavelength_m,
            n_paths=self.n_paths,
            rician_k=self.rician_k,
            seed=seeds.generator("fading"),
        )
        return ReciprocalChannel(motion, pathloss, shadowing, fading)


_PRESETS: Dict[ScenarioName, ScenarioConfig] = {
    ScenarioName.V2I_URBAN: ScenarioConfig(
        name=ScenarioName.V2I_URBAN,
        pathloss_exponent=3.2,
        shadowing_sigma_db=7.0,
        shadowing_decorrelation_m=15.0,
        rician_k=0.0,
        n_paths=64,
        alice_speed_kmh=50.0,
        bob_speed_kmh=0.0,
        initial_distance_m=600.0,
        stop_and_go=True,
    ),
    ScenarioName.V2I_RURAL: ScenarioConfig(
        name=ScenarioName.V2I_RURAL,
        pathloss_exponent=2.2,
        shadowing_sigma_db=4.0,
        shadowing_decorrelation_m=40.0,
        rician_k=4.0,
        n_paths=64,
        alice_speed_kmh=70.0,
        bob_speed_kmh=0.0,
        initial_distance_m=1500.0,
        stop_and_go=False,
    ),
    ScenarioName.V2V_URBAN: ScenarioConfig(
        name=ScenarioName.V2V_URBAN,
        pathloss_exponent=3.0,
        shadowing_sigma_db=7.0,
        shadowing_decorrelation_m=15.0,
        rician_k=0.0,
        n_paths=64,
        alice_speed_kmh=50.0,
        bob_speed_kmh=40.0,
        initial_distance_m=500.0,
        stop_and_go=True,
    ),
    ScenarioName.V2V_RURAL: ScenarioConfig(
        name=ScenarioName.V2V_RURAL,
        pathloss_exponent=2.2,
        shadowing_sigma_db=4.0,
        shadowing_decorrelation_m=40.0,
        rician_k=4.0,
        n_paths=64,
        alice_speed_kmh=75.0,
        bob_speed_kmh=60.0,
        initial_distance_m=1200.0,
        stop_and_go=False,
    ),
}

#: All four scenarios in the paper's reporting order.
ALL_SCENARIOS: Tuple[ScenarioName, ...] = (
    ScenarioName.V2I_URBAN,
    ScenarioName.V2I_RURAL,
    ScenarioName.V2V_URBAN,
    ScenarioName.V2V_RURAL,
)


def scenario_config(name: ScenarioName) -> ScenarioConfig:
    """The preset :class:`ScenarioConfig` for one of the four scenarios."""
    return _PRESETS[name]
