"""Vehicular radio channel substrate.

A physics-based simulator for the LoRa/IoV channel, replacing the paper's
20 hours of drive-test data.  The pieces compose as

    total path gain (dB) = -path loss (distance)
                         + shadowing (spatially correlated, log-normal)
                         + small-scale fading (Jakes/Clarke, Rayleigh/Rician)

with vehicle mobility driving the distance and the fading decorrelation,
and channel reciprocity holding exactly for the *channel* while the
*measurements* diverge through probe time offsets and per-device noise --
precisely the decomposition in the paper's Sec. II-A.
"""

from repro.channel.doppler import (
    doppler_shift_hz,
    coherence_time_s,
    coherence_time_from_speeds_s,
    jakes_autocorrelation,
)
from repro.channel.pathloss import (
    PathLossModel,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
    FreeSpacePathLoss,
)
from repro.channel.shadowing import GudmundsonShadowing
from repro.channel.fading import SpatialJakesFading, TemporalJakesFading
from repro.channel.mobility import (
    Trajectory,
    StaticTrajectory,
    StraightLineTrajectory,
    StopAndGoTrajectory,
    RelativeMotion,
)
from repro.channel.reciprocity import ReciprocalChannel
from repro.channel.interference import InterferenceSource, combine_power_dbm
from repro.channel.validation import ValidationReport, validate_all
from repro.channel.scenario import (
    ScenarioName,
    ScenarioConfig,
    Environment,
    LinkType,
    scenario_config,
    ALL_SCENARIOS,
)

__all__ = [
    "doppler_shift_hz",
    "coherence_time_s",
    "coherence_time_from_speeds_s",
    "jakes_autocorrelation",
    "PathLossModel",
    "LogDistancePathLoss",
    "TwoRayGroundPathLoss",
    "FreeSpacePathLoss",
    "GudmundsonShadowing",
    "SpatialJakesFading",
    "TemporalJakesFading",
    "Trajectory",
    "StaticTrajectory",
    "StraightLineTrajectory",
    "StopAndGoTrajectory",
    "RelativeMotion",
    "ReciprocalChannel",
    "InterferenceSource",
    "combine_power_dbm",
    "ValidationReport",
    "validate_all",
    "ScenarioName",
    "ScenarioConfig",
    "Environment",
    "LinkType",
    "scenario_config",
    "ALL_SCENARIOS",
]
