"""Asymmetric interference sources (paper Sec. II-A, effect 4).

The paper lists four reciprocity-breaking effects; three (probe time
offset, hardware imperfection, additive noise) are modeled elsewhere.
This module adds the fourth: *interference power is asymmetric between
devices*.  An interference source is a transmitter somewhere in the
scene with a bursty on/off activity pattern; each legitimate receiver
picks it up through its own distance, so the two ends of the link see
different interference power at different times -- a purely asymmetric
RSSI corruption.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.channel.pathloss import LogDistancePathLoss, PathLossModel
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


class InterferenceSource:
    """A bursty transmitter at a fixed position.

    Activity is a random telegraph process: exponentially distributed ON
    bursts (mean ``mean_on_s``) separated by exponentially distributed OFF
    gaps (mean ``mean_off_s``), realized lazily and deterministically in
    the seed.

    Args:
        position: Transmitter location (meters).
        eirp_dbm: Radiated power while ON.
        mean_on_s: Average burst duration.
        mean_off_s: Average silence duration.
        pathloss: Propagation model toward the receivers.
        seed: Activity-pattern randomness.
    """

    def __init__(
        self,
        position: Tuple[float, float],
        eirp_dbm: float = 10.0,
        mean_on_s: float = 0.5,
        mean_off_s: float = 5.0,
        pathloss: PathLossModel = None,
        seed: SeedLike = None,
    ):
        self.position = np.asarray(position, dtype=float)
        require(self.position.shape == (2,), "position must be a 2-vector")
        require_positive(mean_on_s, "mean_on_s")
        require_positive(mean_off_s, "mean_off_s")
        self.eirp_dbm = float(eirp_dbm)
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self.pathloss = pathloss if pathloss is not None else LogDistancePathLoss()
        self._rng = as_generator(seed)
        # Segment k spans [boundaries[k], boundaries[k+1]); even k = OFF.
        self._boundaries: List[float] = [0.0]

    def _extend_to(self, horizon_s: float) -> None:
        while self._boundaries[-1] <= horizon_s:
            is_off = (len(self._boundaries) - 1) % 2 == 0
            mean = self.mean_off_s if is_off else self.mean_on_s
            self._boundaries.append(
                self._boundaries[-1] + float(self._rng.exponential(mean))
            )

    def active(self, times_s) -> np.ndarray:
        """Boolean activity at the given time(s)."""
        times = np.atleast_1d(np.asarray(times_s, dtype=float))
        require(bool(np.all(times >= 0)), "activity is defined for t >= 0")
        self._extend_to(float(times.max(initial=0.0)) + 1.0)
        boundaries = np.asarray(self._boundaries)
        segment = np.searchsorted(boundaries, times, side="right") - 1
        result = (segment % 2) == 1
        if np.isscalar(times_s):
            return bool(result[0])
        return result.reshape(np.shape(times_s))

    def power_dbm(self, times_s, rx_positions: np.ndarray) -> np.ndarray:
        """Received interference power at each (time, receiver position).

        Returns ``-inf`` dBm while the source is OFF.
        """
        times = np.atleast_1d(np.asarray(times_s, dtype=float))
        positions = np.atleast_2d(np.asarray(rx_positions, dtype=float))
        require(
            positions.shape == times.shape + (2,),
            "rx_positions must supply one 2-D position per time",
        )
        distance = np.linalg.norm(positions - self.position, axis=-1)
        power = self.eirp_dbm - self.pathloss.loss_db(distance)
        power = np.where(self.active(times), power, -np.inf)
        if np.isscalar(times_s):
            return float(power[0])
        return power.reshape(np.shape(times_s))


def combine_power_dbm(signal_dbm: np.ndarray, interference_dbm: np.ndarray) -> np.ndarray:
    """Total received power: linear-domain sum of signal and interference.

    ``-inf`` interference contributes nothing; this is what an RSSI
    register actually measures during a collision.
    """
    signal = np.asarray(signal_dbm, dtype=float)
    interference = np.asarray(interference_dbm, dtype=float)
    linear = 10.0 ** (signal / 10.0)
    with np.errstate(over="ignore"):
        linear = linear + np.where(
            np.isfinite(interference), 10.0 ** (interference / 10.0), 0.0
        )
    return 10.0 * np.log10(linear)
