"""The reciprocal channel: composition of all gain components.

The *channel* is perfectly reciprocal -- Alice->Bob and Bob->Alice share
one path gain function of time.  Everything that breaks measurement
symmetry (probe time offsets, per-device RSSI offsets and noise, register
quantization) lives in the probing and LoRa layers, matching the paper's
decomposition of reciprocity-breaking effects in Sec. II-A.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.channel.fading import SpatialJakesFading
from repro.channel.mobility import RelativeMotion
from repro.channel.pathloss import PathLossModel
from repro.channel.shadowing import GudmundsonShadowing


class ReciprocalChannel:
    """Total path gain between two moving nodes as a function of time.

    Gain decomposes as

        gain(t) = -PL(d(t)) + S(s(t)) + F(s(t))      [all dB]

    where ``d(t)`` is the separation distance, ``s(t)`` the accumulated
    relative displacement, ``S`` the spatially-correlated shadowing and
    ``F`` the small-scale fading.  Shadowing and fading are indexed by
    displacement rather than time so that a stopped vehicle sees a frozen
    channel, as it would in reality.

    Args:
        motion: Relative motion of the two endpoints.
        pathloss: Large-scale path loss model.
        shadowing: Correlated shadowing realization, or ``None`` to disable.
        fading: Small-scale fading realization, or ``None`` to disable.
    """

    def __init__(
        self,
        motion: RelativeMotion,
        pathloss: PathLossModel,
        shadowing: Optional[GudmundsonShadowing] = None,
        fading: Optional[SpatialJakesFading] = None,
    ):
        self.motion = motion
        self.pathloss = pathloss
        self.shadowing = shadowing
        self.fading = fading

    def path_gain_db(self, time_s) -> np.ndarray:
        """Total (negative) path gain in dB at the given time(s).

        Identical for both link directions: this *is* channel reciprocity.
        """
        t = np.asarray(time_s, dtype=float)
        gain = -np.asarray(self.pathloss.loss_db(self.motion.distance_m(t)), dtype=float)
        if self.shadowing is not None or self.fading is not None:
            displacement = self.motion.relative_displacement_m(t)
            if self.shadowing is not None:
                gain = gain + self.shadowing.value_at(displacement)
            if self.fading is not None:
                gain = gain + self.fading.gain_db(displacement)
        if np.isscalar(time_s):
            return float(gain)
        return gain

    def prefading_gain_db(self, time_s):
        """The :meth:`path_gain_db` split used by cross-session batching.

        Returns ``(partial, displacement)`` where ``partial`` is the gain
        with path loss and shadowing applied in exactly
        :meth:`path_gain_db`'s association order and ``displacement`` is
        the row to feed a batched fading evaluation:
        ``partial + self.fading.gain_db(displacement)`` is bit-identical
        to ``path_gain_db(time_s)``.  Only meaningful when ``fading`` is
        set (callers without fading should use :meth:`path_gain_db`).
        """
        t = np.asarray(time_s, dtype=float)
        gain = -np.asarray(self.pathloss.loss_db(self.motion.distance_m(t)), dtype=float)
        displacement = self.motion.relative_displacement_m(t)
        if self.shadowing is not None:
            gain = gain + self.shadowing.value_at(displacement)
        return gain, displacement

    def large_scale_gain_db(self, time_s) -> np.ndarray:
        """Path loss + shadowing only (what an imitating attacker shares)."""
        t = np.asarray(time_s, dtype=float)
        gain = -np.asarray(self.pathloss.loss_db(self.motion.distance_m(t)), dtype=float)
        if self.shadowing is not None:
            gain = gain + self.shadowing.value_at(self.motion.relative_displacement_m(t))
        if np.isscalar(time_s):
            return float(gain)
        return gain
