"""Doppler spread and channel coherence time.

Implements the relations of the paper's Sec. II-A:

- Doppler shift ``f_d = |V_A - V_B| / C * f_0`` for relative speed between
  the endpoints,
- fast-fading coherence time ``T_c ~= 0.423 / f_d`` (Clarke's model), and
- the Jakes autocorrelation ``rho(tau) = J_0(2 pi f_d tau)^2`` of the
  channel *power*, which is what ties probe time offset to measurement
  correlation.
"""

from __future__ import annotations

import numpy as np
from scipy.special import j0

from repro.utils.validation import require_positive

SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Clarke's-model constant relating coherence time to maximum Doppler.
_COHERENCE_CONSTANT = 0.423


def doppler_shift_hz(relative_speed_m_s: float, carrier_frequency_hz: float) -> float:
    """Maximum Doppler shift for a given relative speed and carrier.

    Example: 40 km/h relative speed at 434 MHz gives ~16.1 Hz.
    """
    require_positive(carrier_frequency_hz, "carrier_frequency_hz")
    return abs(relative_speed_m_s) / SPEED_OF_LIGHT_M_S * carrier_frequency_hz


def coherence_time_s(doppler_hz: float) -> float:
    """Fast-fading coherence time ``0.423 / f_d`` seconds.

    Returns ``inf`` for a static link (zero Doppler), matching the
    intuition that a frozen channel never decorrelates.
    """
    if doppler_hz < 0:
        raise ValueError("doppler_hz must be >= 0")
    if doppler_hz == 0:
        return float("inf")
    return _COHERENCE_CONSTANT / doppler_hz


def coherence_time_from_speeds_s(
    speed_a_m_s: float, speed_b_m_s: float, carrier_frequency_hz: float
) -> float:
    """Coherence time from the two endpoint speeds (paper Sec. II-A).

    Uses the relative-speed Doppler model: the paper's worked example
    (|V_A - V_B| = 40 km/h at 434 MHz) yields about 26 ms.
    """
    fd = doppler_shift_hz(speed_a_m_s - speed_b_m_s, carrier_frequency_hz)
    return coherence_time_s(fd)


def jakes_autocorrelation(tau_s, doppler_hz: float):
    """Normalized autocorrelation of the complex channel gain at lag tau.

    Clarke's isotropic-scattering model gives ``J_0(2 pi f_d tau)`` for the
    complex gain; the envelope-power correlation is its square.  Accepts a
    scalar or array of lags.
    """
    if doppler_hz < 0:
        raise ValueError("doppler_hz must be >= 0")
    tau = np.asarray(tau_s, dtype=float)
    result = j0(2.0 * np.pi * doppler_hz * tau)
    if np.isscalar(tau_s):
        return float(result)
    return result
