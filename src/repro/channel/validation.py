"""Statistical self-checks of the channel simulator.

A reproduction whose substrate is a simulator owes the reader evidence
that the simulator realizes the statistics it claims.  Each check here
compares a realized process against its closed-form theory and returns a
:class:`ValidationReport`; the test suite runs them all, and users can
run :func:`validate_all` after changing channel parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np
from scipy.special import j0
from scipy.stats import kstest

from repro.channel.fading import SpatialJakesFading, TemporalJakesFading
from repro.channel.pathloss import FreeSpacePathLoss, LogDistancePathLoss
from repro.channel.shadowing import GudmundsonShadowing
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of one statistical check.

    Attributes:
        name: What was checked.
        statistic: The measured quantity.
        expected: Its theoretical value.
        tolerance: Allowed absolute deviation.
    """

    name: str
    statistic: float
    expected: float
    tolerance: float

    @property
    def passed(self) -> bool:
        """Whether the measurement is within tolerance of theory."""
        return abs(self.statistic - self.expected) <= self.tolerance

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        flag = "ok " if self.passed else "FAIL"
        return (
            f"[{flag}] {self.name}: measured {self.statistic:.4f}, "
            f"expected {self.expected:.4f} +/- {self.tolerance:.4f}"
        )


def check_rayleigh_envelope(seed: SeedLike = 0, n_samples: int = 20_000) -> ValidationReport:
    """Rayleigh fading's mean envelope: ``sqrt(pi)/2`` at unit power."""
    fading = SpatialJakesFading(wavelength_m=0.6912, n_paths=64, seed=seed)
    displacements = np.arange(n_samples) * 3.3  # ~5 wavelengths apart
    envelope = np.abs(fading.complex_gain(displacements))
    return ValidationReport(
        name="rayleigh mean envelope",
        statistic=float(envelope.mean()),
        expected=float(np.sqrt(np.pi) / 2.0),
        tolerance=0.03,
    )


def check_rayleigh_distribution(seed: SeedLike = 1, n_samples: int = 8_000) -> ValidationReport:
    """Kolmogorov-Smirnov distance of the envelope against Rayleigh."""
    fading = SpatialJakesFading(wavelength_m=0.6912, n_paths=128, seed=seed)
    displacements = np.arange(n_samples) * 4.7
    envelope = np.abs(fading.complex_gain(displacements))
    statistic, _ = kstest(envelope, "rayleigh", args=(0, np.sqrt(0.5)))
    return ValidationReport(
        name="rayleigh envelope KS distance",
        statistic=float(statistic),
        expected=0.0,
        tolerance=0.03,
    )


def check_jakes_autocorrelation(seed: SeedLike = 2) -> ValidationReport:
    """Temporal fading autocorrelation at lag tau vs ``J0(2 pi fd tau)``."""
    doppler = 12.0
    lag = 0.01
    fading = TemporalJakesFading(max_doppler_hz=doppler, n_paths=128, seed=seed)
    times = np.arange(0.0, 4000.0, 0.9)  # samples far apart for independence
    base = fading.complex_gain(times)
    lagged = fading.complex_gain(times + lag)
    measured = float(np.real(np.mean(base * np.conj(lagged))) / np.mean(np.abs(base) ** 2))
    return ValidationReport(
        name="jakes autocorrelation at 10 ms",
        statistic=measured,
        expected=float(j0(2 * np.pi * doppler * lag)),
        tolerance=0.08,
    )


def check_shadowing_marginal(seed: SeedLike = 3) -> ValidationReport:
    """Gudmundson marginal standard deviation equals sigma."""
    process = GudmundsonShadowing(6.0, 20.0, seed=seed)
    values = process.value_at(np.arange(0.0, 400_000.0, 200.0))
    return ValidationReport(
        name="shadowing marginal std",
        statistic=float(np.std(values)),
        expected=6.0,
        tolerance=0.5,
    )


def check_shadowing_correlation(seed: SeedLike = 4) -> ValidationReport:
    """Spatial correlation at one decorrelation distance equals 1/e."""
    decorr = 30.0
    process = GudmundsonShadowing(6.0, decorr, seed=seed)
    base = np.arange(0.0, 600_000.0, 300.0)
    a = process.value_at(base)
    b = process.value_at(base + decorr)
    return ValidationReport(
        name="shadowing correlation at d_corr",
        statistic=float(np.corrcoef(a, b)[0, 1]),
        expected=float(np.exp(-1.0)),
        tolerance=0.05,
    )


def check_friis_slope() -> ValidationReport:
    """Free-space loss slope: 20 dB per decade."""
    model = FreeSpacePathLoss()
    return ValidationReport(
        name="free-space dB/decade",
        statistic=float(model.loss_db(10_000.0) - model.loss_db(1_000.0)),
        expected=20.0,
        tolerance=1e-9,
    )


def check_log_distance_slope() -> ValidationReport:
    """Log-distance slope: 10 n dB per decade."""
    model = LogDistancePathLoss(exponent=3.2)
    return ValidationReport(
        name="log-distance dB/decade (n=3.2)",
        statistic=float(model.loss_db(5_000.0) - model.loss_db(500.0)),
        expected=32.0,
        tolerance=1e-9,
    )


def validate_all(seed: SeedLike = 0) -> Dict[str, ValidationReport]:
    """Run every simulator self-check."""
    rng = as_generator(seed)
    reports = [
        check_rayleigh_envelope(seed=rng),
        check_rayleigh_distribution(seed=rng),
        check_jakes_autocorrelation(seed=rng),
        check_shadowing_marginal(seed=rng),
        check_shadowing_correlation(seed=rng),
        check_friis_slope(),
        check_log_distance_slope(),
    ]
    return {report.name: report for report in reports}
