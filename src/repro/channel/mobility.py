"""Vehicle mobility models.

Trajectories produce positions and velocities over time; the channel layer
consumes two derived signals:

- the *separation distance* between the endpoints (drives path loss),
- the *accumulated relative displacement* ``integral |v_A(t) - v_B(t)| dt``
  (drives small-scale fading and shadowing decorrelation -- this is the
  paper's ``f_d = |V_A - V_B| / C * f_0`` model generalized to
  time-varying vector velocities).

Three trajectory families cover the paper's scenarios: a static roadside
unit (V2I), constant-speed highway driving (rural), and stop-and-go urban
traffic with random speed segments.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


class Trajectory(abc.ABC):
    """A node's motion: position and velocity as functions of time."""

    @abc.abstractmethod
    def position_m(self, time_s) -> np.ndarray:
        """Position(s) in meters; shape ``(..., 2)`` for array input."""

    @abc.abstractmethod
    def velocity_m_s(self, time_s) -> np.ndarray:
        """Velocity vector(s) in m/s; shape ``(..., 2)`` for array input."""

    def speed_m_s(self, time_s) -> np.ndarray:
        """Scalar speed(s) in m/s."""
        return np.linalg.norm(self.velocity_m_s(time_s), axis=-1)


class StaticTrajectory(Trajectory):
    """A fixed node (roadside unit, building-mounted gateway)."""

    def __init__(self, position: Tuple[float, float] = (0.0, 0.0)):
        self._position = np.asarray(position, dtype=float)
        require(self._position.shape == (2,), "position must be a 2-vector")

    def position_m(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        return np.broadcast_to(self._position, t.shape + (2,)).copy()

    def velocity_m_s(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        return np.zeros(t.shape + (2,))


class StraightLineTrajectory(Trajectory):
    """Constant-velocity motion: rural highway driving."""

    def __init__(
        self,
        start: Tuple[float, float],
        speed_m_s: float,
        heading_deg: float = 0.0,
    ):
        require(speed_m_s >= 0, "speed_m_s must be >= 0")
        self._start = np.asarray(start, dtype=float)
        require(self._start.shape == (2,), "start must be a 2-vector")
        heading = np.deg2rad(heading_deg)
        self._velocity = speed_m_s * np.array([np.cos(heading), np.sin(heading)])

    def position_m(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        return self._start + t[..., np.newaxis] * self._velocity

    def velocity_m_s(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        return np.broadcast_to(self._velocity, t.shape + (2,)).copy()


class StopAndGoTrajectory(Trajectory):
    """Urban stop-and-go traffic along a straight street.

    Speed is piecewise constant: segments with random durations
    (``segment_duration_s`` on average, exponential) and random speeds
    uniform in ``[0, max_speed_m_s]``, with a ``stop_probability`` chance
    of a full stop (red light).  Segments are realized lazily out to the
    queried horizon, so the trajectory is deterministic in its seed.
    """

    def __init__(
        self,
        start: Tuple[float, float],
        max_speed_m_s: float,
        heading_deg: float = 0.0,
        segment_duration_s: float = 15.0,
        stop_probability: float = 0.2,
        seed: SeedLike = None,
    ):
        require_positive(max_speed_m_s, "max_speed_m_s")
        require_positive(segment_duration_s, "segment_duration_s")
        require(0.0 <= stop_probability <= 1.0, "stop_probability must be in [0, 1]")
        self._start = np.asarray(start, dtype=float)
        require(self._start.shape == (2,), "start must be a 2-vector")
        heading = np.deg2rad(heading_deg)
        self._direction = np.array([np.cos(heading), np.sin(heading)])
        self._max_speed = float(max_speed_m_s)
        self._segment_duration = float(segment_duration_s)
        self._stop_probability = float(stop_probability)
        self._rng = as_generator(seed)
        # Segment k covers [boundaries[k], boundaries[k+1]) at speeds[k];
        # cumulative[k] is distance travelled by boundaries[k].
        self._boundaries = [0.0]
        self._speeds: list = []
        self._cumulative = [0.0]
        # ndarray views of the segment lists, rebuilt only when the
        # trajectory extends; per-round scalar queries would otherwise
        # re-convert every list on every call.
        self._segment_cache = None

    def _extend_to(self, horizon_s: float) -> None:
        if self._boundaries[-1] > horizon_s:
            return
        while self._boundaries[-1] <= horizon_s:
            duration = float(self._rng.exponential(self._segment_duration))
            duration = max(duration, 1.0)
            if self._rng.uniform() < self._stop_probability:
                speed = 0.0
            else:
                speed = float(self._rng.uniform(0.2, 1.0) * self._max_speed)
            self._speeds.append(speed)
            self._cumulative.append(self._cumulative[-1] + speed * duration)
            self._boundaries.append(self._boundaries[-1] + duration)
        self._segment_cache = None

    def _segment_arrays(self):
        """ndarray views of (boundaries, cumulative, speeds)."""
        if self._segment_cache is None:
            self._segment_cache = (
                np.asarray(self._boundaries),
                np.asarray(self._cumulative),
                np.asarray(self._speeds),
            )
        return self._segment_cache

    def _distance_along(self, t: np.ndarray) -> np.ndarray:
        flat = np.atleast_1d(t).ravel()
        require(np.all(flat >= 0), "StopAndGoTrajectory is defined for t >= 0")
        self._extend_to(float(flat.max(initial=0.0)) + 1.0)
        bounds, cumulative, speeds = self._segment_arrays()
        idx = np.clip(np.searchsorted(bounds, flat, side="right") - 1, 0, len(speeds) - 1)
        dist = cumulative[idx] + speeds[idx] * (flat - bounds[idx])
        return dist.reshape(np.shape(t))

    def position_m(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        return self._start + self._distance_along(t)[..., np.newaxis] * self._direction

    def velocity_m_s(self, time_s) -> np.ndarray:
        t = np.asarray(time_s, dtype=float)
        flat = np.atleast_1d(t).ravel()
        self._extend_to(float(flat.max(initial=0.0)) + 1.0)
        bounds, _, speeds = self._segment_arrays()
        idx = np.clip(np.searchsorted(bounds, flat, side="right") - 1, 0, len(speeds) - 1)
        speed = speeds[idx].reshape(np.shape(t))
        return speed[..., np.newaxis] * self._direction


class RelativeMotion:
    """Derived signals for a pair of trajectories.

    Provides the separation distance and the accumulated relative
    displacement ``integral |v_A - v_B| dt``, the quantity that indexes
    the spatial fading process.  The integral is evaluated on a cached
    uniform grid (default 10 ms) extended lazily, so repeated queries are
    cheap and deterministic.
    """

    def __init__(
        self,
        trajectory_a: Trajectory,
        trajectory_b: Trajectory,
        integration_step_s: float = 0.01,
    ):
        require_positive(integration_step_s, "integration_step_s")
        self.trajectory_a = trajectory_a
        self.trajectory_b = trajectory_b
        self._step = float(integration_step_s)
        self._grid_cumulative: Optional[np.ndarray] = None  # cum displacement at k*step

    def distance_m(self, time_s) -> np.ndarray:
        """Separation distance between the endpoints."""
        delta = self.trajectory_a.position_m(time_s) - self.trajectory_b.position_m(time_s)
        return np.linalg.norm(delta, axis=-1)

    def relative_speed_m_s(self, time_s) -> np.ndarray:
        """Magnitude of the vector velocity difference."""
        delta = self.trajectory_a.velocity_m_s(time_s) - self.trajectory_b.velocity_m_s(
            time_s
        )
        return np.linalg.norm(delta, axis=-1)

    def _ensure_grid(self, horizon_s: float) -> None:
        needed = int(np.ceil(horizon_s / self._step)) + 2
        current = 0 if self._grid_cumulative is None else len(self._grid_cumulative)
        if needed <= current:
            return
        # Extend incrementally (with slack) so repeated growth stays linear.
        needed = max(needed, 2 * current)
        start_index = max(current - 1, 0)
        times = (start_index + np.arange(needed - start_index)) * self._step
        speeds = self.relative_speed_m_s(times)
        increments = 0.5 * (speeds[1:] + speeds[:-1]) * self._step
        base = 0.0 if current == 0 else float(self._grid_cumulative[-1])
        # Seed the running sum with the stored base so accumulation stays
        # strictly sequential: grid values are then bit-identical no matter
        # how queries chunked the growth (one bulk query vs many small
        # ones), which the vectorized probing fast path relies on.
        extension = np.cumsum(np.concatenate([[base], increments]))[1:]
        if current == 0:
            self._grid_cumulative = np.concatenate([[0.0], extension])
        else:
            self._grid_cumulative = np.concatenate(
                [self._grid_cumulative, extension]
            )

    def relative_displacement_m(self, time_s) -> np.ndarray:
        """Accumulated relative displacement up to the given time(s)."""
        t = np.asarray(time_s, dtype=float)
        flat = np.atleast_1d(t).ravel()
        require(np.all(flat >= 0), "relative displacement is defined for t >= 0")
        self._ensure_grid(float(flat.max(initial=0.0)))
        positions = flat / self._step
        idx = np.clip(positions.astype(int), 0, len(self._grid_cumulative) - 2)
        frac = positions - idx
        lo = self._grid_cumulative[idx]
        hi = self._grid_cumulative[idx + 1]
        result = (lo + frac * (hi - lo)).reshape(np.shape(t))
        if np.isscalar(time_s):
            return float(result)
        return result
