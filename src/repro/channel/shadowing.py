"""Spatially correlated log-normal shadowing (Gudmundson model).

Shadowing is the medium-scale channel component caused by buildings and
terrain.  Its log-domain value is Gaussian with standard deviation
``sigma_db`` and decorrelates exponentially with *distance travelled*:

    E[S(s) S(s + delta)] = sigma^2 * exp(-|delta| / d_corr)

(Gudmundson 1991).  We realize the process with an AR(1) recursion on a
fine spatial grid and interpolate between grid points, extending the grid
lazily (in both directions) as callers ask for new displacements.  Because
shadowing depends on the *environment around the route*, an imitating
attacker that follows the same route observes (nearly) the same shadowing
-- the attack model of Sec. V-H2 -- so the process is keyed by route, not
by node.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


class GudmundsonShadowing:
    """AR(1)-on-a-grid realization of correlated log-normal shadowing.

    Args:
        sigma_db: Log-domain standard deviation (urban ~6-8 dB, rural ~4 dB).
        decorrelation_distance_m: Distance at which correlation falls to 1/e
            (urban ~25 m, rural ~100 m+).
        seed: Randomness for the realization.
        grid_step_m: Spatial grid resolution; defaults to 1/8 of the
            decorrelation distance.
    """

    def __init__(
        self,
        sigma_db: float,
        decorrelation_distance_m: float,
        seed: SeedLike = None,
        grid_step_m: float = None,
    ):
        require(sigma_db >= 0, "sigma_db must be >= 0")
        require_positive(decorrelation_distance_m, "decorrelation_distance_m")
        self.sigma_db = float(sigma_db)
        self.decorrelation_distance_m = float(decorrelation_distance_m)
        self._step = (
            float(grid_step_m)
            if grid_step_m is not None
            else decorrelation_distance_m / 8.0
        )
        require_positive(self._step, "grid_step_m")
        self._rho = float(np.exp(-self._step / decorrelation_distance_m))
        self._rng = as_generator(seed)
        # Grid values at displacements step * (offset + i) for i in range(len).
        self._values: List[float] = [self._draw_initial()]
        self._offset = 0  # grid index of self._values[0]
        # ndarray view of ``_values``, rebuilt only when the grid grows;
        # per-round scalar queries would otherwise pay a list-to-array
        # conversion of the whole grid on every call.
        self._grid_cache: np.ndarray = None
        # Independent innovation streams per growth direction.  Each grid
        # node then consumes a fixed draw (the |index|-th of its
        # direction's stream) no matter which caller forced the extension
        # or how queries were chunked -- several consumers share one
        # realization (e.g. an eavesdropper's shifted view), and the
        # vectorized probing path queries them in a different order than
        # the per-round loop.  Upward growth keeps consuming the main
        # stream (spawn() does not advance it), so realizations that only
        # ever grow upward -- every eavesdropper-free scenario -- are
        # unchanged from the original single-stream implementation.
        self._up_rng = self._rng
        (self._down_rng,) = self._rng.spawn(1)

    def _draw_initial(self) -> float:
        return float(self._rng.normal(0.0, self.sigma_db)) if self.sigma_db else 0.0

    def _innovation(self, anchor: float, rng: np.random.Generator) -> float:
        if self.sigma_db == 0:
            return 0.0
        noise_std = self.sigma_db * np.sqrt(1.0 - self._rho**2)
        return self._rho * anchor + float(rng.normal(0.0, noise_std))

    def _extend(self, anchor: float, count: int, rng: np.random.Generator) -> list:
        """``count`` AR(1) steps from ``anchor``, batching the noise draws.

        One ``rng.normal(size=count)`` call yields the same stream as
        ``count`` scalar draws (NumPy's ziggurat stream is chunking
        invariant), and the recurrence arithmetic is unchanged, so the
        grid values are bit-identical to the original node-at-a-time
        loop -- just without 1 Generator dispatch per node.
        """
        if self.sigma_db == 0:
            return [0.0] * count
        noise_std = self.sigma_db * np.sqrt(1.0 - self._rho**2)
        noise = rng.normal(0.0, noise_std, size=count)
        rho = self._rho
        values = []
        for draw in noise:
            anchor = rho * anchor + float(draw)
            values.append(anchor)
        return values

    def _ensure_index(self, index: int) -> None:
        if (
            self._offset <= index < self._offset + len(self._values)
        ):
            return
        top = self._offset + len(self._values)
        if index >= top:
            self._values.extend(
                self._extend(self._values[-1], index - top + 1, self._up_rng)
            )
        if index < self._offset:
            below = self._extend(self._values[0], self._offset - index, self._down_rng)
            below.reverse()
            self._values[:0] = below
            self._offset = index
        self._grid_cache = None

    def value_at(self, displacement_m) -> np.ndarray:
        """Shadowing value(s) in dB at the given route displacement(s).

        Negative displacements are valid (the grid grows both ways).
        Values between grid points are linearly interpolated, so the
        process is continuous in displacement.
        """
        disp = np.atleast_1d(np.asarray(displacement_m, dtype=float)).ravel()
        if disp.size:
            self._ensure_index(int(np.floor(disp.min() / self._step)))
            self._ensure_index(int(np.floor(disp.max() / self._step)) + 1)
        if self._grid_cache is None:
            self._grid_cache = np.asarray(self._values)
        grid_values = self._grid_cache
        positions = disp / self._step - self._offset
        idx = np.clip(positions.astype(int), 0, grid_values.size - 2)
        frac = positions - idx
        result = grid_values[idx] + frac * (grid_values[idx + 1] - grid_values[idx])
        if np.isscalar(displacement_m):
            return float(result[0])
        return result.reshape(np.shape(displacement_m))

    def theoretical_correlation(self, delta_m: float) -> float:
        """The model's correlation at spatial lag ``delta_m``."""
        return float(np.exp(-abs(delta_m) / self.decorrelation_distance_m))

    def shifted(self, offset_m: float) -> "ShiftedShadowing":
        """A view of this realization displaced by ``offset_m``.

        Used for nearby attackers: an eavesdropper following the same
        route ``offset_m`` behind sees the *same* shadowing environment
        sampled at route positions shifted by her trailing distance, so
        her correlation with the legitimate link is exactly the process's
        spatial correlation at that offset.
        """
        return ShiftedShadowing(self, offset_m)


class ShiftedShadowing:
    """A displaced view of an existing shadowing realization."""

    def __init__(self, base: GudmundsonShadowing, offset_m: float):
        self._base = base
        self._offset = float(offset_m)

    @property
    def sigma_db(self) -> float:
        return self._base.sigma_db

    @property
    def decorrelation_distance_m(self) -> float:
        return self._base.decorrelation_distance_m

    def value_at(self, displacement_m) -> np.ndarray:
        """Shadowing at the displaced route position(s)."""
        return self._base.value_at(np.asarray(displacement_m) - self._offset)
