"""Exception hierarchy for the Vehicle-Key reproduction.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class ProtocolError(ReproError):
    """A key-agreement protocol message was malformed or out of order."""


class AuthenticationError(ProtocolError):
    """A MAC check failed: the message was tampered with or forged."""


class ReconciliationFailure(ReproError):
    """Reconciliation could not correct the mismatches between the keys."""


class NotTrainedError(ReproError):
    """A learned component was used before it was trained or loaded."""
