"""Exception hierarchy for the Vehicle-Key reproduction.

Every exception raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except ReproError`` while letting programming errors propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class ProtocolError(ReproError):
    """A key-agreement protocol message was malformed or out of order."""


class AuthenticationError(ProtocolError):
    """A MAC check failed: the message was tampered with or forged."""


class ReconciliationFailure(ReproError):
    """Reconciliation could not correct the mismatches between the keys."""


class KeyEstablishmentError(ReproError):
    """A key-establishment run ended without both parties holding a key."""

    #: Machine-readable failure slug, mirrored into
    #: :attr:`repro.core.pipeline.KeyEstablishmentOutcome.failure_reason`.
    reason = "key-establishment-failed"


class InsufficientEntropyError(KeyEstablishmentError):
    """Too few verified secret bits survived to derive the final key."""

    reason = "insufficient-entropy"


class RetryBudgetExhausted(KeyEstablishmentError):
    """Retries/re-probes hit their wall-clock or airtime budget without a key."""

    reason = "retry-budget-exhausted"


class SessionAborted(KeyEstablishmentError):
    """The authenticated session state machine aborted the run.

    Raised (with ``raise_on_failure=True``) when a session ends in the
    ``ABORTED`` state: a replayed or malformed message, a total MAC
    verification failure, or a failed key-confirmation round.  The
    structured :class:`~repro.core.statemachine.SessionAbort` record is
    attached as :attr:`abort`; its ``reason`` slug (not the generic class
    ``reason``) is what :attr:`KeyEstablishmentOutcome.failure_reason`
    reports.
    """

    reason = "session-aborted"

    def __init__(self, message: str, abort=None):
        super().__init__(message)
        #: The :class:`~repro.core.statemachine.SessionAbort` that ended
        #: the session (``None`` when raised without one).
        self.abort = abort


class NotTrainedError(ReproError):
    """A learned component was used before it was trained or loaded."""


class ArtifactError(ReproError):
    """A persisted artifact (weights, trace, dataset) could not be used."""


class CorruptArtifactError(ArtifactError):
    """An artifact file is truncated, tampered with, or fails its checksum."""


class ArtifactMismatchError(ArtifactError):
    """An artifact was written by a different kind or architecture of object."""


class TrainingDivergedError(ReproError):
    """Training diverged (NaN/Inf or exploding loss) beyond the retry budget."""
