"""Reconciler interface and outcome accounting."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.metrics.agreement import key_agreement_rate
from repro.utils.validation import require


@dataclass
class ReconciliationOutcome:
    """Result of one reconciliation run.

    Attributes:
        alice_key: Alice's key after applying the corrections.
        bob_key: Bob's (reference) key, unchanged.
        messages: Protocol messages exchanged over the public channel.
        bytes_exchanged: Total payload bytes of those messages, used by
            the key-rate benchmarks to charge LoRa airtime overhead.
    """

    alice_key: np.ndarray
    bob_key: np.ndarray
    messages: int
    bytes_exchanged: int

    def __post_init__(self) -> None:
        require(
            self.alice_key.shape == self.bob_key.shape,
            "reconciled keys must have equal length",
        )
        require(self.messages >= 0, "messages must be >= 0")
        require(self.bytes_exchanged >= 0, "bytes_exchanged must be >= 0")

    @property
    def agreement(self) -> float:
        """Post-reconciliation key agreement rate in [0, 1]."""
        return key_agreement_rate(self.alice_key, self.bob_key)

    @property
    def success(self) -> bool:
        """Whether the keys now match exactly."""
        return bool(np.array_equal(self.alice_key, self.bob_key))


class Reconciler(abc.ABC):
    """Corrects Alice's key toward Bob's using public-channel messages."""

    @abc.abstractmethod
    def reconcile(
        self, alice_key: np.ndarray, bob_key: np.ndarray
    ) -> ReconciliationOutcome:
        """Run the protocol on one key pair.

        The simulation-side convenience API: both keys are visible to the
        caller (the experiment harness), but implementations must only move
        information between the parties through counted messages.
        """


class NullReconciliation(Reconciler):
    """No-op reconciler for ablations (keys pass through unchanged)."""

    def reconcile(self, alice_key, bob_key) -> ReconciliationOutcome:
        return ReconciliationOutcome(
            alice_key=np.asarray(alice_key, dtype=np.uint8).copy(),
            bob_key=np.asarray(bob_key, dtype=np.uint8).copy(),
            messages=0,
            bytes_exchanged=0,
        )
