"""Cascade reconciliation (Brassard & Salvail, EUROCRYPT 1993).

The interactive parity protocol used by the Han et al. baseline: in each
iteration the key is (publicly) shuffled and cut into blocks whose
parities are compared; every mismatching block is binary-searched down to
one erroneous bit, and each fix is cascaded back through earlier
iterations whose blocks now have odd parity.  Error correction is strong
but costs many round trips -- the communication burden the paper's
single-message autoencoder removes.

The paper configures the baseline with group length ``k = 3`` and 4
iterations (Sec. V-F); block size doubles per iteration, per the original
protocol.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.reconciliation.base import Reconciler, ReconciliationOutcome
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


def _parity(bits: np.ndarray, indices: np.ndarray) -> int:
    return int(bits[indices].sum() & 1)


class CascadeReconciliation(Reconciler):
    """Interactive Cascade protocol.

    Args:
        block_size: Initial block length k (doubles each iteration).
        iterations: Number of shuffle-and-compare passes.
        seed: Public randomness for the per-iteration shuffles (both
            parties derive the same shuffles in the real protocol).
        max_messages: Optional cap on protocol messages.  Over LoRa,
            every parity exchange is a packet of ~1 s airtime under a
            regional duty-cycle budget, so deployed systems must bound
            the interaction; when the budget runs out, the remaining
            errors stay uncorrected.  ``None`` means unlimited.
    """

    def __init__(
        self,
        block_size: int = 3,
        iterations: int = 4,
        seed: SeedLike = 0,
        max_messages: int = None,
    ):
        require_positive(block_size, "block_size")
        require_positive(iterations, "iterations")
        if max_messages is not None:
            require_positive(max_messages, "max_messages")
        self.block_size = int(block_size)
        self.iterations = int(iterations)
        self.max_messages = max_messages
        self._seed = seed

    def reconcile(self, alice_key, bob_key) -> ReconciliationOutcome:
        alice = np.asarray(alice_key, dtype=np.uint8).copy()
        bob = np.asarray(bob_key, dtype=np.uint8)
        require(alice.shape == bob.shape, "keys must have equal length")
        require(alice.ndim == 1, "keys must be 1-D")
        n = alice.size
        rng = as_generator(self._seed)

        messages = 0
        bits_leaked = 0
        # blocks[i] is iteration i's list of index arrays.
        blocks: List[List[np.ndarray]] = []

        def budget_exhausted() -> bool:
            return self.max_messages is not None and messages >= self.max_messages

        def binary_search_and_fix(indices: np.ndarray) -> int:
            """CONFIRM: find and flip exactly one wrong bit in an odd block."""
            nonlocal messages, bits_leaked
            work = indices
            while work.size > 1:
                half = work[: work.size // 2]
                messages += 2  # parity request + response
                bits_leaked += 1
                if _parity(alice, half) != _parity(bob, half):
                    work = half
                else:
                    work = work[work.size // 2:]
            position = int(work[0])
            alice[position] ^= 1
            return position

        for iteration in range(self.iterations):
            size = self.block_size * (2**iteration)
            if iteration == 0:
                order = np.arange(n)
            else:
                order = rng.permutation(n)
            iteration_blocks = [
                order[start:start + size] for start in range(0, n, size)
            ]
            blocks.append(iteration_blocks)

            # One batched parity exchange for the whole iteration.
            messages += 2
            bits_leaked += len(iteration_blocks)
            queue = [
                (iteration, index)
                for index, block in enumerate(iteration_blocks)
                if _parity(alice, block) != _parity(bob, block)
            ]

            if budget_exhausted():
                break
            while queue:
                if budget_exhausted():
                    break
                level, block_index = queue.pop()
                block = blocks[level][block_index]
                if _parity(alice, block) == _parity(bob, block):
                    continue  # already fixed by a cascaded correction
                fixed_position = binary_search_and_fix(block)
                # Cascade: every earlier/later realized iteration's block
                # containing the flipped bit may now have odd parity.
                for other_level, other_blocks in enumerate(blocks):
                    if other_level == level:
                        continue
                    for other_index, other_block in enumerate(other_blocks):
                        if fixed_position in other_block and _parity(
                            alice, other_block
                        ) != _parity(bob, other_block):
                            messages += 2
                            bits_leaked += 1
                            queue.append((other_level, other_index))

        return ReconciliationOutcome(
            alice_key=alice,
            bob_key=bob.copy(),
            messages=messages,
            bytes_exchanged=(bits_leaked + 7) // 8,
        )
