"""Information reconciliation: correcting the residual key mismatches.

Four interchangeable reconcilers behind one interface
(:class:`~repro.reconciliation.base.Reconciler`):

- :class:`CascadeReconciliation` -- Brassard-Salvail interactive parity
  protocol (the Han et al. baseline; many round trips).
- :class:`CompressedSensingReconciliation` -- sparse-syndrome scheme with
  OMP decoding (the LoRa-Key / Gao et al. baseline; one message).
- :class:`AutoencoderReconciliation` -- the paper's contribution: Bloom
  transform, learned MLP encoders, subtraction, learned decoder; one
  message, constant-time decoding.
- :class:`NullReconciliation` -- pass-through, for "no reconciliation"
  ablations.

Every outcome records the number of protocol messages and payload bytes
exchanged, which the key-generation-rate benchmarks convert into LoRa
airtime overhead.
"""

from repro.reconciliation.base import Reconciler, ReconciliationOutcome, NullReconciliation
from repro.reconciliation.bloom import PositionPreservingBloomFilter
from repro.reconciliation.cascade import CascadeReconciliation
from repro.reconciliation.compressed_sensing import (
    CompressedSensingReconciliation,
    orthogonal_matching_pursuit,
    refine_integer_correction,
)
from repro.reconciliation.autoencoder import AutoencoderReconciliation
from repro.reconciliation.mac import compute_mac, verify_mac

__all__ = [
    "Reconciler",
    "ReconciliationOutcome",
    "NullReconciliation",
    "PositionPreservingBloomFilter",
    "CascadeReconciliation",
    "CompressedSensingReconciliation",
    "orthogonal_matching_pursuit",
    "refine_integer_correction",
    "AutoencoderReconciliation",
    "compute_mac",
    "verify_mac",
]
