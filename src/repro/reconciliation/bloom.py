"""Position-preserving adapted Bloom filter (InaudibleKey, IPSN 2021).

The paper passes both keys through an "adapted Bloom filter ... that can
retain position information, which means that its output can retain the
same number of mismatched bits as the input key" before encoding, so the
public syndrome reveals the difference of *transformed* keys rather than
of the keys themselves.

We realize that contract as a salted bijection on bit positions plus a
salted XOR pad: mismatch positions map one-to-one and the mismatch count
is exactly preserved, while the transformed key differs from the raw key
in every statistical sense unless the session salt is fixed.  The salt is
public protocol state (a fresh session nonce), so both parties compute
the same transform without any pre-shared secret.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.utils.validation import require, require_positive


class PositionPreservingBloomFilter:
    """Salted permute-and-pad transform over fixed-length bit arrays.

    Args:
        n_bits: Key length the filter operates on.
        salt: Public per-session salt; both parties must use the same one.
    """

    def __init__(self, n_bits: int, salt: bytes = b"vehicle-key"):
        require_positive(n_bits, "n_bits")
        self.n_bits = int(n_bits)
        self.salt = bytes(salt)
        seed_material = hashlib.sha256(
            self.salt + self.n_bits.to_bytes(4, "big")
        ).digest()
        rng = np.random.default_rng(np.frombuffer(seed_material, dtype=np.uint64))
        self._permutation = rng.permutation(self.n_bits)
        self._inverse_permutation = np.argsort(self._permutation)
        self._pad = rng.integers(0, 2, size=self.n_bits, dtype=np.uint8)

    def transform(self, bits: np.ndarray) -> np.ndarray:
        """Apply the filter: permute positions, XOR the salted pad."""
        key = np.asarray(bits, dtype=np.uint8)
        require(key.shape == (self.n_bits,), f"expected {self.n_bits} bits, got {key.shape}")
        return key[self._permutation] ^ self._pad

    def inverse(self, bits: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        key = np.asarray(bits, dtype=np.uint8)
        require(key.shape == (self.n_bits,), f"expected {self.n_bits} bits, got {key.shape}")
        return (key ^ self._pad)[self._inverse_permutation]

    def transform_batch(self, bits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`transform` over a ``[batch, n_bits]`` matrix."""
        keys = np.asarray(bits, dtype=np.uint8)
        require(
            keys.ndim == 2 and keys.shape[1] == self.n_bits,
            f"expected [batch, {self.n_bits}] bits, got {keys.shape}",
        )
        return keys[:, self._permutation] ^ self._pad

    def map_difference_batch(self, differences: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`map_difference` over a ``[batch, n_bits]`` matrix."""
        deltas = np.asarray(differences, dtype=np.uint8)
        require(
            deltas.ndim == 2 and deltas.shape[1] == self.n_bits,
            f"expected [batch, {self.n_bits}] bits, got {deltas.shape}",
        )
        return deltas[:, self._permutation]

    def map_difference(self, difference: np.ndarray) -> np.ndarray:
        """Where a raw-domain difference pattern lands in the filtered domain.

        XOR pads cancel in differences, so only the permutation acts; this
        is the position-preservation property the paper relies on.
        """
        delta = np.asarray(difference, dtype=np.uint8)
        require(delta.shape == (self.n_bits,), f"expected {self.n_bits} bits")
        return delta[self._permutation]
