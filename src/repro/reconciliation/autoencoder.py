"""Autoencoder-based reconciliation: the paper's contribution (Sec. IV-C).

Architecture (paper Fig. 7):

1. Both keys pass a position-preserving Bloom transform (public salt).
2. Each party's transformed key goes through its *own* learned MLP encoder
   (a single 32-unit fully connected layer in the paper): Bob publishes
   his code vector ``y_Bob``; Alice computes ``h = y_Bob - y_Alice``.
3. A learned MLP decoder maps ``h`` to the mismatch pattern
   ``delta = K'_Alice xor K'_Bob``; Alice corrects with one XOR and
   inverts the Bloom transform.

Training is end-to-end on synthetically mismatched key pairs: the loss is
the paper's Eq. 6 objective, realized as binary cross-entropy between the
decoded and true mismatch patterns (its gradients flow back through the
subtraction into both encoders, with opposite signs).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import NotTrainedError
from repro.nn.callbacks import History
from repro.nn.layers.dense import Dense
from repro.nn.losses import BinaryCrossEntropy
from repro.nn.model import Model
from repro.nn.optimizers import Adam
from repro.reconciliation.base import Reconciler, ReconciliationOutcome
from repro.reconciliation.bloom import PositionPreservingBloomFilter
from repro.reconciliation.mac import MAC_BYTES
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_in_range, require_positive


def _to_signed(bits: np.ndarray) -> np.ndarray:
    """{0,1} -> {-1,+1} float representation for the encoders."""
    return 2.0 * bits.astype(float) - 1.0


class AutoencoderReconciliation(Reconciler):
    """Learned single-message reconciliation.

    Args:
        key_bits: Key length N handled per run.
        code_dim: Encoder output width M (the syndrome length; paper: 32).
        decoder_units: Hidden width of the decoder MLP -- the quantity the
            paper sweeps in Fig. 11 (AE-16 ... AE-128).
        decoder_hidden_layers: Hidden layer count (paper: 3).
        salt: Public session salt for the Bloom transform.
        seed: Weight initialization and training-data randomness.
    """

    def __init__(
        self,
        key_bits: int = 64,
        code_dim: int = 32,
        decoder_units: int = 64,
        decoder_hidden_layers: int = 3,
        salt: bytes = b"vehicle-key",
        seed: SeedLike = 0,
    ):
        require_positive(key_bits, "key_bits")
        require_positive(code_dim, "code_dim")
        require_positive(decoder_units, "decoder_units")
        require_positive(decoder_hidden_layers, "decoder_hidden_layers")
        self.key_bits = int(key_bits)
        self.code_dim = int(code_dim)
        self.decoder_units = int(decoder_units)
        self.decoder_hidden_layers = int(decoder_hidden_layers)
        self.bloom = PositionPreservingBloomFilter(self.key_bits, salt=salt)
        self._rng = as_generator(seed)
        self.encoder_bob = Model([Dense(self.code_dim, seed=self._rng, name="enc-bob")])
        self.encoder_alice = Model(
            [Dense(self.code_dim, seed=self._rng, name="enc-alice")]
        )
        decoder_layers = [
            Dense(self.decoder_units, activation="relu", seed=self._rng, name=f"dec-{i}")
            for i in range(self.decoder_hidden_layers)
        ]
        decoder_layers.append(
            Dense(self.key_bits, activation="sigmoid", seed=self._rng, name="dec-out")
        )
        self.decoder = Model(decoder_layers)
        self._loss = BinaryCrossEntropy()
        self._trained = False
        # Tie the encoders' starting point: with equal initial weights the
        # subtraction cancels the key-dependent common term from the first
        # step, which stabilizes end-to-end training dramatically.  The
        # encoders still evolve independently (the paper's f1 != f2).
        dummy = np.zeros((1, self.key_bits))
        self.encoder_bob.forward(dummy)
        self.encoder_alice.forward(dummy)
        self.encoder_alice.set_weights(self.encoder_bob.get_weights())

    # -- training -----------------------------------------------------------
    def _sample_batch(
        self,
        batch_size: int,
        mismatch_rate_range: Tuple[float, float],
        out_of_range_fraction: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Synthetic (Bob keys, Alice keys, mismatch, target) batch.

        Keys are uniform; each pair's flip probability is drawn uniformly
        from ``mismatch_rate_range``, covering the bit-disagreement rates
        the probing pipeline actually produces.  A fraction of pairs is
        drawn far outside that range (25--50% mismatch) with an all-zero
        *target*: the decoder learns bounded-distance behaviour, refusing
        to "correct" keys that are not close to Bob's -- which is what
        keeps an eavesdropper's syndrome-decoding attack at the raw
        channel-agreement level (Sec. V-H1).
        """
        bob = self._rng.integers(0, 2, size=(batch_size, self.key_bits), dtype=np.uint8)
        rates = self._rng.uniform(*mismatch_rate_range, size=(batch_size, 1))
        out_of_range = (
            self._rng.uniform(size=(batch_size, 1)) < out_of_range_fraction
        )
        far_rates = self._rng.uniform(0.25, 0.5, size=(batch_size, 1))
        rates = np.where(out_of_range, far_rates, rates)
        delta = (self._rng.uniform(size=bob.shape) < rates).astype(np.uint8)
        alice = bob ^ delta
        target = np.where(out_of_range, np.zeros_like(delta), delta)
        return bob, alice, delta, target

    def _forward(
        self, bob: np.ndarray, alice: np.ndarray, training: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Run both encoders and the decoder; returns (delta_hat, h)."""
        bob_t = self.bloom.transform_batch(bob)
        alice_t = self.bloom.transform_batch(alice)
        code_bob = self.encoder_bob.forward(_to_signed(bob_t), training=training)
        code_alice = self.encoder_alice.forward(_to_signed(alice_t), training=training)
        h = code_bob - code_alice
        return self.decoder.forward(h, training=training), h

    def fit(
        self,
        n_samples: int = 20000,
        epochs: int = 50,
        batch_size: int = 128,
        mismatch_rate_range: Tuple[float, float] = (0.0, 0.08),
        learning_rate: float = 2e-3,
        out_of_range_fraction: float = 0.25,
    ) -> History:
        """Train encoders and decoder end-to-end on synthetic mismatches."""
        require_positive(n_samples, "n_samples")
        require_positive(epochs, "epochs")
        require_in_range(mismatch_rate_range[0], 0.0, 0.5, "mismatch_rate_range[0]")
        require_in_range(mismatch_rate_range[1], 0.0, 0.5, "mismatch_rate_range[1]")
        require(
            mismatch_rate_range[0] <= mismatch_rate_range[1],
            "mismatch_rate_range must be (low, high)",
        )
        optimizer = Adam(learning_rate=learning_rate)
        history = History()
        bob, alice, _, target = self._sample_batch(
            n_samples, mismatch_rate_range, out_of_range_fraction
        )
        delta_bloom = self.bloom.map_difference_batch(target)

        for epoch in range(epochs):
            order = self._rng.permutation(n_samples)
            losses = []
            for start in range(0, n_samples, batch_size):
                idx = order[start:start + batch_size]
                target = delta_bloom[idx].astype(float)
                prediction, _ = self._forward(bob[idx], alice[idx], training=True)
                losses.append(self._loss.value(target, prediction))
                grad_h = self.decoder.backward(self._loss.gradient(target, prediction))
                self.encoder_bob.backward(grad_h)
                self.encoder_alice.backward(-grad_h)
                optimizer.apply(
                    self.encoder_bob._parameter_list()
                    + self.encoder_alice._parameter_list()
                    + self.decoder._parameter_list()
                )
            history.record(epoch, loss=float(np.mean(losses)))
        self._trained = True
        return history

    # -- protocol ------------------------------------------------------------
    def _require_trained(self) -> None:
        if not self._trained:
            raise NotTrainedError(
                "AutoencoderReconciliation.fit() must run before reconciling"
            )

    def bob_syndrome(self, bob_key: np.ndarray) -> np.ndarray:
        """What Bob transmits: his encoder's code vector (length M)."""
        self._require_trained()
        key = np.asarray(bob_key, dtype=np.uint8)
        require(key.shape == (self.key_bits,), f"expected {self.key_bits}-bit key")
        transformed = self.bloom.transform(key)
        return self.encoder_bob.forward(_to_signed(transformed)[np.newaxis, :])[0]

    def alice_correct(
        self, alice_key: np.ndarray, syndrome: np.ndarray
    ) -> np.ndarray:
        """Alice's side: decode the mismatch pattern and apply it."""
        self._require_trained()
        key = np.asarray(alice_key, dtype=np.uint8)
        require(key.shape == (self.key_bits,), f"expected {self.key_bits}-bit key")
        require(syndrome.shape == (self.code_dim,), "syndrome has the wrong length")
        transformed = self.bloom.transform(key)
        code_alice = self.encoder_alice.forward(_to_signed(transformed)[np.newaxis, :])[0]
        h = (syndrome - code_alice)[np.newaxis, :]
        delta = (self.decoder.forward(h)[0] > 0.5).astype(np.uint8)
        corrected = transformed ^ delta
        return self.bloom.inverse(corrected)

    def reconcile(self, alice_key, bob_key) -> ReconciliationOutcome:
        alice = np.asarray(alice_key, dtype=np.uint8)
        bob = np.asarray(bob_key, dtype=np.uint8)
        syndrome = self.bob_syndrome(bob)
        corrected = self.alice_correct(alice, syndrome)
        return ReconciliationOutcome(
            alice_key=corrected,
            bob_key=bob.copy(),
            messages=1,
            bytes_exchanged=4 * self.code_dim + MAC_BYTES,
        )

    # -- persistence ------------------------------------------------------------
    #: Artifact kind of a saved reconciler.
    ARTIFACT_KIND = "autoencoder-reconciler"

    def _architecture(self) -> dict:
        """Hyperparameters a weight file must match to be loadable."""
        return {
            "key_bits": self.key_bits,
            "code_dim": self.code_dim,
            "decoder_units": self.decoder_units,
            "decoder_hidden_layers": self.decoder_hidden_layers,
        }

    def _all_layers(self):
        return (
            self.encoder_bob.layers
            + self.encoder_alice.layers
            + self.decoder.layers
        )

    def save(self, path) -> None:
        """Atomically persist all weights as a checksummed artifact.

        The artifact embeds the reconciler's architecture hyperparameters,
        verified again at load time.
        """
        from repro.nn.serialization import save_weights

        self._require_trained()
        save_weights(
            self._all_layers(),
            path,
            kind=self.ARTIFACT_KIND,
            metadata={"architecture": self._architecture()},
        )

    def load(self, path) -> None:
        """Load weights written by :meth:`save` into a same-shape instance.

        The Bloom salt is public protocol state and must match the saving
        instance's; it is part of the constructor, not the weight file.

        Raises :class:`~repro.exceptions.CorruptArtifactError` on a
        truncated or tampered file and
        :class:`~repro.exceptions.ArtifactMismatchError` when the stored
        architecture or kind differs.  Legacy plain ``.npz`` files load
        with a warning.
        """
        from repro.nn.serialization import assign_weights
        from repro.utils.artifact import (
            load_artifact,
            require_matching_architecture,
        )

        artifact = load_artifact(path, kind=self.ARTIFACT_KIND)
        require_matching_architecture(artifact, self._architecture(), path)
        dummy_key = np.zeros((1, self.key_bits))
        dummy_code = np.zeros((1, self.code_dim))
        self.encoder_bob.forward(dummy_key)
        self.encoder_alice.forward(dummy_key)
        self.decoder.forward(dummy_code)
        assign_weights(self._all_layers(), artifact.arrays)
        self._trained = True

    # -- introspection --------------------------------------------------------
    def decode_mismatch_probabilities(
        self, alice_key: np.ndarray, syndrome: np.ndarray
    ) -> np.ndarray:
        """Raw decoder probabilities (bloom domain), for analysis plots."""
        self._require_trained()
        transformed = self.bloom.transform(np.asarray(alice_key, dtype=np.uint8))
        code_alice = self.encoder_alice.forward(_to_signed(transformed)[np.newaxis, :])[0]
        h = (syndrome - code_alice)[np.newaxis, :]
        return self.decoder.forward(h)[0]
