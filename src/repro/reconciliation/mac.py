"""Message authentication for reconciliation traffic (paper Sec. IV-C).

Bob appends ``MAC(K'_Bob, y_Bob)`` to his syndrome so Alice can detect a
man-in-the-middle modifying or injecting messages.  The MAC key is the
party's (Bloom-transformed) measurement-derived key: an attacker without
a matching channel view cannot forge it.

The record layer of :mod:`repro.secure` reuses these primitives on its
hot path, so this module also exposes the HMAC *midstate* machinery:
:func:`hmac_midstates` primes the inner/outer SHA-256 states of a key
once, after which each MAC costs two ``copy()``-and-finalize operations
instead of a full ``hmac.new`` (which re-hashes both padded key blocks
on every call).  :class:`PrecomputedMacKey` wraps the pair behind the
same truncated-tag contract as :func:`compute_mac`; the two are
bit-for-bit interchangeable and the tests pin that equivalence.
"""

from __future__ import annotations

import hashlib
import hmac

import numpy as np

from repro.utils.bits import bits_to_bytes
from repro.utils.validation import require

MAC_BYTES = 16

#: HMAC-SHA256 block width; keys are zero-padded (or pre-hashed) to it.
_HMAC_BLOCK = 64

#: Byte-translation tables applying the HMAC ipad/opad XOR in one C call.
_IPAD_TRANS = bytes(byte ^ 0x36 for byte in range(256))
_OPAD_TRANS = bytes(byte ^ 0x5C for byte in range(256))

try:
    # The pure-builtin SHA-256 has lower per-call overhead than the
    # OpenSSL binding, which matters for the record layer's many tiny
    # keystream-block digests; OpenSSL's higher bulk throughput still
    # wins for long messages (hashlib.sha256 stays the default factory).
    from _sha256 import sha256 as fast_sha256
except ImportError:  # pragma: no cover - _sha256 ships with CPython
    fast_sha256 = hashlib.sha256


def hmac_midstates(key: bytes, factory=hashlib.sha256):
    """The primed ``(inner, outer)`` HMAC-SHA256 digests of ``key``.

    ``HMAC(key, message)`` is then exactly::

        inner_copy = inner.copy(); inner_copy.update(message)
        outer_copy = outer.copy(); outer_copy.update(inner_copy.digest())
        outer_copy.digest()

    which skips re-hashing the two padded 64-byte key blocks on every
    call.  ``factory`` picks the SHA-256 implementation; every choice
    yields identical bytes (SHA-256 is SHA-256), only the per-call
    overhead profile differs.
    """
    key = bytes(key)
    if len(key) > _HMAC_BLOCK:
        key = factory(key).digest()
    key = key.ljust(_HMAC_BLOCK, b"\x00")
    return factory(key.translate(_IPAD_TRANS)), factory(key.translate(_OPAD_TRANS))


class PrecomputedMacKey:
    """A byte-string MAC key with its HMAC midstates computed once.

    Wire-compatible with :func:`compute_mac`: for any whole-byte key,
    ``PrecomputedMacKey(key).tag(m)`` equals
    ``compute_mac(bytes_to_bits(key), m)``.
    """

    __slots__ = ("_inner", "_outer")

    def __init__(self, key: bytes):
        self._inner, self._outer = hmac_midstates(key)

    def tag(self, message: bytes) -> bytes:
        """Truncated HMAC-SHA256 of ``message`` (two copy-finalize ops)."""
        require(len(message) > 0, "refusing to MAC an empty message")
        inner = self._inner.copy()
        inner.update(message)
        outer = self._outer.copy()
        outer.update(inner.digest())
        return outer.digest()[:MAC_BYTES]

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check of a tag produced by :meth:`tag`."""
        return hmac.compare_digest(self.tag(message), bytes(tag))


def mac_key_bytes(key_bits: np.ndarray) -> bytes:
    """The byte encoding of a bit-array MAC key (zero-padded to bytes)."""
    bits = np.asarray(key_bits, dtype=np.uint8)
    remainder = bits.size % 8
    if remainder:
        bits = np.concatenate([bits, np.zeros(8 - remainder, dtype=np.uint8)])
    return bits_to_bytes(bits)


# Internal alias kept for the existing call sites.
_key_bytes = mac_key_bytes


def compute_mac(key_bits: np.ndarray, message: bytes) -> bytes:
    """Truncated HMAC-SHA256 of ``message`` under a bit-array key."""
    require(len(message) > 0, "refusing to MAC an empty message")
    return hmac.new(_key_bytes(key_bits), message, hashlib.sha256).digest()[:MAC_BYTES]


def verify_mac(key_bits: np.ndarray, message: bytes, tag: bytes) -> bool:
    """Constant-time check of a tag produced by :func:`compute_mac`."""
    return hmac.compare_digest(compute_mac(key_bits, message), bytes(tag))
