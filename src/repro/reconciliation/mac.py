"""Message authentication for reconciliation traffic (paper Sec. IV-C).

Bob appends ``MAC(K'_Bob, y_Bob)`` to his syndrome so Alice can detect a
man-in-the-middle modifying or injecting messages.  The MAC key is the
party's (Bloom-transformed) measurement-derived key: an attacker without
a matching channel view cannot forge it.
"""

from __future__ import annotations

import hashlib
import hmac

import numpy as np

from repro.utils.bits import bits_to_bytes
from repro.utils.validation import require

MAC_BYTES = 16


def _key_bytes(key_bits: np.ndarray) -> bytes:
    bits = np.asarray(key_bits, dtype=np.uint8)
    remainder = bits.size % 8
    if remainder:
        bits = np.concatenate([bits, np.zeros(8 - remainder, dtype=np.uint8)])
    return bits_to_bytes(bits)


def compute_mac(key_bits: np.ndarray, message: bytes) -> bytes:
    """Truncated HMAC-SHA256 of ``message`` under a bit-array key."""
    require(len(message) > 0, "refusing to MAC an empty message")
    return hmac.new(_key_bytes(key_bits), message, hashlib.sha256).digest()[:MAC_BYTES]


def verify_mac(key_bits: np.ndarray, message: bytes, tag: bytes) -> bool:
    """Constant-time check of a tag produced by :func:`compute_mac`."""
    return hmac.compare_digest(compute_mac(key_bits, message), bytes(tag))
