"""Compressed-sensing reconciliation with OMP decoding.

The LoRa-Key / Gao et al. / H2B scheme: because the two keys differ in only
a few positions, the difference vector ``e = K_Bob - K_Alice`` (entries in
{-1, 0, +1}) is sparse and can be recovered from a low-dimensional random
projection.  Bob publishes ``y_Bob = Phi K_Bob``; Alice computes
``Phi K_Bob - Phi K_Alice = Phi e`` and recovers ``e`` with orthogonal
matching pursuit.  Decoding is iterative -- the computational cost the
paper's one-shot autoencoder decoder removes (Fig. 11).

The paper sizes the baseline's random matrix at 20 x 64 (Sec. V-F): keys
are processed in 64-bit blocks with a 20-measurement syndrome each.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.reconciliation.base import Reconciler, ReconciliationOutcome
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


def orthogonal_matching_pursuit(
    matrix: np.ndarray,
    target: np.ndarray,
    max_sparsity: int,
    tolerance: float = 1e-6,
) -> Tuple[np.ndarray, int]:
    """Greedy sparse recovery: solve ``target ~= matrix @ x`` with sparse x.

    Args:
        matrix: Sensing matrix of shape ``[m, n]``.
        target: Measurement vector of length ``m``.
        max_sparsity: Maximum support size to try.
        tolerance: Stop when the residual norm falls below this.

    Returns:
        ``(x, iterations)``: the recovered coefficient vector (dense, with
        at most ``max_sparsity`` nonzeros) and the iterations used.
    """
    m, n = matrix.shape
    require(target.shape == (m,), "target length must match matrix rows")
    require_positive(max_sparsity, "max_sparsity")
    norms = np.linalg.norm(matrix, axis=0)
    norms[norms == 0] = 1.0
    residual = target.astype(float).copy()
    support: list = []
    solution = np.zeros(n)
    iterations = 0
    for _ in range(min(max_sparsity, m)):
        if np.linalg.norm(residual) <= tolerance:
            break
        iterations += 1
        correlations = np.abs(matrix.T @ residual) / norms
        correlations[support] = -np.inf
        best = int(np.argmax(correlations))
        support.append(best)
        submatrix = matrix[:, support]
        coefficients, *_ = np.linalg.lstsq(submatrix, target, rcond=None)
        residual = target - submatrix @ coefficients
    if support:
        solution[support] = coefficients
    return solution, iterations


class CompressedSensingReconciliation(Reconciler):
    """CS syndrome reconciliation over fixed-size key blocks.

    Args:
        measurements: Syndrome length m per block (paper baseline: 20).
        block_bits: Key block size n per syndrome (paper baseline: 64).
        seed: Public randomness for the sensing matrix (both parties
            derive the same matrix).
    """

    def __init__(
        self, measurements: int = 20, block_bits: int = 64, seed: SeedLike = 0
    ):
        require_positive(measurements, "measurements")
        require_positive(block_bits, "block_bits")
        self.measurements = int(measurements)
        self.block_bits = int(block_bits)
        rng = as_generator(seed)
        self._matrix = rng.standard_normal((self.measurements, self.block_bits))
        self._matrix /= np.sqrt(self.measurements)
        self.last_decoder_iterations = 0

    def reconcile(self, alice_key, bob_key) -> ReconciliationOutcome:
        alice = np.asarray(alice_key, dtype=np.uint8).copy()
        bob = np.asarray(bob_key, dtype=np.uint8)
        require(alice.shape == bob.shape, "keys must have equal length")
        require(alice.ndim == 1, "keys must be 1-D")
        require(
            alice.size % self.block_bits == 0,
            f"key length {alice.size} must be a multiple of block_bits="
            f"{self.block_bits}",
        )
        n_blocks = alice.size // self.block_bits
        total_iterations = 0
        # A recoverable difference has at most ~m/4 flips per block.
        max_sparsity = max(1, self.measurements // 2)

        for block in range(n_blocks):
            lo = block * self.block_bits
            hi = lo + self.block_bits
            syndrome_bob = self._matrix @ bob[lo:hi].astype(float)
            syndrome_alice = self._matrix @ alice[lo:hi].astype(float)
            difference, iterations = orthogonal_matching_pursuit(
                self._matrix, syndrome_bob - syndrome_alice, max_sparsity
            )
            total_iterations += iterations
            correction = np.rint(difference).astype(int)
            corrected = alice[lo:hi].astype(int) + correction
            # Corrections outside {0, 1} are decoder errors; clamp so the
            # result is still a key (the bits simply stay wrong).
            alice[lo:hi] = np.clip(corrected, 0, 1).astype(np.uint8)

        self.last_decoder_iterations = total_iterations
        return ReconciliationOutcome(
            alice_key=alice,
            bob_key=bob.copy(),
            messages=1,
            bytes_exchanged=4 * self.measurements * n_blocks,
        )
