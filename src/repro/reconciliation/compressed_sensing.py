"""Compressed-sensing reconciliation with OMP decoding.

The LoRa-Key / Gao et al. / H2B scheme: because the two keys differ in only
a few positions, the difference vector ``e = K_Bob - K_Alice`` (entries in
{-1, 0, +1}) is sparse and can be recovered from a low-dimensional random
projection.  Bob publishes ``y_Bob = Phi K_Bob``; Alice computes
``Phi K_Bob - Phi K_Alice = Phi e`` and recovers ``e`` with orthogonal
matching pursuit.  Decoding is iterative -- the computational cost the
paper's one-shot autoencoder decoder removes (Fig. 11).

The paper sizes the baseline's random matrix at 20 x 64 (Sec. V-F): keys
are processed in 64-bit blocks with a 20-measurement syndrome each.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.reconciliation.base import Reconciler, ReconciliationOutcome
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive


def orthogonal_matching_pursuit(
    matrix: np.ndarray,
    target: np.ndarray,
    max_sparsity: int,
    tolerance: float = 1e-6,
    exclude: Tuple[int, ...] = (),
) -> Tuple[np.ndarray, int]:
    """Greedy sparse recovery: solve ``target ~= matrix @ x`` with sparse x.

    Args:
        matrix: Sensing matrix of shape ``[m, n]``.
        target: Measurement vector of length ``m``.
        max_sparsity: Maximum support size to try.
        tolerance: Stop when the residual norm falls below this.
        exclude: Atom indices the pursuit may never select.  Used by the
            backtracking decoder to retry a failed decode without the
            atom the previous attempt greedily (and wrongly) led with.

    Returns:
        ``(x, iterations)``: the recovered coefficient vector (dense, with
        at most ``max_sparsity`` nonzeros) and the iterations used.
    """
    m, n = matrix.shape
    require(target.shape == (m,), "target length must match matrix rows")
    require_positive(max_sparsity, "max_sparsity")
    norms = np.linalg.norm(matrix, axis=0)
    norms[norms == 0] = 1.0
    residual = target.astype(float).copy()
    support: list = []
    blocked = list(exclude)
    solution = np.zeros(n)
    iterations = 0
    for _ in range(min(max_sparsity, m)):
        if np.linalg.norm(residual) <= tolerance:
            break
        iterations += 1
        correlations = np.abs(matrix.T @ residual) / norms
        correlations[support] = -np.inf
        correlations[blocked] = -np.inf
        if not np.isfinite(correlations.max()):
            break
        best = int(np.argmax(correlations))
        support.append(best)
        submatrix = matrix[:, support]
        coefficients, *_ = np.linalg.lstsq(submatrix, target, rcond=None)
        residual = target - submatrix @ coefficients
    if support:
        solution[support] = coefficients
    return solution, iterations


def refine_integer_correction(
    matrix: np.ndarray,
    target: np.ndarray,
    correction: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    tolerance: float = 1e-6,
    max_moves: int | None = None,
) -> Tuple[np.ndarray, int]:
    """Greedy integer descent on ``||target - matrix @ e||`` over a box.

    OMP recovers the difference vector in real arithmetic and only then
    rounds -- when the greedy atom selection goes wrong (coherent
    columns), the rounded vector can fail to reproduce the syndrome at
    all.  This pass repairs such decodes by exploiting the structure OMP
    ignores: every entry of the true difference is an integer confined to
    ``[lower_j, upper_j]`` (a key bit can only move to 0 or 1).  Each
    move changes one coordinate by +/-1, picking the single change that
    most reduces the squared residual, and stops at a residual below
    ``tolerance`` or when no move improves -- so the result is never
    worse than the rounded OMP output it starts from.

    Args:
        matrix: Sensing matrix of shape ``[m, n]``.
        target: Measurement vector of length ``m``.
        correction: Integer starting point of length ``n`` (clipped into
            the box before refinement).
        lower: Per-coordinate integer lower bounds.
        upper: Per-coordinate integer upper bounds.
        tolerance: Residual norm considered an exact decode.
        max_moves: Move budget (default ``4 * n``).

    Returns:
        ``(refined, moves)``: the refined integer vector and the number
        of single-coordinate moves applied.
    """
    m, n = matrix.shape
    require(target.shape == (m,), "target length must match matrix rows")
    budget = 4 * n if max_moves is None else int(max_moves)
    refined = np.clip(correction.astype(int), lower, upper)
    residual = target.astype(float) - matrix @ refined
    gram_diag = np.einsum("ij,ij->j", matrix, matrix)
    moves = 0
    while moves < budget and np.linalg.norm(residual) > tolerance:
        # Gain of moving coordinate j by s in {-1,+1}:
        #   ||r||^2 - ||r - s*phi_j||^2 = 2 s <phi_j, r> - ||phi_j||^2
        inner = matrix.T @ residual
        gain_up = 2.0 * inner - gram_diag
        gain_down = -2.0 * inner - gram_diag
        gain_up[refined >= upper] = -np.inf
        gain_down[refined <= lower] = -np.inf
        best_up = int(np.argmax(gain_up))
        best_down = int(np.argmax(gain_down))
        if gain_up[best_up] >= gain_down[best_down]:
            best, step, gain = best_up, 1, gain_up[best_up]
        else:
            best, step, gain = best_down, -1, gain_down[best_down]
        if gain <= tolerance:
            break
        refined[best] += step
        residual -= step * matrix[:, best]
        moves += 1
    return refined, moves


class CompressedSensingReconciliation(Reconciler):
    """CS syndrome reconciliation over fixed-size key blocks.

    Args:
        measurements: Syndrome length m per block (paper baseline: 20).
        block_bits: Key block size n per syndrome (paper baseline: 64).
        seed: Public randomness for the sensing matrix (both parties
            derive the same matrix).
        max_restarts: Backtracking budget per block: how many times a
            decode that fails to reproduce the syndrome is retried with
            the previous attempt's (wrong) leading atom banned.
    """

    def __init__(
        self,
        measurements: int = 20,
        block_bits: int = 64,
        seed: SeedLike = 0,
        max_restarts: int = 8,
    ):
        require_positive(measurements, "measurements")
        require_positive(block_bits, "block_bits")
        require(max_restarts >= 0, "max_restarts must be non-negative")
        self.measurements = int(measurements)
        self.block_bits = int(block_bits)
        self.max_restarts = int(max_restarts)
        rng = as_generator(seed)
        self._matrix = rng.standard_normal((self.measurements, self.block_bits))
        self._matrix /= np.sqrt(self.measurements)
        self.last_decoder_iterations = 0

    def _decode_block(self, target, bits, max_sparsity, tolerance=1e-6):
        """Decode one block's difference vector from its syndrome gap.

        OMP is greedy: with coherent sensing columns its first atom pick
        is occasionally wrong, and the rounded decode then fails to
        reproduce the syndrome at all.  Every decode is therefore
        verified (the true difference gives a ~0 residual) and repaired
        in two stages: a box-constrained integer descent (the true
        difference is integer, and a bit at 0 can only move up, a bit at
        1 only down -- structure real-valued OMP ignores), then, if the
        residual still stands, a full retry with the misleading leading
        atom banned.  Returns ``(correction, iterations)`` for the best
        attempt; an unrepairable decode leaves those bits wrong, and the
        result is still a key.
        """
        norms = np.linalg.norm(self._matrix, axis=0)
        norms[norms == 0] = 1.0
        initial_ranking = np.argsort(-np.abs(self._matrix.T @ target) / norms)
        best_correction = np.zeros(bits.size, dtype=int)
        best_residual = float(np.linalg.norm(target))
        iterations = 0
        for attempt in range(1 + self.max_restarts):
            # Attempt k bans the k highest-correlation atoms: attempt
            # k-1 led with the (k-1)-th of them and failed verification.
            banned = tuple(int(atom) for atom in initial_ranking[:attempt])
            difference, omp_iterations = orthogonal_matching_pursuit(
                self._matrix, target, max_sparsity, exclude=banned
            )
            iterations += omp_iterations
            correction, moves = refine_integer_correction(
                self._matrix,
                target,
                np.rint(difference).astype(int),
                lower=-bits,
                upper=1 - bits,
            )
            iterations += moves
            residual = float(np.linalg.norm(target - self._matrix @ correction))
            if residual < best_residual:
                best_residual = residual
                best_correction = correction
            if best_residual <= tolerance:
                break
        return best_correction, iterations

    def reconcile(self, alice_key, bob_key) -> ReconciliationOutcome:
        alice = np.asarray(alice_key, dtype=np.uint8).copy()
        bob = np.asarray(bob_key, dtype=np.uint8)
        require(alice.shape == bob.shape, "keys must have equal length")
        require(alice.ndim == 1, "keys must be 1-D")
        require(
            alice.size % self.block_bits == 0,
            f"key length {alice.size} must be a multiple of block_bits="
            f"{self.block_bits}",
        )
        n_blocks = alice.size // self.block_bits
        total_iterations = 0
        # A recoverable difference has at most ~m/4 flips per block.
        max_sparsity = max(1, self.measurements // 2)

        for block in range(n_blocks):
            lo = block * self.block_bits
            hi = lo + self.block_bits
            syndrome_bob = self._matrix @ bob[lo:hi].astype(float)
            syndrome_alice = self._matrix @ alice[lo:hi].astype(float)
            bits = alice[lo:hi].astype(int)
            correction, iterations = self._decode_block(
                syndrome_bob - syndrome_alice, bits, max_sparsity
            )
            total_iterations += iterations
            alice[lo:hi] = np.clip(bits + correction, 0, 1).astype(np.uint8)

        self.last_decoder_iterations = total_iterations
        return ReconciliationOutcome(
            alice_key=alice,
            bob_key=bob.copy(),
            messages=1,
            bytes_exchanged=4 * self.measurements * n_blocks,
        )
