"""Linear complexity test, SP 800-22 section 2.10.

Uses the Berlekamp-Massey algorithm to find the shortest LFSR generating
each block; a truly random block's complexity concentrates tightly around
M/2 with a known discrete distribution.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require, require_positive

_CATEGORY_PROBABILITIES = np.array(
    [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833]
)


def berlekamp_massey(bits: np.ndarray) -> int:
    """Length of the shortest LFSR generating ``bits`` (over GF(2))."""
    sequence = np.asarray(bits, dtype=np.int8)
    n = sequence.size
    connection = np.zeros(n + 1, dtype=np.int8)
    backup = np.zeros(n + 1, dtype=np.int8)
    connection[0] = backup[0] = 1
    complexity = 0
    last_change = -1
    for position in range(n):
        discrepancy = int(sequence[position])
        if complexity > 0:
            window = sequence[position - complexity:position][::-1]
            discrepancy ^= int(
                np.bitwise_and(connection[1:complexity + 1], window).sum() & 1
            )
        if discrepancy == 0:
            continue
        candidate = connection.copy()
        offset = position - last_change
        length = min(n + 1 - offset, n + 1)
        connection[offset:offset + length] ^= backup[:length]
        if 2 * complexity <= position:
            complexity = position + 1 - complexity
            last_change = position
            backup = candidate
    return complexity


def linear_complexity_test(sequence, block_size: int = 500) -> float:
    """p-value for the per-block linear complexity distribution."""
    require_positive(block_size, "block_size")
    bits = as_bits(sequence, minimum_length=block_size)
    n_blocks = bits.size // block_size
    require(n_blocks >= 1, "need at least one full block")
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)

    m = block_size
    mean = (
        m / 2.0
        + (9.0 + (-1.0) ** (m + 1)) / 36.0
        - (m / 3.0 + 2.0 / 9.0) / 2.0**m
    )
    counts = np.zeros(7)
    for block in blocks:
        t = (-1.0) ** m * (berlekamp_massey(block) - mean) + 2.0 / 9.0
        if t <= -2.5:
            counts[0] += 1
        elif t <= -1.5:
            counts[1] += 1
        elif t <= -0.5:
            counts[2] += 1
        elif t <= 0.5:
            counts[3] += 1
        elif t <= 1.5:
            counts[4] += 1
        elif t <= 2.5:
            counts[5] += 1
        else:
            counts[6] += 1
    expected = n_blocks * _CATEGORY_PROBABILITIES
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(gammaincc(3.0, chi_squared / 2.0))
