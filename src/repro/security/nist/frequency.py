"""Frequency (monobit) test, SP 800-22 section 2.1."""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.security.nist._common import as_bits


def frequency_test(sequence) -> float:
    """p-value for the hypothesis that ones and zeros are equally likely."""
    bits = as_bits(sequence, minimum_length=8)
    partial_sum = np.sum(2 * bits.astype(float) - 1.0)
    statistic = abs(partial_sum) / np.sqrt(bits.size)
    return float(erfc(statistic / np.sqrt(2.0)))
