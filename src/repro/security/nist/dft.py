"""Discrete Fourier transform (spectral) test, SP 800-22 section 2.6."""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.security.nist._common import as_bits


def dft_test(sequence) -> float:
    """p-value for excess low-magnitude periodicities in the spectrum."""
    bits = as_bits(sequence, minimum_length=64)
    n = bits.size
    signal = 2.0 * bits.astype(float) - 1.0
    magnitudes = np.abs(np.fft.fft(signal))[: n // 2]
    threshold = np.sqrt(np.log(1.0 / 0.05) * n)
    expected_below = 0.95 * n / 2.0
    observed_below = float(np.count_nonzero(magnitudes < threshold))
    difference = (observed_below - expected_below) / np.sqrt(
        n * 0.95 * 0.05 / 4.0
    )
    return float(erfc(abs(difference) / np.sqrt(2.0)))
