"""Longest run of ones in a block, SP 800-22 section 2.4."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

# (block size M, category upper edges, category probabilities) per the
# SP 800-22 tables, chosen by sequence length.
_CONFIGS = (
    (128, 8, (1, 2, 3), (0.2148, 0.3672, 0.2305, 0.1875)),
    (6272, 128, (4, 5, 6, 7, 8), (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
    (
        750000,
        10000,
        (10, 11, 12, 13, 14, 15),
        (0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727),
    ),
)


def _longest_run_of_ones(block: np.ndarray) -> int:
    longest = current = 0
    for bit in block:
        current = current + 1 if bit else 0
        longest = max(longest, current)
    return longest


def longest_run_test(sequence) -> float:
    """p-value for the distribution of per-block longest runs of ones."""
    bits = as_bits(sequence, minimum_length=128)
    # Pick the largest configuration whose minimum length the sequence meets.
    applicable = [cfg for cfg in _CONFIGS if bits.size >= cfg[0]]
    require(bool(applicable), "sequence too short for the longest-run test")
    _, block_size, edges, probabilities = applicable[-1]
    n_blocks = bits.size // block_size
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    counts = np.zeros(len(edges) + 1)
    low = edges[0]
    high = edges[-1]
    for block in blocks:
        run = _longest_run_of_ones(block)
        category = int(np.clip(run, low, high + 1)) - low
        counts[category] += 1
    expected = n_blocks * np.asarray(probabilities)
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(gammaincc(len(edges) / 2.0, chi_squared / 2.0))
