"""Serial test, SP 800-22 section 2.11."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require, require_positive


def _psi_squared(bits: np.ndarray, m: int) -> float:
    """``psi^2_m`` statistic over overlapping wrapped m-bit patterns."""
    if m <= 0:
        return 0.0
    n = bits.size
    extended = np.concatenate([bits, bits[: m - 1]]) if m > 1 else bits
    codes = np.zeros(n, dtype=np.int64)
    for offset in range(m):
        codes = (codes << 1) | extended[offset:offset + n]
    counts = np.bincount(codes, minlength=2**m).astype(float)
    return float((2.0**m / n) * np.sum(counts**2) - n)


def serial_test(sequence, m: int = 4) -> Tuple[float, float]:
    """Both serial-test p-values ``(p1, p2)`` for pattern length m."""
    require_positive(m, "m")
    bits = as_bits(sequence, minimum_length=2 ** (m + 2))
    require(m >= 2, "serial test needs m >= 2")
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2.0 * psi_m1 + psi_m2
    p1 = float(gammaincc(2.0 ** (m - 2), delta1 / 2.0))
    p2 = float(gammaincc(2.0 ** (m - 3), delta2 / 2.0))
    return p1, p2
