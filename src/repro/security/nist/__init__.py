"""NIST SP 800-22 statistical tests (the eight reported in Table II).

Each module implements one test as a function from a 0/1 bit array to a
p-value; :class:`NistTestSuite` runs them all with the paper's pass
criterion (p >= 0.01).
"""

from repro.security.nist.suite import NistTestSuite, run_nist_suite
from repro.security.nist.frequency import frequency_test
from repro.security.nist.block_frequency import block_frequency_test
from repro.security.nist.longest_run import longest_run_test
from repro.security.nist.dft import dft_test
from repro.security.nist.cumulative_sums import cumulative_sums_test
from repro.security.nist.approximate_entropy import approximate_entropy_test
from repro.security.nist.non_overlapping import non_overlapping_template_test
from repro.security.nist.linear_complexity import linear_complexity_test, berlekamp_massey
from repro.security.nist.runs import runs_test
from repro.security.nist.serial import serial_test
from repro.security.nist.overlapping_template import overlapping_template_test
from repro.security.nist.universal import universal_test
from repro.security.nist.matrix_rank import matrix_rank_test, gf2_rank
from repro.security.nist.random_excursions import (
    random_excursions_test,
    random_excursions_variant_test,
)

__all__ = [
    "NistTestSuite",
    "run_nist_suite",
    "frequency_test",
    "block_frequency_test",
    "longest_run_test",
    "dft_test",
    "cumulative_sums_test",
    "approximate_entropy_test",
    "non_overlapping_template_test",
    "linear_complexity_test",
    "berlekamp_massey",
    "runs_test",
    "serial_test",
    "overlapping_template_test",
    "universal_test",
    "matrix_rank_test",
    "gf2_rank",
    "random_excursions_test",
    "random_excursions_variant_test",
]
