"""Runs test, SP 800-22 section 2.3."""

from __future__ import annotations

import numpy as np
from scipy.special import erfc

from repro.security.nist._common import as_bits


def runs_test(sequence) -> float:
    """p-value for the total number of runs (maximal same-bit blocks).

    Applies the standard prerequisite: if the frequency test would fail
    decisively (|pi - 1/2| too large) the p-value is 0 by definition.
    """
    bits = as_bits(sequence, minimum_length=16)
    n = bits.size
    proportion = bits.mean()
    if abs(proportion - 0.5) >= 2.0 / np.sqrt(n):
        return 0.0
    observed_runs = 1 + int(np.count_nonzero(bits[1:] != bits[:-1]))
    expected = 2.0 * n * proportion * (1.0 - proportion)
    statistic = abs(observed_runs - expected) / (
        2.0 * np.sqrt(2.0 * n) * proportion * (1.0 - proportion)
    )
    return float(erfc(statistic / np.sqrt(2.0)))
