"""Binary matrix rank test, SP 800-22 section 2.5."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

_M = 32  # matrix rows
_Q = 32  # matrix columns

# P(rank = 32), P(rank = 31), P(rank <= 30) for random 32x32 GF(2) matrices.
_RANK_PROBABILITIES = (0.2888, 0.5776, 0.1336)


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of a 0/1 matrix over GF(2) (Gaussian elimination)."""
    work = matrix.copy().astype(np.int8)
    rows, cols = work.shape
    rank = 0
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot is None:
            continue
        work[[pivot_row, pivot]] = work[[pivot, pivot_row]]
        for row in range(rows):
            if row != pivot_row and work[row, col]:
                work[row] ^= work[pivot_row]
        pivot_row += 1
        rank += 1
        if pivot_row == rows:
            break
    return rank


def matrix_rank_test(sequence) -> float:
    """p-value for the rank distribution of 32x32 bit matrices."""
    bits = as_bits(sequence, minimum_length=_M * _Q)
    n_matrices = bits.size // (_M * _Q)
    require(n_matrices >= 4, "need at least four 32x32 matrices (4096+ bits)")
    counts = np.zeros(3)
    for index in range(n_matrices):
        block = bits[index * _M * _Q:(index + 1) * _M * _Q]
        rank = gf2_rank(block.reshape(_M, _Q))
        if rank == _M:
            counts[0] += 1
        elif rank == _M - 1:
            counts[1] += 1
        else:
            counts[2] += 1
    expected = n_matrices * np.asarray(_RANK_PROBABILITIES)
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(gammaincc(1.0, chi_squared / 2.0))
