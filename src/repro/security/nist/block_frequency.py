"""Block frequency test, SP 800-22 section 2.2."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require, require_positive


def block_frequency_test(sequence, block_size: int = 128) -> float:
    """p-value for per-block balance of ones (chi-square over blocks)."""
    require_positive(block_size, "block_size")
    bits = as_bits(sequence, minimum_length=block_size)
    n_blocks = bits.size // block_size
    require(n_blocks >= 1, "need at least one full block")
    trimmed = bits[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = trimmed.mean(axis=1)
    chi_squared = 4.0 * block_size * np.sum((proportions - 0.5) ** 2)
    return float(gammaincc(n_blocks / 2.0, chi_squared / 2.0))
