"""Non-overlapping template matching test, SP 800-22 section 2.7."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

#: The standard aperiodic template used when none is supplied.
DEFAULT_TEMPLATE = (0, 0, 0, 0, 0, 0, 0, 0, 1)


def _count_non_overlapping(block: np.ndarray, template: np.ndarray) -> int:
    m = template.size
    count = 0
    position = 0
    while position <= block.size - m:
        if np.array_equal(block[position:position + m], template):
            count += 1
            position += m
        else:
            position += 1
    return count


def non_overlapping_template_test(
    sequence, template=DEFAULT_TEMPLATE, n_blocks: int = 8
) -> float:
    """p-value for the occurrence count of an aperiodic template."""
    template_bits = np.asarray(template, dtype=np.int8)
    require(template_bits.ndim == 1 and template_bits.size >= 2, "template too short")
    m = template_bits.size
    bits = as_bits(sequence, minimum_length=n_blocks * 8 * m)
    block_size = bits.size // n_blocks
    blocks = bits[: n_blocks * block_size].reshape(n_blocks, block_size)

    mean = (block_size - m + 1) / 2.0**m
    variance = block_size * (1.0 / 2.0**m - (2.0 * m - 1.0) / 2.0 ** (2 * m))
    counts = np.array(
        [_count_non_overlapping(block, template_bits) for block in blocks], dtype=float
    )
    chi_squared = float(np.sum((counts - mean) ** 2 / variance))
    return float(gammaincc(n_blocks / 2.0, chi_squared / 2.0))
