"""Approximate entropy test, SP 800-22 section 2.12."""

from __future__ import annotations

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require_positive


def _phi(bits: np.ndarray, m: int) -> float:
    """log-sum statistic over overlapping m-bit patterns (wrapped)."""
    n = bits.size
    if m == 0:
        return 0.0
    extended = np.concatenate([bits, bits[: m - 1]]) if m > 1 else bits
    # Encode each overlapping m-bit window as an integer.
    codes = np.zeros(n, dtype=np.int64)
    for offset in range(m):
        codes = (codes << 1) | extended[offset:offset + n]
    counts = np.bincount(codes, minlength=2**m).astype(float)
    probabilities = counts[counts > 0] / n
    return float(np.sum(probabilities * np.log(probabilities)))


def approximate_entropy_test(sequence, m: int = 2) -> float:
    """p-value comparing m- and (m+1)-pattern regularity."""
    require_positive(m, "m")
    bits = as_bits(sequence, minimum_length=2 ** (m + 2))
    n = bits.size
    ap_en = _phi(bits, m) - _phi(bits, m + 1)
    chi_squared = 2.0 * n * (np.log(2.0) - ap_en)
    return float(gammaincc(2 ** (m - 1), chi_squared / 2.0))
