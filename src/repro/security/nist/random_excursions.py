"""Random excursions and random excursions variant tests,
SP 800-22 sections 2.14 and 2.15."""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.special import erfc, gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

_STATES = (-4, -3, -2, -1, 1, 2, 3, 4)
_VARIANT_STATES = tuple(range(-9, 0)) + tuple(range(1, 10))


def _cycles(bits: np.ndarray):
    """Zero-crossing cycles of the +/-1 random walk."""
    walk = np.cumsum(2 * bits.astype(np.int64) - 1)
    zero_positions = np.flatnonzero(walk == 0)
    boundaries = np.concatenate([[0], zero_positions + 1])
    cycles = [
        walk[boundaries[i]:boundaries[i + 1]]
        for i in range(len(boundaries) - 1)
    ]
    if boundaries[-1] < walk.size:
        # The unfinished tail counts as a final cycle (it is closed by
        # appending a virtual zero in the reference implementation).
        cycles.append(walk[boundaries[-1]:])
    return cycles, walk


def _state_probabilities(x: int) -> np.ndarray:
    """P(state x is visited exactly k times in a cycle), k = 0..4, >= 5."""
    ax = abs(x)
    probabilities = np.zeros(6)
    probabilities[0] = 1.0 - 1.0 / (2.0 * ax)
    for k in range(1, 5):
        probabilities[k] = (
            1.0 / (4.0 * ax**2) * (1.0 - 1.0 / (2.0 * ax)) ** (k - 1)
        )
    probabilities[5] = (
        1.0 / (2.0 * ax) * (1.0 - 1.0 / (2.0 * ax)) ** 4
    )
    return probabilities


def random_excursions_test(sequence) -> Dict[int, float]:
    """Per-state p-values for visit counts of the walk states +/-1..4.

    Returns a dict ``{state: p-value}``.  Requires enough zero-crossing
    cycles for the chi-square approximation (>= 500 per SP 800-22; we
    require a softer 50 for shorter key streams and note that benchmark
    streams exceed the strict bound).
    """
    bits = as_bits(sequence, minimum_length=1000)
    cycles, _ = _cycles(bits)
    n_cycles = len(cycles)
    require(n_cycles >= 50, f"only {n_cycles} cycles; sequence too short")

    p_values: Dict[int, float] = {}
    for state in _STATES:
        counts = np.zeros(6)
        for cycle in cycles:
            visits = int(np.count_nonzero(cycle == state))
            counts[min(visits, 5)] += 1
        expected = n_cycles * _state_probabilities(state)
        chi_squared = float(np.sum((counts - expected) ** 2 / expected))
        p_values[state] = float(gammaincc(2.5, chi_squared / 2.0))
    return p_values


def random_excursions_variant_test(sequence) -> Dict[int, float]:
    """Per-state p-values for total visit counts of states +/-1..9."""
    bits = as_bits(sequence, minimum_length=1000)
    cycles, walk = _cycles(bits)
    n_cycles = len(cycles)
    require(n_cycles >= 50, f"only {n_cycles} cycles; sequence too short")

    p_values: Dict[int, float] = {}
    for state in _VARIANT_STATES:
        visits = int(np.count_nonzero(walk == state))
        denominator = np.sqrt(
            2.0 * n_cycles * (4.0 * abs(state) - 2.0)
        )
        p_values[state] = float(
            erfc(abs(visits - n_cycles) / denominator)
        )
    return p_values
