"""Shared input handling for the NIST tests."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import require


def as_bits(sequence, minimum_length: int) -> np.ndarray:
    """Validate and coerce a 0/1 sequence for a NIST test."""
    bits = np.asarray(sequence, dtype=np.int8)
    require(bits.ndim == 1, "bit sequence must be 1-D")
    require(
        bits.size >= minimum_length,
        f"sequence of {bits.size} bits is shorter than the test's minimum "
        f"of {minimum_length}",
    )
    require(bool(np.all((bits == 0) | (bits == 1))), "sequence must be 0/1")
    return bits
