"""Overlapping template matching test, SP 800-22 section 2.8."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import gammaincc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

#: Default template: a run of ones of length 9 (the SP 800-22 example).
DEFAULT_TEMPLATE = (1,) * 9

_CATEGORY_COUNT = 6


def _pi_probabilities(eta: float) -> np.ndarray:
    """Category probabilities P(occurrences = k), k = 0..4, and P(>= 5).

    Uses the SP 800-22 recurrence based on the Polya-Aeppli law.
    """
    probabilities = np.zeros(_CATEGORY_COUNT)
    probabilities[0] = math.exp(-eta)
    # P(U = u) for u >= 1 via the series expansion.
    for u in range(1, _CATEGORY_COUNT - 1):
        total = 0.0
        for ell in range(1, u + 1):
            total += (
                math.exp(-eta)
                * 2.0**-u
                * eta**ell
                / math.factorial(ell)
                * math.comb(u - 1, ell - 1)
            )
        probabilities[u] = total
    probabilities[-1] = 1.0 - probabilities[:-1].sum()
    return probabilities


def overlapping_template_test(
    sequence, template=DEFAULT_TEMPLATE, block_size: int = 1032
) -> float:
    """p-value for overlapping occurrences of a template per block."""
    template_bits = np.asarray(template, dtype=np.int8)
    m = template_bits.size
    require(m >= 2, "template too short")
    bits = as_bits(sequence, minimum_length=block_size)
    n_blocks = bits.size // block_size
    require(n_blocks >= 1, "need at least one full block")

    counts = np.zeros(_CATEGORY_COUNT)
    for index in range(n_blocks):
        block = bits[index * block_size:(index + 1) * block_size]
        occurrences = 0
        for position in range(block_size - m + 1):
            if np.array_equal(block[position:position + m], template_bits):
                occurrences += 1
        counts[min(occurrences, _CATEGORY_COUNT - 1)] += 1

    lam = (block_size - m + 1) / 2.0**m
    eta = lam / 2.0
    probabilities = _pi_probabilities(eta)
    expected = n_blocks * probabilities
    chi_squared = float(np.sum((counts - expected) ** 2 / expected))
    return float(gammaincc((_CATEGORY_COUNT - 1) / 2.0, chi_squared / 2.0))
