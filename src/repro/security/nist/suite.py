"""NIST test-suite runner reproducing the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.security.nist.approximate_entropy import approximate_entropy_test
from repro.security.nist.block_frequency import block_frequency_test
from repro.security.nist.cumulative_sums import cumulative_sums_test
from repro.security.nist.dft import dft_test
from repro.security.nist.frequency import frequency_test
from repro.security.nist.linear_complexity import linear_complexity_test
from repro.security.nist.longest_run import longest_run_test
from repro.security.nist.non_overlapping import non_overlapping_template_test

#: The paper rejects randomness below this p-value.
SIGNIFICANCE_LEVEL = 0.01

#: Table II's row order.
TEST_NAMES = (
    "Frequency",
    "DFT Test",
    "Longest Run",
    "Linear Complexity",
    "Block Frequency",
    "Cumulative Sums",
    "Approximate Entropy",
    "Non Overlapping Template",
)


@dataclass(frozen=True)
class NistResult:
    """One test's outcome."""

    name: str
    p_value: float

    @property
    def passed(self) -> bool:
        """Randomness hypothesis not rejected at the 1% level."""
        return self.p_value >= SIGNIFICANCE_LEVEL


class NistTestSuite:
    """Runs the eight Table II tests on a key-material bit stream.

    Args:
        linear_complexity_block: Block size M for the linear-complexity
            test, or ``None`` (default) to size it automatically.  The
            chi-square approximation behind that test needs >= ~150 blocks
            (its smallest category has probability 1%), so the automatic
            choice is ``min(500, max(64, n // 150))``.
    """

    def __init__(self, linear_complexity_block: int = None):
        self.linear_complexity_block = (
            int(linear_complexity_block) if linear_complexity_block is not None else None
        )

    def _lc_block(self, n_bits: int) -> int:
        if self.linear_complexity_block is not None:
            return self.linear_complexity_block
        return min(500, max(64, n_bits // 150))

    def run(self, sequence) -> Dict[str, NistResult]:
        """All eight Table II tests; results keyed by the table's row name."""
        bits = np.asarray(sequence, dtype=np.int8)
        values = {
            "Frequency": frequency_test(bits),
            "DFT Test": dft_test(bits),
            "Longest Run": longest_run_test(bits),
            "Linear Complexity": linear_complexity_test(
                bits, block_size=self._lc_block(bits.size)
            ),
            "Block Frequency": block_frequency_test(bits),
            "Cumulative Sums": cumulative_sums_test(bits),
            "Approximate Entropy": approximate_entropy_test(bits),
            "Non Overlapping Template": non_overlapping_template_test(bits),
        }
        return {name: NistResult(name, values[name]) for name in TEST_NAMES}

    def run_extended(self, sequence) -> Dict[str, NistResult]:
        """The Table II tests plus the rest of the SP 800-22 battery.

        Adds runs, serial (both p-values), overlapping template, Maurer's
        universal, binary matrix rank and the two random-excursions tests
        (reported as their minimum per-state p-value).  Tests whose length
        prerequisites the sequence cannot meet are skipped.
        """
        from repro.exceptions import ConfigurationError
        from repro.security.nist.matrix_rank import matrix_rank_test
        from repro.security.nist.overlapping_template import overlapping_template_test
        from repro.security.nist.random_excursions import (
            random_excursions_test,
            random_excursions_variant_test,
        )
        from repro.security.nist.runs import runs_test
        from repro.security.nist.serial import serial_test
        from repro.security.nist.universal import universal_test

        bits = np.asarray(sequence, dtype=np.int8)
        results = dict(self.run(bits))

        def attempt(name, producer):
            try:
                results[name] = NistResult(name, float(producer()))
            except ConfigurationError:
                pass

        attempt("Runs", lambda: runs_test(bits))
        attempt("Serial", lambda: min(serial_test(bits)))
        attempt("Overlapping Template", lambda: overlapping_template_test(bits))
        attempt("Universal", lambda: universal_test(bits))
        attempt("Binary Matrix Rank", lambda: matrix_rank_test(bits))
        attempt(
            "Random Excursions",
            lambda: min(random_excursions_test(bits).values()),
        )
        attempt(
            "Random Excursions Variant",
            lambda: min(random_excursions_variant_test(bits).values()),
        )
        return results

    def all_pass(self, sequence) -> bool:
        """Whether every test's p-value clears the 1% threshold."""
        return all(result.passed for result in self.run(sequence).values())


def run_nist_suite(sequence, linear_complexity_block: int = None) -> Dict[str, float]:
    """Convenience wrapper returning ``{test name: p-value}``."""
    suite = NistTestSuite(linear_complexity_block=linear_complexity_block)
    return {name: result.p_value for name, result in suite.run(sequence).items()}
