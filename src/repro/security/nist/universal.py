"""Maurer's universal statistical test, SP 800-22 section 2.9."""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from repro.security.nist._common import as_bits
from repro.utils.validation import require

#: (block length L) -> (expected value, variance) per the SP 800-22 table.
_EXPECTATIONS = {
    2: (1.5374383, 1.338),
    3: (2.4016068, 1.901),
    4: (3.3112247, 2.358),
    5: (4.2534266, 2.705),
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
    9: (8.1764248, 3.311),
    10: (9.1723243, 3.356),
}


def _choose_block_length(n: int) -> int:
    """Largest table L such that n leaves enough init and test blocks.

    Practical rule: Q = 10 * 2^L initialization blocks plus at least 1000
    test blocks, each of L bits.
    """
    for length in sorted(_EXPECTATIONS, reverse=True):
        if n >= (10 * 2**length + 1000) * length:
            return length
    return 2


def universal_test(sequence, block_length: int = None) -> float:
    """p-value of Maurer's compressibility statistic.

    Args:
        sequence: The 0/1 sequence under test.
        block_length: L; chosen from the sequence length when omitted.
    """
    bits = as_bits(sequence, minimum_length=4000)
    length = block_length if block_length is not None else _choose_block_length(bits.size)
    require(length in _EXPECTATIONS, f"block_length must be in {sorted(_EXPECTATIONS)}")
    init_blocks = 10 * 2**length
    total_blocks = bits.size // length
    test_blocks = total_blocks - init_blocks
    require(
        test_blocks >= 100,
        f"sequence too short for L={length}: needs more than "
        f"{init_blocks * length} bits",
    )

    codes = np.zeros(total_blocks, dtype=np.int64)
    trimmed = bits[: total_blocks * length].reshape(total_blocks, length)
    for offset in range(length):
        codes = (codes << 1) | trimmed[:, offset]

    last_seen = np.zeros(2**length, dtype=np.int64)
    for index in range(init_blocks):
        last_seen[codes[index]] = index + 1

    total = 0.0
    for index in range(init_blocks, total_blocks):
        position = index + 1
        total += math.log2(position - last_seen[codes[index]])
        last_seen[codes[index]] = position
    statistic = total / test_blocks

    expected, variance = _EXPECTATIONS[length]
    c = 0.7 - 0.8 / length + (4.0 + 32.0 / length) * test_blocks ** (-3.0 / length) / 15.0
    sigma = c * math.sqrt(variance / test_blocks)
    return float(erfc(abs(statistic - expected) / (math.sqrt(2.0) * sigma)))
