"""Cumulative sums (cusum) test, SP 800-22 section 2.13."""

from __future__ import annotations

import numpy as np
from scipy.stats import norm

from repro.security.nist._common import as_bits
from repro.utils.validation import require_one_of


def cumulative_sums_test(sequence, mode: str = "forward") -> float:
    """p-value for the maximum excursion of the +/-1 random walk."""
    require_one_of(mode, ("forward", "backward"), "mode")
    bits = as_bits(sequence, minimum_length=8)
    steps = 2.0 * bits.astype(float) - 1.0
    if mode == "backward":
        steps = steps[::-1]
    walk = np.cumsum(steps)
    z = float(np.max(np.abs(walk)))
    n = bits.size
    if z == 0:
        return 0.0

    sqrt_n = np.sqrt(n)
    k_start = int((-n / z + 1) // 4)
    k_end = int((n / z - 1) // 4)
    first = sum(
        norm.cdf((4 * k + 1) * z / sqrt_n) - norm.cdf((4 * k - 1) * z / sqrt_n)
        for k in range(k_start, k_end + 1)
    )
    k_start2 = int((-n / z - 3) // 4)
    second = sum(
        norm.cdf((4 * k + 3) * z / sqrt_n) - norm.cdf((4 * k + 1) * z / sqrt_n)
        for k in range(k_start2, k_end + 1)
    )
    return float(1.0 - first + second)
