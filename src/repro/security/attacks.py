"""Attack harnesses: eavesdropping and imitating attacks (paper Sec. V-H).

Both attackers get everything the threat model grants (Sec. III): full
protocol knowledge including the trained models, every public message
(consensus masks, syndromes, MACs), and their own radio observations.
What they lack is a reciprocal channel with either legitimate party.

- **Eavesdropping attack** (Fig. 15a): Eve parks near Bob, records all
  transmissions, runs her own measurements through the stolen pipeline
  and feeds Bob's public syndromes into the stolen decoder.
- **Imitating attack** (Fig. 15b/16): Eve tails Alice's route, obtaining
  the same large-scale channel, and mounts the same pipeline attack; the
  small-scale fading she cannot copy is what keeps her near 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.metrics.correlation import detrended_correlation
from repro.probing.dataset import build_dataset
from repro.probing.eve import EveConfig, build_eavesdropping_eve, build_imitating_eve
from repro.probing.features import arrssi_sequences, eve_arrssi_sequences
from repro.probing.trace import ProbeTrace
from repro.utils.validation import require


@dataclass
class AttackReport:
    """Outcome of one attack evaluation.

    Attributes:
        attacker: ``"eavesdropper"`` or ``"imitator"``.
        legitimate_agreement: Alice-vs-Bob agreement after reconciliation.
        eve_agreement: Eve-vs-Bob agreement after she applies the stolen
            decoder to the public syndromes.
        eve_raw_agreement: Eve-vs-Bob agreement of her raw candidate bits.
        n_blocks: Key blocks evaluated.
        eve_feature_correlation: Detrended correlation between Eve's and
            Alice's arRSSI sequences (the Fig. 16 comparison).
    """

    attacker: str
    legitimate_agreement: float
    eve_agreement: float
    eve_raw_agreement: float
    n_blocks: int
    eve_feature_correlation: float


_BUILDERS = {
    "eavesdropper": build_eavesdropping_eve,
    "imitator": build_imitating_eve,
}


def collect_attack_traces(
    pipeline, attacker: str, n_traces: int = 2, n_rounds: int = None
) -> List[ProbeTrace]:
    """Probing traces with the requested attacker listening in."""
    require(attacker in _BUILDERS, f"unknown attacker {attacker!r}")
    builder = _BUILDERS[attacker]

    def build(scenario, seeds, channel, alice, bob):
        return builder(
            scenario, seeds, channel, alice, bob, EveConfig(label=attacker)
        )

    rounds = n_rounds if n_rounds is not None else pipeline.config.session_rounds
    return [
        pipeline.collect_trace(
            f"attack-{attacker}-{index}",
            n_rounds=rounds,
            eavesdropper_builders=[build],
        )
        for index in range(n_traces)
    ]


def run_attack(
    pipeline, attacker: str, n_traces: int = 2, n_rounds: int = None
) -> AttackReport:
    """Evaluate one attacker against a trained pipeline.

    Eve mirrors Alice's role: she extracts arRSSI from her own recordings
    of Bob's transmissions, runs the stolen prediction/quantization model,
    selects the publicly broadcast consensus positions, and decodes Bob's
    public syndromes with the stolen reconciler.
    """
    traces = collect_attack_traces(pipeline, attacker, n_traces, n_rounds)
    session = pipeline.build_session()
    model = pipeline.model
    reconciler = pipeline.reconciler
    bits_per_sample = model.bob_quantizer.bits_per_sample

    legit_alice: List[np.ndarray] = []
    legit_bob: List[np.ndarray] = []
    eve_candidate: List[np.ndarray] = []
    correlations: List[float] = []

    for trace in traces:
        bob_seq, alice_seq = arrssi_sequences(trace, session.feature_config)
        if len(alice_seq) < model.seq_len:
            continue
        dataset = build_dataset(alice_seq, bob_seq, seq_len=model.seq_len)
        detail = session.extract_detail(dataset)
        legit_alice.append(detail.alice_bits)
        legit_bob.append(detail.bob_bits)

        # Eve's mirrored extraction over the same windows and public masks.
        eve_as_bob, eve_as_alice = eve_arrssi_sequences(
            trace, attacker, session.feature_config
        )
        eve_dataset = build_dataset(eve_as_alice, eve_as_bob, seq_len=model.seq_len)
        eve_probs = model.predict_bit_probabilities(eve_dataset.alice)
        eve_bits = (eve_probs > 0.5).astype(np.uint8)
        parts: List[np.ndarray] = []
        for index, keep in enumerate(detail.masks):
            if index >= len(eve_dataset) or not keep.any():
                continue
            groups = eve_bits[index].reshape(-1, bits_per_sample)
            parts.append(groups[keep].reshape(-1))
        eve_candidate.append(
            np.concatenate(parts) if parts else np.zeros(0, np.uint8)
        )
        correlations.append(
            detrended_correlation(eve_as_alice, alice_seq[: len(eve_as_alice)])
        )

    alice_all = np.concatenate(legit_alice)
    bob_all = np.concatenate(legit_bob)
    eve_all = np.concatenate(eve_candidate)
    n = min(alice_all.size, eve_all.size)
    block_bits = reconciler.key_bits
    n_blocks = n // block_bits
    require(n_blocks > 0, "attack run produced no complete key block")

    legit_rates = []
    eve_rates = []
    eve_raw_rates = []
    for block in range(n_blocks):
        lo, hi = block * block_bits, (block + 1) * block_bits
        bob_key = bob_all[lo:hi]
        syndrome = reconciler.bob_syndrome(bob_key)
        alice_corrected = reconciler.alice_correct(alice_all[lo:hi], syndrome)
        eve_corrected = reconciler.alice_correct(eve_all[lo:hi], syndrome)
        legit_rates.append(np.mean(alice_corrected == bob_key))
        eve_rates.append(np.mean(eve_corrected == bob_key))
        eve_raw_rates.append(np.mean(eve_all[lo:hi] == bob_key))

    return AttackReport(
        attacker=attacker,
        legitimate_agreement=float(np.mean(legit_rates)),
        eve_agreement=float(np.mean(eve_rates)),
        eve_raw_agreement=float(np.mean(eve_raw_rates)),
        n_blocks=n_blocks,
        eve_feature_correlation=float(np.mean(correlations)),
    )
