"""Security analysis: NIST randomness tests and attack harnesses."""

from repro.security.nist import NistTestSuite, run_nist_suite
from repro.security.fips import run_fips_battery, fips_pass

__all__ = ["NistTestSuite", "run_nist_suite", "run_fips_battery", "fips_pass"]
