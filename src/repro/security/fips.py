"""FIPS 140-2 randomness battery (monobit, poker, runs, long run).

The classic power-on self-test battery for hardware key generators:
unlike the NIST suite's p-values, FIPS 140-2 defines hard accept/reject
intervals on a single 20,000-bit sample.  Useful as a cheap online check
a deployed Vehicle-Key node can run on its own key material.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.validation import require

SAMPLE_BITS = 20_000

#: Accept interval for the monobit count of ones.
MONOBIT_RANGE = (9_725, 10_275)
#: Accept interval for the poker statistic.
POKER_RANGE = (2.16, 46.17)
#: Accept intervals for run lengths 1..5 and >= 6 (per bit value).
RUN_RANGES = {
    1: (2_315, 2_685),
    2: (1_114, 1_386),
    3: (527, 723),
    4: (240, 384),
    5: (103, 209),
    6: (103, 209),
}
#: Any run of 26 or more identical bits fails the long-run test.
LONG_RUN_LIMIT = 26


@dataclass(frozen=True)
class FipsResult:
    """One FIPS 140-2 check's outcome.

    Attributes:
        name: Test name.
        statistic: The measured value (for runs: worst offending count).
        passed: Whether the accept criterion held.
    """

    name: str
    statistic: float
    passed: bool


def _sample(bits) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.int8)
    require(arr.ndim == 1, "bit sequence must be 1-D")
    require(
        arr.size >= SAMPLE_BITS,
        f"FIPS 140-2 operates on {SAMPLE_BITS} bits, got {arr.size}",
    )
    require(bool(np.all((arr == 0) | (arr == 1))), "sequence must be 0/1")
    return arr[:SAMPLE_BITS]


def monobit_test(bits) -> FipsResult:
    """Count of ones must fall in (9725, 10275)."""
    ones = int(_sample(bits).sum())
    low, high = MONOBIT_RANGE
    return FipsResult("monobit", float(ones), low < ones < high)


def poker_test(bits) -> FipsResult:
    """Chi-square-like statistic over 5000 non-overlapping nibbles."""
    sample = _sample(bits)
    nibbles = sample.reshape(5_000, 4)
    codes = (nibbles << np.arange(3, -1, -1)).sum(axis=1)
    counts = np.bincount(codes, minlength=16).astype(float)
    statistic = float(16.0 / 5_000.0 * np.sum(counts**2) - 5_000.0)
    low, high = POKER_RANGE
    return FipsResult("poker", statistic, low < statistic < high)


def _run_lengths(sample: np.ndarray):
    """(value, length) pairs for every maximal run."""
    changes = np.flatnonzero(np.diff(sample)) + 1
    boundaries = np.concatenate([[0], changes, [sample.size]])
    for start, end in zip(boundaries[:-1], boundaries[1:]):
        yield int(sample[start]), int(end - start)


def runs_test(bits) -> FipsResult:
    """Run-length histogram must fall in the per-length accept intervals."""
    sample = _sample(bits)
    counts = {value: {length: 0 for length in RUN_RANGES} for value in (0, 1)}
    for value, length in _run_lengths(sample):
        counts[value][min(length, 6)] += 1
    worst = 0.0
    passed = True
    for value in (0, 1):
        for length, (low, high) in RUN_RANGES.items():
            observed = counts[value][length]
            if not low <= observed <= high:
                passed = False
                worst = max(worst, float(observed))
    return FipsResult("runs", worst, passed)


def long_run_test(bits) -> FipsResult:
    """No run of LONG_RUN_LIMIT or more identical bits may occur."""
    sample = _sample(bits)
    longest = max(length for _, length in _run_lengths(sample))
    return FipsResult("long-run", float(longest), longest < LONG_RUN_LIMIT)


def run_fips_battery(bits) -> Dict[str, FipsResult]:
    """All four FIPS 140-2 tests on the first 20,000 bits."""
    return {
        result.name: result
        for result in (
            monobit_test(bits),
            poker_test(bits),
            runs_test(bits),
            long_run_test(bits),
        )
    }


def fips_pass(bits) -> bool:
    """Whether all four tests accept."""
    return all(result.passed for result in run_fips_battery(bits).values())
