"""Containers for probing-session measurements.

A probing session produces, per round, one register-RSSI vector at each
legitimate endpoint (Bob measures Alice's probe, Alice measures Bob's
response) and optionally one pair per eavesdropper.  Matrices are indexed
``[round, symbol]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional  # noqa: F401 (Optional used in annotations)

import numpy as np

from repro.exceptions import ConfigurationError
from repro.lora.airtime import LoRaPHYConfig


@dataclass
class EveTrace:
    """An eavesdropper's view of one probing session.

    Attributes:
        of_alice_rssi: Eve's register RSSI while Alice was transmitting,
            ``[round, symbol]`` -- the role-mirror of Bob's measurements.
        of_bob_rssi: Eve's register RSSI while Bob was transmitting -- the
            role-mirror of Alice's measurements.
    """

    of_alice_rssi: np.ndarray
    of_bob_rssi: np.ndarray

    def __post_init__(self) -> None:
        if self.of_alice_rssi.shape != self.of_bob_rssi.shape:
            raise ConfigurationError("Eve's two matrices must have matching shapes")


@dataclass
class ProbeTrace:
    """All measurements from one probing session.

    Attributes:
        phy: The LoRa configuration probes were sent with.
        alice_rssi: Alice's register RSSI of Bob's responses, ``[round, symbol]``.
        bob_rssi: Bob's register RSSI of Alice's probes, ``[round, symbol]``.
        round_start_s: Transmission start time of each round's probe.
        valid: Per-round flag; ``False`` where either direction was below
            the receiver's sensitivity (packet loss).
        eve: Optional eavesdropper traces keyed by attacker label.
        retries: Per-round retransmission count spent by the ARQ layer
            (zeros when probing ran without fault injection).
        dropped: Per-round flag; ``True`` where the retry budget was
            exhausted and the round was discarded by the ARQ layer.
        injected: Per-round flag; ``True`` where an active adversary's
            forged probe poisoned Bob's measurement for the round.
        replays_rejected: Per-round count of stale replayed probes the
            receiver's sequence-window check rejected (each one is a
            detected active attack).
        backoff_time_s: Per-round wall-clock time spent in ARQ timeouts
            and backoff silence (zeros on the fault-free path).
        retry_limit: The ARQ policy's per-round retry budget in force when
            the trace was collected, or ``None`` when probing ran without
            an ARQ layer; together with ``retries`` this gives the
            consumed-vs-remaining budget per round.
    """

    phy: LoRaPHYConfig
    alice_rssi: np.ndarray
    bob_rssi: np.ndarray
    round_start_s: np.ndarray
    valid: np.ndarray
    eve: Dict[str, EveTrace] = field(default_factory=dict)
    alice_prssi: Optional[np.ndarray] = None
    bob_prssi: Optional[np.ndarray] = None
    retries: Optional[np.ndarray] = None
    dropped: Optional[np.ndarray] = None
    injected: Optional[np.ndarray] = None
    replays_rejected: Optional[np.ndarray] = None
    backoff_time_s: Optional[np.ndarray] = None
    retry_limit: Optional[int] = None

    def __post_init__(self) -> None:
        n_rounds = self.alice_rssi.shape[0]
        if self.bob_rssi.shape != self.alice_rssi.shape:
            raise ConfigurationError("alice_rssi and bob_rssi shapes must match")
        if self.round_start_s.shape != (n_rounds,):
            raise ConfigurationError("round_start_s must have one entry per round")
        if self.valid.shape != (n_rounds,):
            raise ConfigurationError("valid must have one entry per round")
        if self.alice_prssi is None:
            # Fallback: derive packet RSSI from the register samples (no
            # separate packet-register error).
            self.alice_prssi = self.alice_rssi.mean(axis=1).round()
        if self.bob_prssi is None:
            self.bob_prssi = self.bob_rssi.mean(axis=1).round()
        if self.alice_prssi.shape != (n_rounds,) or self.bob_prssi.shape != (n_rounds,):
            raise ConfigurationError("packet-RSSI series must have one entry per round")
        if self.retries is None:
            self.retries = np.zeros(n_rounds, dtype=np.int32)
        if self.dropped is None:
            self.dropped = np.zeros(n_rounds, dtype=bool)
        if self.retries.shape != (n_rounds,) or self.dropped.shape != (n_rounds,):
            raise ConfigurationError(
                "retries and dropped must have one entry per round"
            )
        if self.injected is None:
            self.injected = np.zeros(n_rounds, dtype=bool)
        if self.replays_rejected is None:
            self.replays_rejected = np.zeros(n_rounds, dtype=np.int32)
        if self.backoff_time_s is None:
            self.backoff_time_s = np.zeros(n_rounds, dtype=float)
        if (
            self.injected.shape != (n_rounds,)
            or self.replays_rejected.shape != (n_rounds,)
            or self.backoff_time_s.shape != (n_rounds,)
        ):
            raise ConfigurationError(
                "adversary/backoff series must have one entry per round"
            )

    @property
    def n_rounds(self) -> int:
        """Total rounds attempted (including lost ones)."""
        return int(self.alice_rssi.shape[0])

    @property
    def n_valid_rounds(self) -> int:
        """Rounds where both directions decoded."""
        return int(np.count_nonzero(self.valid))

    @property
    def samples_per_packet(self) -> int:
        """Register-RSSI samples recorded per packet."""
        return int(self.alice_rssi.shape[1])

    @property
    def total_retries(self) -> int:
        """Retransmissions the ARQ layer spent across the whole session."""
        return int(self.retries.sum())

    @property
    def n_dropped_rounds(self) -> int:
        """Rounds discarded after the retry budget ran out."""
        return int(np.count_nonzero(self.dropped))

    @property
    def n_injected_rounds(self) -> int:
        """Rounds poisoned by an adversary's forged probe."""
        return int(np.count_nonzero(self.injected))

    @property
    def total_replays_rejected(self) -> int:
        """Replayed probes rejected by the sequence-window check."""
        return int(self.replays_rejected.sum())

    @property
    def total_backoff_s(self) -> float:
        """Wall-clock time the ARQ layer spent in timeouts and backoff."""
        return float(self.backoff_time_s.sum())

    @property
    def max_round_retries(self) -> int:
        """The worst single round's retransmission count."""
        if self.n_rounds == 0:
            return 0
        return int(self.retries.max())

    @property
    def retry_budget_remaining(self) -> Optional[int]:
        """Unused retries in the worst round, or ``None`` without ARQ."""
        if self.retry_limit is None:
            return None
        return int(self.retry_limit) - self.max_round_retries

    @property
    def duration_s(self) -> float:
        """Wall-clock time the session occupied (for key-rate accounting)."""
        if self.n_rounds == 0:
            return 0.0
        last_round_end = (
            float(self.round_start_s[-1])
            + 2.0 * self.phy.airtime_s
        )
        return last_round_end - float(self.round_start_s[0])

    #: Artifact kind of a saved probe trace.
    ARTIFACT_KIND = "probe-trace"

    def save(self, path) -> None:
        """Persist the trace (including eavesdropper recordings) to ``.npz``.

        The file is a checksummed artifact written atomically; a crash
        mid-save never leaves a truncated trace under the final name.
        """
        from repro.utils.artifact import save_artifact

        arrays = {
            "alice_rssi": self.alice_rssi,
            "bob_rssi": self.bob_rssi,
            "round_start_s": self.round_start_s,
            "valid": self.valid,
            "alice_prssi": self.alice_prssi,
            "bob_prssi": self.bob_prssi,
            "retries": self.retries,
            "dropped": self.dropped,
            "injected": self.injected,
            "replays_rejected": self.replays_rejected,
            "backoff_time_s": self.backoff_time_s,
            "phy_sf": np.array([self.phy.spreading_factor]),
            "phy_bw": np.array([self.phy.bandwidth_hz]),
            "phy_cr": np.array([self.phy.coding_rate.value]),
            "phy_f0": np.array([self.phy.carrier_frequency_hz]),
            "phy_payload": np.array([self.phy.payload_bytes]),
        }
        if self.retry_limit is not None:
            arrays["retry_limit"] = np.array([self.retry_limit])
        for label, eve in self.eve.items():
            arrays[f"eve:{label}:of_alice"] = eve.of_alice_rssi
            arrays[f"eve:{label}:of_bob"] = eve.of_bob_rssi
        save_artifact(path, arrays, kind=self.ARTIFACT_KIND)

    @classmethod
    def load(cls, path) -> "ProbeTrace":
        """Load a trace written by :meth:`save`.

        Raises :class:`~repro.exceptions.CorruptArtifactError` on a
        truncated or tampered file; plain ``.npz`` traces written before
        the artifact format load with a warning.
        """
        from repro.lora.airtime import CodingRate
        from repro.utils.artifact import load_artifact

        artifact = load_artifact(path, kind=cls.ARTIFACT_KIND)
        data = artifact.arrays
        phy = LoRaPHYConfig(
            spreading_factor=int(data["phy_sf"][0]),
            bandwidth_hz=float(data["phy_bw"][0]),
            coding_rate=CodingRate(int(data["phy_cr"][0])),
            carrier_frequency_hz=float(data["phy_f0"][0]),
            payload_bytes=int(data["phy_payload"][0]),
        )
        eve = {}
        labels = {
            key.split(":")[1]
            for key in data
            if key.startswith("eve:")
        }
        for label in labels:
            eve[label] = EveTrace(
                of_alice_rssi=data[f"eve:{label}:of_alice"],
                of_bob_rssi=data[f"eve:{label}:of_bob"],
            )
        return cls(
            phy=phy,
            alice_rssi=data["alice_rssi"],
            bob_rssi=data["bob_rssi"],
            round_start_s=data["round_start_s"],
            valid=data["valid"],
            eve=eve,
            alice_prssi=data["alice_prssi"],
            bob_prssi=data["bob_prssi"],
            # Absent in traces written before the ARQ layer existed.
            retries=data["retries"] if "retries" in data else None,
            dropped=data["dropped"] if "dropped" in data else None,
            # Absent in traces written before the adversary layer existed.
            injected=data["injected"] if "injected" in data else None,
            replays_rejected=(
                data["replays_rejected"] if "replays_rejected" in data else None
            ),
            backoff_time_s=(
                data["backoff_time_s"] if "backoff_time_s" in data else None
            ),
            retry_limit=(
                int(data["retry_limit"][0]) if "retry_limit" in data else None
            ),
        )

    def valid_only(self) -> "ProbeTrace":
        """A copy with lost rounds removed (Eve's rounds filtered identically)."""
        mask = self.valid.astype(bool)
        return ProbeTrace(
            phy=self.phy,
            alice_rssi=self.alice_rssi[mask],
            bob_rssi=self.bob_rssi[mask],
            round_start_s=self.round_start_s[mask],
            valid=self.valid[mask],
            eve={
                label: EveTrace(
                    of_alice_rssi=trace.of_alice_rssi[mask],
                    of_bob_rssi=trace.of_bob_rssi[mask],
                )
                for label, trace in self.eve.items()
            },
            alice_prssi=self.alice_prssi[mask],
            bob_prssi=self.bob_prssi[mask],
            retries=self.retries[mask],
            dropped=self.dropped[mask],
            injected=self.injected[mask],
            replays_rejected=self.replays_rejected[mask],
            backoff_time_s=self.backoff_time_s[mask],
            retry_limit=self.retry_limit,
        )
