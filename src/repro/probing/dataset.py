"""Windowed datasets for training the prediction/quantization model.

The BiLSTM consumes fixed-length windows of Alice's arRSSI sequence and
predicts Bob's.  Each window is z-score normalized with its *own side's*
statistics -- neither party can use the other's raw measurements for
normalization without leaking them -- which also removes the slow path-loss
drift so the model learns the reciprocal small-scale structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require, require_positive

_STD_FLOOR = 1e-6


def _window(sequence: np.ndarray, seq_len: int, stride: int) -> np.ndarray:
    n_windows = 1 + (len(sequence) - seq_len) // stride
    index = np.arange(seq_len) + stride * np.arange(n_windows)[:, None]
    return sequence[index]


def _normalize_rows(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    mean = rows.mean(axis=1, keepdims=True)
    std = np.maximum(rows.std(axis=1, keepdims=True), _STD_FLOOR)
    return (rows - mean) / std, mean, std


@dataclass
class KeyGenDataset:
    """Paired windows of Alice's and Bob's arRSSI sequences.

    Attributes:
        alice: ``[window, seq_len]`` normalized arRSSI windows (model input).
        bob: Same shape, Bob's normalized windows (regression target).
        alice_raw: Un-normalized Alice windows (dBm).
        bob_raw: Un-normalized Bob windows (dBm).
    """

    alice: np.ndarray
    bob: np.ndarray
    alice_raw: np.ndarray
    bob_raw: np.ndarray

    def __post_init__(self) -> None:
        shapes = {a.shape for a in (self.alice, self.bob, self.alice_raw, self.bob_raw)}
        require(len(shapes) == 1, "all dataset arrays must share one shape")
        require(self.alice.ndim == 2, "dataset arrays must be [window, seq_len]")

    def __len__(self) -> int:
        return int(self.alice.shape[0])

    @property
    def seq_len(self) -> int:
        """Window length in arRSSI samples."""
        return int(self.alice.shape[1])

    def subset(self, indices: np.ndarray) -> "KeyGenDataset":
        """A new dataset restricted to the given window indices."""
        return KeyGenDataset(
            alice=self.alice[indices],
            bob=self.bob[indices],
            alice_raw=self.alice_raw[indices],
            bob_raw=self.bob_raw[indices],
        )

    def take_fraction(self, fraction: float, seed: SeedLike = None) -> "KeyGenDataset":
        """A random subset with the given fraction of windows (>= 1 window).

        Used by the transfer-learning experiment's ``transfer-10%`` setting.
        """
        require(0 < fraction <= 1.0, "fraction must be in (0, 1]")
        rng = as_generator(seed)
        count = max(1, int(round(fraction * len(self))))
        indices = rng.permutation(len(self))[:count]
        return self.subset(np.sort(indices))

    #: Artifact kind of a saved dataset.
    ARTIFACT_KIND = "keygen-dataset"

    def save(self, path: Union[str, Path]) -> None:
        """Persist to a checksummed ``.npz`` artifact, written atomically."""
        from repro.utils.artifact import save_artifact

        save_artifact(
            path,
            {
                "alice": self.alice,
                "bob": self.bob,
                "alice_raw": self.alice_raw,
                "bob_raw": self.bob_raw,
            },
            kind=self.ARTIFACT_KIND,
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "KeyGenDataset":
        """Load a dataset previously written by :meth:`save`.

        Raises :class:`~repro.exceptions.CorruptArtifactError` on a
        truncated or tampered file; plain ``.npz`` datasets written before
        the artifact format load with a warning.
        """
        from repro.utils.artifact import load_artifact

        data = load_artifact(Path(path), kind=cls.ARTIFACT_KIND).arrays
        return cls(
            alice=data["alice"],
            bob=data["bob"],
            alice_raw=data["alice_raw"],
            bob_raw=data["bob_raw"],
        )


@dataclass
class DatasetSplits:
    """Random train/validation/test partition of a :class:`KeyGenDataset`."""

    train: KeyGenDataset
    validation: KeyGenDataset
    test: KeyGenDataset


def build_dataset(
    alice_sequence: np.ndarray,
    bob_sequence: np.ndarray,
    seq_len: int = 32,
    stride: int = None,
) -> KeyGenDataset:
    """Window two aligned arRSSI sequences into a training dataset.

    Args:
        alice_sequence: Alice's time-ordered arRSSI values.
        bob_sequence: Bob's, aligned index-for-index with Alice's.
        seq_len: Window length (the paper's model uses 32 BiLSTM steps).
        stride: Step between windows; defaults to ``seq_len`` (disjoint
            windows, so each key bit derives from fresh channel readings).
    """
    alice = np.asarray(alice_sequence, dtype=float)
    bob = np.asarray(bob_sequence, dtype=float)
    require(alice.shape == bob.shape, "sequences must be aligned and equal length")
    require(alice.ndim == 1, "sequences must be 1-D")
    require_positive(seq_len, "seq_len")
    if stride is None:
        stride = seq_len
    require_positive(stride, "stride")
    require(
        len(alice) >= seq_len,
        f"need at least seq_len={seq_len} samples, got {len(alice)}",
    )
    alice_raw = _window(alice, seq_len, stride)
    bob_raw = _window(bob, seq_len, stride)
    alice_norm, _, _ = _normalize_rows(alice_raw)
    bob_norm, _, _ = _normalize_rows(bob_raw)
    return KeyGenDataset(
        alice=alice_norm, bob=bob_norm, alice_raw=alice_raw, bob_raw=bob_raw
    )


def split_dataset(
    dataset: KeyGenDataset,
    fractions: Tuple[float, float, float] = (0.70, 0.15, 0.15),
    seed: SeedLike = None,
) -> DatasetSplits:
    """Random 70/15/15 split, as in the paper's Sec. V-A2.

    Every window lands in exactly one split; train is never empty.
    """
    require(len(fractions) == 3, "fractions must be (train, val, test)")
    require(abs(sum(fractions) - 1.0) < 1e-9, "fractions must sum to 1")
    rng = as_generator(seed)
    order = rng.permutation(len(dataset))
    n_train = max(1, int(round(fractions[0] * len(dataset))))
    n_val = int(round(fractions[1] * len(dataset)))
    n_val = min(n_val, max(0, len(dataset) - n_train))
    train_idx = np.sort(order[:n_train])
    val_idx = np.sort(order[n_train:n_train + n_val])
    test_idx = np.sort(order[n_train + n_val:])
    return DatasetSplits(
        train=dataset.subset(train_idx),
        validation=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
    )
