"""Channel-feature extraction: pRSSI, rRSSI and arRSSI.

The paper's preliminary study (Sec. II-C) found that the conventional
*packet RSSI* (average over the whole reception) is badly asymmetric
between the endpoints at LoRa airtimes, while the instantaneous *register
RSSI* samples nearest the probe/response turnaround are measured almost
back-to-back and therefore correlate well.  The *adjacent register RSSI*
(arRSSI) feature keeps only an adjacent window -- the last fraction of the
first packet's samples and the first fraction of the second packet's --
and block-averages it.

In a probing round, Bob measures first (during Alice's probe) and Alice
second (during Bob's response), so the adjacency is between the *end* of
Bob's register trace and the *beginning* of Alice's.  Bob's window is
therefore read boundary-outward (reversed) so that the k-th arRSSI values
of the two sides are separated by the smallest possible time offset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.probing.trace import ProbeTrace
from repro.utils.validation import require, require_in_range, require_positive


@dataclass(frozen=True)
class FeatureConfig:
    """arRSSI extraction parameters.

    Attributes:
        window_fraction: Fraction of each packet's register samples kept at
            the adjacent boundary.  The paper's Fig. 9 sweep peaks at 0.10.
        values_per_packet: How many arRSSI values to produce from each
            window (block means).  1 reproduces the paper's Fig. 9 setting;
            the full pipeline uses 2 to double the key generation rate at
            an acceptable reciprocity cost.
    """

    window_fraction: float = 0.10
    values_per_packet: int = 2

    def __post_init__(self) -> None:
        require_in_range(self.window_fraction, 1e-6, 1.0, "window_fraction")
        require_positive(self.values_per_packet, "values_per_packet")

    def window_length(self, samples_per_packet: int) -> int:
        """Samples in the adjacent window for a given packet length."""
        return max(1, int(round(self.window_fraction * samples_per_packet)))


def packet_rssi_series(register_matrix: np.ndarray, resolution_db: float = 1.0) -> np.ndarray:
    """Per-round packet RSSI: the chip's whole-packet average, quantized."""
    matrix = np.asarray(register_matrix, dtype=float)
    require(matrix.ndim == 2, "register matrix must be [round, symbol]")
    means = matrix.mean(axis=1)
    return np.round(means / resolution_db) * resolution_db


def _block_means(window: np.ndarray, n_blocks: int) -> np.ndarray:
    """Means of ``n_blocks`` contiguous blocks of a 2-D ``[round, sample]`` window."""
    n_rounds, width = window.shape
    n_blocks = min(n_blocks, width)
    edges = np.linspace(0, width, n_blocks + 1).astype(int)
    return np.stack(
        [window[:, edges[i]:edges[i + 1]].mean(axis=1) for i in range(n_blocks)],
        axis=1,
    )


def adjacent_register_rssi(
    first_packet_rssi: np.ndarray,
    second_packet_rssi: np.ndarray,
    config: FeatureConfig = FeatureConfig(),
) -> Tuple[np.ndarray, np.ndarray]:
    """arRSSI matrices for the two halves of each probing round.

    Args:
        first_packet_rssi: ``[round, symbol]`` register RSSI of the packet
            received *first* in each round (Bob's measurement of the probe).
        second_packet_rssi: Same shape, for the packet received *second*
            (Alice's measurement of the response).
        config: Window and block parameters.

    Returns:
        ``(first_ar, second_ar)``, each ``[round, values_per_packet]``.
        ``first_ar[:, k]`` and ``second_ar[:, k]`` are the temporally
        closest block pairs: the first packet's window is read
        boundary-outward, the second packet's boundary-onward.
    """
    first = np.asarray(first_packet_rssi, dtype=float)
    second = np.asarray(second_packet_rssi, dtype=float)
    require(first.shape == second.shape, "the two register matrices must match in shape")
    require(first.ndim == 2, "register matrices must be [round, symbol]")
    width = config.window_length(first.shape[1])
    # End of the first packet, nearest-boundary sample first.
    first_window = first[:, -width:][:, ::-1]
    # Beginning of the second packet, already boundary-onward.
    second_window = second[:, :width]
    return (
        _block_means(first_window, config.values_per_packet),
        _block_means(second_window, config.values_per_packet),
    )


def arrssi_sequences(
    trace: ProbeTrace, config: FeatureConfig = FeatureConfig()
) -> Tuple[np.ndarray, np.ndarray]:
    """Flattened per-session arRSSI sequences for Bob and Alice.

    Bob measures the first packet of each round, Alice the second; the
    returned arrays are ``(bob_sequence, alice_sequence)``, each of length
    ``n_valid_rounds * values_per_packet``, time-ordered.
    """
    clean = trace.valid_only()
    bob_ar, alice_ar = adjacent_register_rssi(clean.bob_rssi, clean.alice_rssi, config)
    return bob_ar.reshape(-1), alice_ar.reshape(-1)


def eve_arrssi_sequences(
    trace: ProbeTrace, label: str, config: FeatureConfig = FeatureConfig()
) -> Tuple[np.ndarray, np.ndarray]:
    """Eve's role-mirrored arRSSI sequences ``(as_bob, as_alice)``.

    Eve overhears Alice's probe (mirroring Bob's measurement, first packet)
    and Bob's response (mirroring Alice's, second packet); extracting the
    same windows gives the sequences she would feed into the stolen
    pipeline.
    """
    clean = trace.valid_only()
    eve = clean.eve[label]
    as_bob, as_alice = adjacent_register_rssi(
        eve.of_alice_rssi, eve.of_bob_rssi, config
    )
    return as_bob.reshape(-1), as_alice.reshape(-1)
