"""Eavesdropper observation models.

Two attackers from the paper's threat model (Sec. III):

- The **eavesdropping** attacker parks near Bob and records every
  transmission, hoping the public reconciliation messages let her finish
  the key.  Her channels to Alice and Bob are drawn with *independent*
  small-scale fading: she is well over half a wavelength (34.56 cm at
  434 MHz) from both legitimate antennas.
- The **imitating** attacker tails Alice along the same route a few meters
  behind.  She shares Alice's *large-scale* channel (path loss and, because
  the route environment is the same, shadowing) but again draws
  independent small-scale fading -- multipath decorrelates over half a
  wavelength, and that is the randomness the key is built from.

Both builders return an :class:`~repro.probing.protocol.EavesdropperSetup`
ready to hand to :meth:`ProbingProtocol.run`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.channel.fading import SpatialJakesFading
from repro.channel.mobility import RelativeMotion, Trajectory
from repro.channel.pathloss import LogDistancePathLoss
from repro.channel.reciprocity import ReciprocalChannel
from repro.channel.scenario import ScenarioConfig
from repro.channel.shadowing import GudmundsonShadowing
from repro.lora.radio import MULTITECH_XDOT, TransceiverModel
from repro.probing.protocol import EavesdropperSetup
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive


@dataclass(frozen=True)
class EveConfig:
    """Placement and hardware for an eavesdropper.

    Attributes:
        label: Trace key for this attacker.
        offset_m: Distance from the node Eve positions herself against
            (Bob for eavesdropping, Alice for imitating).  Must exceed
            half a wavelength for the independence assumption to hold.
        device: Eve's transceiver (she may use better hardware than the
            legitimate nodes).
    """

    label: str = "eve"
    offset_m: float = 10.0
    device: TransceiverModel = MULTITECH_XDOT
    #: Structural correlation between Eve's shadowing and the legitimate
    #: link's.  Even on the same route, two receivers meters apart see
    #: different obstruction geometry (antenna height, car body, lane);
    #: empirical inter-vehicle shadowing correlation is well below 1.
    #: Composes with the spatial (offset) decorrelation.
    shadow_correlation: float = 0.6

    def __post_init__(self) -> None:
        require_positive(self.offset_m, "offset_m")
        if not 0.0 <= self.shadow_correlation <= 1.0:
            raise ValueError("shadow_correlation must be in [0, 1]")


class _BlendedShadowing:
    """Partially correlated view of the legitimate shadowing.

    ``value = rho * shared(s - offset) + sqrt(1 - rho^2) * own(s)``:
    the shared component is the legitimate realization sampled at Eve's
    displaced route positions; the private component models her different
    obstruction geometry.  Marginal variance is preserved.
    """

    def __init__(self, shared, own, rho: float):
        self._shared = shared
        self._own = own
        self._rho = float(rho)
        self._own_weight = float(np.sqrt(max(0.0, 1.0 - rho**2)))

    def value_at(self, displacement_m):
        return self._rho * self._shared.value_at(
            displacement_m
        ) + self._own_weight * self._own.value_at(displacement_m)


class _OffsetTrajectory(Trajectory):
    """A trajectory rigidly displaced from a base trajectory."""

    def __init__(self, base: Trajectory, offset: Tuple[float, float]):
        self._base = base
        self._offset = np.asarray(offset, dtype=float)

    def position_m(self, time_s) -> np.ndarray:
        return self._base.position_m(time_s) + self._offset

    def velocity_m_s(self, time_s) -> np.ndarray:
        return self._base.velocity_m_s(time_s)


def _eve_channels(
    scenario: ScenarioConfig,
    seeds: SeedSequenceFactory,
    legit_channel: ReciprocalChannel,
    eve_trajectory: Trajectory,
    alice_trajectory: Trajectory,
    bob_trajectory: Trajectory,
    label: str,
    config: "EveConfig",
) -> Tuple[ReciprocalChannel, ReciprocalChannel]:
    """Eve's receive channels from Alice and from Bob.

    Path loss follows the scenario's model of Eve's own distances.
    Shadowing is the *same environment* as the legitimate link, sampled
    at route positions displaced by Eve's standoff distance -- so her
    large-scale channel correlates with the legitimate one exactly as the
    Gudmundson spatial correlation at that offset predicts.  Small-scale
    fading is drawn independently per channel: Eve is far beyond half a
    wavelength, the decorrelation the security analysis rests on.
    """
    pathloss = LogDistancePathLoss(
        exponent=scenario.pathloss_exponent,
        carrier_frequency_hz=scenario.carrier_frequency_hz,
    )
    eve_shadowing = None
    if legit_channel.shadowing is not None:
        own = GudmundsonShadowing(
            sigma_db=scenario.shadowing_sigma_db,
            decorrelation_distance_m=scenario.shadowing_decorrelation_m,
            seed=seeds.generator(f"eve-{label}-own-shadowing"),
        )
        eve_shadowing = _BlendedShadowing(
            legit_channel.shadowing.shifted(config.offset_m),
            own,
            config.shadow_correlation,
        )
    channels = []
    for peer_name, peer in (("alice", alice_trajectory), ("bob", bob_trajectory)):
        motion = RelativeMotion(peer, eve_trajectory)
        fading = SpatialJakesFading(
            wavelength_m=scenario.wavelength_m,
            n_paths=scenario.n_paths,
            rician_k=scenario.rician_k,
            seed=seeds.generator(f"eve-{label}-fading-from-{peer_name}"),
        )
        channels.append(
            ReciprocalChannel(
                motion,
                pathloss,
                shadowing=eve_shadowing,
                fading=fading,
            )
        )
    from_alice, from_bob = channels
    return from_alice, from_bob


def build_eavesdropping_eve(
    scenario: ScenarioConfig,
    seeds: SeedSequenceFactory,
    legit_channel: ReciprocalChannel,
    alice_trajectory: Trajectory,
    bob_trajectory: Trajectory,
    config: EveConfig = EveConfig(label="eavesdropper"),
) -> EavesdropperSetup:
    """An attacker statically parked ``config.offset_m`` from Bob."""
    eve_trajectory = _OffsetTrajectory(bob_trajectory, (config.offset_m, 0.0))
    from_alice, from_bob = _eve_channels(
        scenario,
        seeds,
        legit_channel,
        eve_trajectory,
        alice_trajectory,
        bob_trajectory,
        config.label,
        config,
    )
    return EavesdropperSetup(
        label=config.label,
        device=config.device,
        channel_from_alice=from_alice,
        channel_from_bob=from_bob,
    )


def build_imitating_eve(
    scenario: ScenarioConfig,
    seeds: SeedSequenceFactory,
    legit_channel: ReciprocalChannel,
    alice_trajectory: Trajectory,
    bob_trajectory: Trajectory,
    config: EveConfig = EveConfig(label="imitator"),
) -> EavesdropperSetup:
    """An attacker tailing Alice's route ``config.offset_m`` behind her."""
    eve_trajectory = _OffsetTrajectory(alice_trajectory, (-config.offset_m, 0.0))
    from_alice, from_bob = _eve_channels(
        scenario,
        seeds,
        legit_channel,
        eve_trajectory,
        alice_trajectory,
        bob_trajectory,
        config.label,
        config,
    )
    return EavesdropperSetup(
        label=config.label,
        device=config.device,
        channel_from_alice=from_alice,
        channel_from_bob=from_bob,
    )
